"""Sustained-throughput benchmark for the capacity-query service.

The accountability contract is asserted unconditionally: whatever the
scenario, every query terminates in exactly one status (``lost == 0``)
and admitted queries meet their deadline at p99. The throughput floor
only applies outside ``BENCH_SMOKE`` — the smoke trace is too short for
a stable queries-per-second figure.
"""

import os

from repro.service import run_load_test

_SMOKE = os.environ.get("BENCH_SMOKE") == "1"
_N_QUERIES = 1_000 if _SMOKE else 10_000
#: Deliberately conservative: local runs sustain thousands of q/s, but
#: CI runners are shared and slow. The floor catches order-of-magnitude
#: regressions (e.g. accidental serialization of the worker tier).
_MIN_QPS = 150.0


def _load(scenario):
    return run_load_test(
        _N_QUERIES,
        seed=0,
        scenario=scenario,
        workers=2,
        concurrency=256,
        queue_limit=128,
        batch_size=32,
        deadline_seconds=30.0,
    )


def test_bench_service_sustained_throughput(benchmark):
    report = benchmark.pedantic(_load, args=("none",), rounds=1, iterations=1)
    assert report.lost == 0
    assert report.deadline_p99_ok
    print(
        f"\n{report.n_queries} queries in {report.elapsed_seconds:.2f} s "
        f"= {report.throughput_qps:.0f} q/s "
        f"(p50 {report.latency_p50_seconds * 1e3:.1f} ms, "
        f"p99 {report.latency_p99_seconds * 1e3:.1f} ms)"
    )
    if not _SMOKE:
        assert report.throughput_qps >= _MIN_QPS


def test_bench_service_chaos_accountability(benchmark):
    report = benchmark.pedantic(_load, args=("chaos",), rounds=1, iterations=1)
    # Chaos costs throughput, never queries.
    assert report.lost == 0
    assert report.deadline_p99_ok
    assert sum(report.status_counts.values()) == _N_QUERIES
    print(
        f"\nchaos: {report.throughput_qps:.0f} q/s, "
        f"statuses {report.status_counts}, "
        f"pool restarts {report.pool_restarts}, "
        f"retries {report.stats['retries']}"
    )
