"""Benchmark E12 — extension/ablation experiment (see DESIGN.md)."""

from repro.experiments.e12_markov_bounds import run


def test_bench_e12(benchmark, report):
    report(benchmark, run)
