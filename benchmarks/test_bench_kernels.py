"""Micro-benchmarks of the library's computational kernels.

Not tied to a paper table; tracks the performance of the hot paths the
experiment harness leans on (Blahut-Arimoto, the counter protocol, the
drift forward-backward decoder, block-bound construction).
"""

import os
import time

import numpy as np
import pytest

from repro.bounds.deletion import block_mutual_information_bound
from repro.coding.forward_backward import DriftChannelModel
from repro.core.events import ChannelParameters
from repro.infotheory.blahut_arimoto import blahut_arimoto
from repro.infotheory.channels import m_ary_symmetric_channel
from repro.infotheory.kernels import blahut_arimoto_batch
from repro.sync.feedback import CounterProtocol

#: CI smoke mode: tiny sizes, no speedup thresholds (see ci.yml).
_SMOKE = os.environ.get("BENCH_SMOKE") == "1"


def test_bench_blahut_arimoto(benchmark):
    w = m_ary_symmetric_channel(64, 0.1).transition_matrix
    result = benchmark(lambda: blahut_arimoto(w, tol=1e-9))
    assert result.converged


def test_bench_counter_protocol(benchmark):
    rng_master = np.random.default_rng(0)
    msg = rng_master.integers(0, 8, 50_000)
    proto = CounterProtocol(
        ChannelParameters.from_rates(0.1, 0.1), bits_per_symbol=3
    )

    def run():
        rng = np.random.default_rng(1)
        return proto.run(msg, rng)

    out = benchmark(run)
    assert out.symbols_delivered == 50_000


def test_bench_drift_decoder(benchmark):
    rng = np.random.default_rng(2)
    model = DriftChannelModel(0.02, 0.02, max_drift=10)
    bits = rng.integers(0, 2, 200)
    y, _ = model.transmit(bits, rng)
    priors = np.where(rng.random(200) < 0.8, bits.astype(float), 0.5)
    result = benchmark.pedantic(
        lambda: model.decode(y, priors), rounds=3, iterations=1
    )
    assert np.isfinite(result.log_likelihood)


def test_bench_drift_decoder_vectorized_vs_scalar(benchmark):
    """Scalar-vs-vectorized comparison on the n=64 lattice.

    Reports the batched kernel's time via the benchmark fixture and
    asserts the 1e-12 parity and the >=5x speedup over the retained
    scalar reference (the acceptance target; relaxed under
    ``BENCH_SMOKE``, where sizes shrink below the vectorization
    payoff's sweet spot).
    """
    n = 16 if _SMOKE else 64
    rng = np.random.default_rng(4)
    model = DriftChannelModel(0.05, 0.05, 0.03, max_drift=12)
    bits = rng.integers(0, 2, n)
    while True:
        y, _ = model.transmit(bits, rng)
        if -12 <= y.size - n <= 12:
            break
    priors = np.full(n, 0.5)

    vec = benchmark.pedantic(
        lambda: model.decode(y, priors), rounds=5, iterations=1
    )
    t0 = time.perf_counter()
    ref = model.decode_reference(y, priors)
    scalar_seconds = time.perf_counter() - t0
    np.testing.assert_allclose(
        vec.posteriors, ref.posteriors, atol=1e-12, rtol=0
    )
    vec_seconds = benchmark.stats.stats.min
    speedup = scalar_seconds / vec_seconds
    print(f"\nscalar {scalar_seconds * 1e3:.2f} ms / "
          f"vectorized {vec_seconds * 1e3:.2f} ms = {speedup:.1f}x")
    if not _SMOKE:
        assert speedup >= 5.0, f"vectorization speedup only {speedup:.1f}x"


def test_bench_blahut_arimoto_batched_vs_serial(benchmark):
    """Serial-vs-batched comparison on a stack of small channels.

    The batched kernel's promise is amortized dispatch: k channels per
    einsum instead of k separate solver loops. Reports the batched time
    via the benchmark fixture, checks 1e-12 parity per channel, and
    asserts the >=3x speedup acceptance target (relaxed under
    ``BENCH_SMOKE``, whose tiny stack sits below the vectorization
    payoff).
    """
    k = 8 if _SMOKE else 48
    nx, ny = 8, 10
    rng = np.random.default_rng(6)
    stack = rng.random((k, nx, ny))
    stack /= stack.sum(axis=2, keepdims=True)

    batch = benchmark.pedantic(
        lambda: blahut_arimoto_batch(stack, tol=1e-9),
        rounds=5,
        iterations=1,
    )
    t0 = time.perf_counter()
    serial = [blahut_arimoto(stack[i], tol=1e-9) for i in range(k)]
    serial_seconds = time.perf_counter() - t0
    for i, scalar in enumerate(serial):
        assert abs(batch.capacity[i] - scalar.capacity) < 1e-12
        np.testing.assert_allclose(
            batch.input_distribution[i],
            scalar.input_distribution,
            atol=1e-12,
            rtol=0,
        )
    batch_seconds = benchmark.stats.stats.min
    speedup = serial_seconds / batch_seconds
    print(f"\nserial {serial_seconds * 1e3:.2f} ms / "
          f"batched {batch_seconds * 1e3:.2f} ms = {speedup:.1f}x")
    if not _SMOKE:
        assert speedup >= 3.0, f"batching speedup only {speedup:.1f}x"


def test_bench_block_bound(benchmark):
    result = benchmark.pedantic(
        lambda: block_mutual_information_bound(8, 0.2),
        rounds=1,
        iterations=1,
    )
    assert result.lower_bound >= 0.0
