"""Benchmark E1 — Theorem 1 erasure bound vs simulation.

Regenerates the E1 table of EXPERIMENTS.md (paper anchor in
DESIGN.md section 3) and asserts the paper's claim holds.
"""

from repro.experiments.e1_erasure_bound import run


def test_bench_e1(benchmark, report):
    report(benchmark, run)
