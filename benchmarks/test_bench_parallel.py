"""Serial vs. parallel experiment-runner comparison (E4 trial).

The determinism contract is asserted unconditionally: a ``workers=4``
run must produce bit-identical ``TrialSummary`` samples to ``workers=1``
from the same root seed. The >=2x wall-clock target only applies when
the host actually has the cores (and is skipped under ``BENCH_SMOKE``,
the CI smoke mode that shrinks sizes below any parallel payoff).
"""

import os
import time

from repro.experiments.e4_convergence import convergence_trial
from repro.simulation.runner import ExperimentRunner

_SMOKE = os.environ.get("BENCH_SMOKE") == "1"
_REPLICATIONS = 4 if _SMOKE else 8
_DRAWS = 10 if _SMOKE else 400


def _trial(rng):
    return convergence_trial(rng, draws=_DRAWS)


def _run(workers):
    runner = ExperimentRunner(
        root_seed=0,
        replications=_REPLICATIONS,
        workers=workers,
        collect_timing=True,
    )
    start = time.perf_counter()
    result = runner.run(_trial)
    return result, time.perf_counter() - start


def test_bench_serial_vs_parallel(benchmark):
    serial, serial_seconds = _run(workers=1)
    parallel, parallel_seconds = benchmark.pedantic(
        lambda: _run(workers=4), rounds=1, iterations=1
    )

    # Determinism contract: bit-identical samples, any worker count.
    assert {k: v.samples for k, v in serial.items()} == {
        k: v.samples for k, v in parallel.items()
    }
    # The timing breakdown attributes in-trial time on both paths.
    assert serial.timing["trial"] > 0.0
    assert parallel.timing["trial"] > 0.0

    speedup = serial_seconds / parallel_seconds
    print(f"\nserial {serial_seconds * 1e3:.0f} ms / "
          f"parallel(4) {parallel_seconds * 1e3:.0f} ms = {speedup:.2f}x")
    cores = os.cpu_count() or 1
    if not _SMOKE and cores >= 4:
        assert speedup >= 2.0, (
            f"4-worker speedup only {speedup:.2f}x on {cores} cores"
        )
