"""Benchmark E13 — extension experiment: network packet-timing channel
(see DESIGN.md)."""

from repro.experiments.e13_network_channel import run


def test_bench_e13(benchmark, report):
    report(benchmark, run)
