"""Single-parse discipline of the lint runner, measured and asserted.

``lint_paths``/``lint_project`` share one parsed AST per file across
the file pass, the meta (LINT001) pass, and the graph extraction. The
contract is asserted through the runner's process-wide parse counter:
a project lint must parse each ``src/`` file exactly once, and adding
``--graph`` must not parse anything twice.
"""

from repro.analysis import (
    find_project_root,
    lint_project,
    parse_count,
    reset_parse_count,
)


def _source_file_count(root):
    return sum(1 for _ in (root / "src").rglob("*.py"))


def test_bench_project_lint_parses_each_file_once(benchmark):
    root = find_project_root()
    assert root is not None
    expected = _source_file_count(root)

    def run():
        reset_parse_count()
        findings = lint_project(root)
        return findings, parse_count()

    findings, parses = benchmark.pedantic(run, rounds=1, iterations=1)
    assert findings == []
    assert parses == expected, (
        f"parsed {parses} times for {expected} source files — "
        "the single-parse discipline regressed"
    )


def test_graph_pass_adds_no_reparses():
    root = find_project_root()
    assert root is not None
    expected = _source_file_count(root)
    reset_parse_count()
    findings = lint_project(root, graph=True)
    assert findings == []
    assert parse_count() == expected, (
        "the graph pass must reuse the file pass's ASTs, not reparse"
    )
