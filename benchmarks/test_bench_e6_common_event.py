"""Benchmark E6 — common events vs feedback.

Regenerates the E6 table of EXPERIMENTS.md (paper anchor in
DESIGN.md section 3) and asserts the paper's claim holds.
"""

from repro.experiments.e6_common_event import run


def test_bench_e6(benchmark, report):
    report(benchmark, run)
