"""Benchmark E2 — Theorem 3 resend protocol rate.

Regenerates the E2 table of EXPERIMENTS.md (paper anchor in
DESIGN.md section 3) and asserts the paper's claim holds.
"""

from repro.experiments.e2_feedback_deletion import run


def test_bench_e2(benchmark, report):
    report(benchmark, run)
