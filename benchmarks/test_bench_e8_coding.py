"""Benchmark E8 — no-feedback coding schemes.

Regenerates the E8 table of EXPERIMENTS.md (paper anchor in
DESIGN.md section 3) and asserts the paper's claim holds.
"""

from repro.experiments.e8_coding import run


def test_bench_e8(benchmark, report):
    report(benchmark, run)
