"""Benchmark E3 — Theorem 5 counter protocol.

Regenerates the E3 table of EXPERIMENTS.md (paper anchor in
DESIGN.md section 3) and asserts the paper's claim holds.
"""

from repro.experiments.e3_counter_protocol import run


def test_bench_e3(benchmark, report):
    report(benchmark, run)
