"""Benchmark E16 — extension experiment: extreme-regime stress sweep of
the guarded numerics layer (see ``repro.numerics``).

Besides regenerating the E16 table, this file pins the nominal-path
cost of guarding: the Blahut-Arimoto iteration counts on well-behaved
channels must match the pre-guard implementation exactly, so the
IterationGuard provably adds no extra iterations where nothing goes
wrong.
"""

import numpy as np

from repro.experiments.e16_extreme_regimes import run
from repro.infotheory import (
    binary_symmetric_channel,
    blahut_arimoto,
    m_ary_symmetric_channel,
    z_channel,
)

# Iteration counts recorded on the unguarded implementation (tol=1e-10,
# uniform start). The guard must terminate these nominal solves on the
# same iteration.
_NOMINAL_ITERATIONS = (
    (binary_symmetric_channel(0.1), 1),
    (z_channel(0.3), 26),
    (m_ary_symmetric_channel(4, 0.15), 1),
)


def test_bench_e16(benchmark, report):
    report(benchmark, run)


def test_guarding_adds_no_nominal_iterations():
    """Nominal solves converge on the exact pre-guard iteration."""
    for channel, expected in _NOMINAL_ITERATIONS:
        result = blahut_arimoto(channel.transition_matrix, tol=1e-10)
        assert result.converged
        assert result.status.ok
        assert result.iterations == expected
        assert np.isfinite(result.capacity)
