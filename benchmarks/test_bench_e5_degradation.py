"""Benchmark E5 — degradation proportional to P_d.

Regenerates the E5 table of EXPERIMENTS.md (paper anchor in
DESIGN.md section 3) and asserts the paper's claim holds.
"""

from repro.experiments.e5_degradation import run


def test_bench_e5(benchmark, report):
    report(benchmark, run)
