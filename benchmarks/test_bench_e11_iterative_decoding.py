"""Benchmark E11 — extension/ablation experiment (see DESIGN.md)."""

from repro.experiments.e11_iterative_decoding import run


def test_bench_e11(benchmark, report):
    report(benchmark, run)
