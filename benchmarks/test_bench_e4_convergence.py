"""Benchmark E4 — eqs. (6)-(7) convergence sweep.

Regenerates the E4 table of EXPERIMENTS.md (paper anchor in
DESIGN.md section 3) and asserts the paper's claim holds.
"""

from repro.experiments.e4_convergence import run


def test_bench_e4(benchmark, report):
    report(benchmark, run)
