"""Cold vs. warm result-store comparison (E9-style bounds sweep).

The correctness contract is asserted unconditionally: the warm pass
must return bit-identical rows while performing zero Blahut-Arimoto
iterations (no ``solver`` stage in the timing profile). The >=5x
wall-clock target only applies outside ``BENCH_SMOKE``, whose shrunken
sweep finishes too fast to measure a stable ratio.
"""

import os
import time

from repro.bounds.brackets import capacity_bracket_sweep
from repro.numerics import collect_stage_timings
from repro.store import ResultStore, use_store

_SMOKE = os.environ.get("BENCH_SMOKE") == "1"
_BLOCK_LENGTH = 4 if _SMOKE else 8
_DELETION_PROBS = (0.05, 0.1) if _SMOKE else (0.02, 0.05, 0.1, 0.15, 0.2)


def _sweep():
    with collect_stage_timings() as timings:
        start = time.perf_counter()
        rows = capacity_bracket_sweep(
            _DELETION_PROBS, block_length=_BLOCK_LENGTH
        )
        elapsed = time.perf_counter() - start
    return rows, elapsed, dict(timings)


def test_bench_cold_vs_warm_store(benchmark, tmp_path):
    store = ResultStore(tmp_path / "cache")
    with use_store(store):
        cold_rows, cold_seconds, cold_timings = _sweep()
        warm_rows, warm_seconds, warm_timings = benchmark.pedantic(
            _sweep, rounds=1, iterations=1
        )

    # Correctness contract: identical rows, zero solver work when warm.
    assert warm_rows == cold_rows
    assert "solver" in cold_timings
    assert "solver" not in warm_timings

    speedup = cold_seconds / warm_seconds
    print(f"\ncold {cold_seconds * 1e3:.0f} ms / "
          f"warm {warm_seconds * 1e3:.0f} ms = {speedup:.1f}x")
    if not _SMOKE:
        assert speedup >= 5.0, f"warm-cache speedup only {speedup:.2f}x"
