"""Benchmark E9 — deletion-channel capacity bracket.

Regenerates the E9 table of EXPERIMENTS.md (paper anchor in
DESIGN.md section 3) and asserts the paper's claim holds.
"""

from repro.experiments.e9_bounds import run


def test_bench_e9(benchmark, report):
    report(benchmark, run)
