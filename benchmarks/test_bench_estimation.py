"""Benchmarks of the kNN mutual-information estimators.

Tracks the estimator's wall clock against sample count and asserts the
acceptance target of the estimation subsystem: the ``cKDTree`` fast
path beats the retained O(n^2) reference scan by >= 5x at n = 4096
(relaxed under ``BENCH_SMOKE``, whose shrunken n sits below the tree's
payoff regime). Both paths share jitter draws, so the comparison also
re-checks bit-for-bit parity at full benchmark size.
"""

import os
import time

import numpy as np

from repro.estimation import (
    mixed_mutual_information,
    mixed_mutual_information_reference,
)
from repro.simulation.rng import RngFactory

#: CI smoke mode: tiny sizes, no speedup thresholds (see ci.yml).
_SMOKE = os.environ.get("BENCH_SMOKE") == "1"


def _bsc_pairs(n, crossover, factory):
    x = factory.fresh("x").integers(0, 2, n)
    flip = factory.fresh("flip").random(n) < crossover
    return x, np.where(flip, 1 - x, x).astype(float)


def test_bench_mixed_mi_scaling(benchmark):
    """Wall clock of the tree path at the E17 operating point."""
    n = 512 if _SMOKE else 4096
    factory = RngFactory(0)
    x, y = _bsc_pairs(n, 0.1, factory)

    def run():
        return mixed_mutual_information(
            x, y, k=8, rng=RngFactory(0).fresh("j")
        )

    mi = benchmark(run)
    assert np.isfinite(mi)


def test_bench_tree_vs_naive_speedup(benchmark):
    """The tree path's >= 5x acceptance gate over the O(n^2) oracle."""
    n = 256 if _SMOKE else 4096
    factory = RngFactory(1)
    x, y = _bsc_pairs(n, 0.1, factory)

    fast = benchmark.pedantic(
        lambda: mixed_mutual_information(
            x, y, k=8, rng=RngFactory(1).fresh("j")
        ),
        rounds=3,
        iterations=1,
    )

    t0 = time.perf_counter()
    slow = mixed_mutual_information_reference(
        x, y, k=8, rng=RngFactory(1).fresh("j")
    )
    naive_seconds = time.perf_counter() - t0

    assert fast == slow  # shared jitter draws: parity is exact

    t0 = time.perf_counter()
    mixed_mutual_information(x, y, k=8, rng=RngFactory(1).fresh("j"))
    tree_seconds = time.perf_counter() - t0
    speedup = naive_seconds / tree_seconds
    print(f"\nn={n}: tree {tree_seconds:.4f}s, naive {naive_seconds:.4f}s, "
          f"speedup {speedup:.1f}x")
    if not _SMOKE:
        assert speedup >= 5.0, (
            f"cKDTree path only {speedup:.1f}x over the naive scan"
        )
