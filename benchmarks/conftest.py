"""Benchmark-harness helpers.

Each ``test_bench_e*`` file regenerates one experiment of the paper
(see DESIGN.md section 3). The benchmark body runs the experiment; the
resulting table — the series the paper's claim is about — is printed so
``pytest benchmarks/ --benchmark-only -s`` reproduces the numbers, and
the claim itself is asserted.
"""

import pytest


def run_and_report(benchmark, runner, **kwargs):
    """Benchmark an experiment runner once and report its table."""
    result = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1
    )
    print()
    print(result.summary())
    assert result.passed, result.summary()
    return result


@pytest.fixture
def report():
    return run_and_report
