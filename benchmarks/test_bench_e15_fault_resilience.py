"""Benchmark E15 — extension experiment: fault resilience of the
hardened counter protocol (see ``repro.faults``)."""

from repro.experiments.e15_fault_resilience import run


def test_bench_e15(benchmark, report):
    report(benchmark, run)
