"""Benchmark E10 — extension/ablation experiment (see DESIGN.md)."""

from repro.experiments.e10_imperfect_feedback import run


def test_bench_e10(benchmark, report):
    report(benchmark, run)
