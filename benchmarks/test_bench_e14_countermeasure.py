"""Benchmark E14 — extension experiment: countermeasure trade-off
frontier (see DESIGN.md)."""

from repro.experiments.e14_countermeasure import run


def test_bench_e14(benchmark, report):
    report(benchmark, run)
