"""Benchmark E7 — scheduler case study.

Regenerates the E7 table of EXPERIMENTS.md (paper anchor in
DESIGN.md section 3) and asserts the paper's claim holds.
"""

from repro.experiments.e7_scheduler import run


def test_bench_e7(benchmark, report):
    report(benchmark, run)
