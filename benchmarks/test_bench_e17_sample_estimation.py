"""Benchmark E17 — extension experiment: sample-based capacity
estimation cross-validated against Blahut-Arimoto (see DESIGN.md)."""

import os

from repro.experiments.e17_sample_estimation import run

#: CI smoke mode shrinks the sample budget; the agreement gate is the
#: tier-1 suite's job at full size, so the smoke run only checks the
#: harness end to end.
_SMOKE = os.environ.get("BENCH_SMOKE") == "1"


def test_bench_e17(benchmark, report):
    if _SMOKE:
        report(benchmark, run, n_samples=1024, gate_bits=0.15)
    else:
        report(benchmark, run)
