"""Experiment registry: id -> runner.

Used by the CLI (``python -m repro run-experiment E3``), the benchmark
harness, and the EXPERIMENTS.md generator.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from . import (  # noqa: I001 — experiment-number order, not alphabetical
    e1_erasure_bound,
    e2_feedback_deletion,
    e3_counter_protocol,
    e4_convergence,
    e5_degradation,
    e6_common_event,
    e7_scheduler,
    e8_coding,
    e9_bounds,
    e10_imperfect_feedback,
    e11_iterative_decoding,
    e12_markov_bounds,
    e13_network_channel,
    e14_countermeasure,
    e15_fault_resilience,
    e16_extreme_regimes,
    e17_sample_estimation,
)
from .tables import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": e1_erasure_bound.run,
    "E2": e2_feedback_deletion.run,
    "E3": e3_counter_protocol.run,
    "E4": e4_convergence.run,
    "E5": e5_degradation.run,
    "E6": e6_common_event.run,
    "E7": e7_scheduler.run,
    "E8": e8_coding.run,
    "E9": e9_bounds.run,
    "E10": e10_imperfect_feedback.run,
    "E11": e11_iterative_decoding.run,
    "E12": e12_markov_bounds.run,
    "E13": e13_network_channel.run,
    "E14": e14_countermeasure.run,
    "E15": e15_fault_resilience.run,
    "E16": e16_extreme_regimes.run,
    "E17": e17_sample_estimation.run,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key](**kwargs)


def run_all(**kwargs) -> List[ExperimentResult]:
    """Run every experiment in order; kwargs are passed only where the
    runner accepts them (``seed`` is universal for the stochastic ones;
    ``workers`` fans Monte-Carlo replications over processes for the
    experiments that accept it, without changing any result)."""
    results = []
    def _order(k: str) -> int:
        return int(k[1:])

    for key in sorted(EXPERIMENTS, key=_order):
        runner = EXPERIMENTS[key]
        accepted = {}
        co_names = runner.__code__.co_varnames[: runner.__code__.co_argcount] + (
            runner.__code__.co_varnames[
                runner.__code__.co_argcount : runner.__code__.co_argcount
                + runner.__code__.co_kwonlyargcount
            ]
        )
        for name, value in kwargs.items():
            if name in co_names:
                accepted[name] = value
        results.append(runner(**accepted))
    return results
