"""E17 (extension) — sample-based capacity estimation, cross-validated.

The matrix estimators need the channel enumerated; the Kraskov kNN
pipeline (:mod:`repro.estimation`) needs only draws. This experiment
does two things:

1. **Cross-validation**: on 2- and 4-symbol DMCs where Blahut–Arimoto
   computes the exact capacity, run the full sample path — draw
   ``n`` channel uses, estimate MI with the mixed KSG estimator,
   maximize over input distributions — and check
   ``|C_kNN - C_BA| <= gate`` (0.05 bits at the default 4096
   samples). This is the agreement gate the tier-1 suite asserts.
2. **First numbers beyond BA's reach**: the §3.1 scheduler timing
   channel observed through preemption noise has a countably infinite
   output alphabet — no transition matrix exists to enumerate. The
   same pipeline prices it directly (bits per quantum), with the
   sanity anchor that the noiseless configuration must agree with the
   closed-form Shannon timed capacity of its burst alphabet.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..estimation import (
    DMCSampler,
    SchedulerTimingSampler,
    estimate_sample_capacity,
)
from ..infotheory.blahut_arimoto import blahut_arimoto
from ..infotheory.probability import is_zero
from ..timing.timed_dmc import timed_dmc_capacity
from .tables import ExperimentResult

__all__ = ["run"]

#: Agreement gate (bits) between the kNN estimate and Blahut–Arimoto
#: at the default sample size.
AGREEMENT_GATE_BITS = 0.05

#: Cross-validation channels: (label, transition rows).
_DMC_CASES: Tuple[Tuple[str, Tuple[Tuple[float, ...], ...]], ...] = (
    ("BSC(0.1)", ((0.9, 0.1), (0.1, 0.9))),
    ("BSC(0.25)", ((0.75, 0.25), (0.25, 0.75))),
    (
        "4-ary sym(0.15)",
        (
            (0.85, 0.05, 0.05, 0.05),
            (0.05, 0.85, 0.05, 0.05),
            (0.05, 0.05, 0.85, 0.05),
            (0.05, 0.05, 0.05, 0.85),
        ),
    ),
    (
        "4-ary skewed",
        (
            (0.85, 0.05, 0.05, 0.05),
            (0.05, 0.85, 0.05, 0.05),
            (0.05, 0.05, 0.85, 0.05),
            (0.10, 0.10, 0.40, 0.40),
        ),
    ),
)

#: Scheduler-channel sweep: preemption probability per quantum.
_PREEMPT_SWEEP: Tuple[float, ...] = (0.0, 0.1, 0.3)

#: Burst-length alphabet of the scheduler channel (quanta).
_BURSTS: Tuple[int, ...] = (1, 2, 4)


def run(
    *,
    seed: int = 0,
    n_samples: int = 4096,
    gate_bits: float = AGREEMENT_GATE_BITS,
    preempt_sweep: Sequence[float] = _PREEMPT_SWEEP,
) -> ExperimentResult:
    """Execute E17 and return the result table."""
    rows = []
    passed = True

    # Part 1: agreement with Blahut-Arimoto where both methods apply.
    for label, matrix in _DMC_CASES:
        exact = blahut_arimoto(np.asarray(matrix))
        est = estimate_sample_capacity(
            DMCSampler(matrix), n_samples=n_samples, seed=seed
        )
        err = abs(est.capacity - exact.capacity)
        ok = err <= gate_bits and est.status.value != "aborted"
        passed = passed and ok
        rows.append(
            {
                "channel": label,
                "C_BA (b/sym)": exact.capacity,
                "C_kNN (b/sym)": est.capacity,
                "|err| (bits)": err,
                "split spread": est.split_spread,
                "iters": est.iterations,
                "ok": ok,
            }
        )

    # Part 2: the scheduler timing channel, where BA cannot run. The
    # noiseless point anchors against the closed-form timed capacity
    # of the burst alphabet (a degenerate deterministic "DMC" over
    # gap values, solved by the Dinkelbach program).
    noiseless = timed_dmc_capacity(
        np.eye(len(_BURSTS)),
        np.asarray(_BURSTS, dtype=float) + 1.0,
    )
    previous = float("inf")
    for preempt in preempt_sweep:
        est = estimate_sample_capacity(
            SchedulerTimingSampler(_BURSTS, preempt),
            n_samples=n_samples,
            seed=seed,
        )
        if is_zero(preempt):
            reference = noiseless.capacity
            err = abs(est.capacity - reference)
            ok = err <= gate_bits
        else:
            # No enumerable reference exists: require the first
            # capacity numbers to be sane — positive, below the
            # noiseless anchor, and monotone in the noise.
            reference = float("nan")
            err = float("nan")
            ok = 0.0 < est.capacity <= previous + gate_bits
        passed = passed and ok
        previous = est.capacity
        rows.append(
            {
                "channel": f"scheduler(q={preempt})",
                "C_BA (b/sym)": reference,
                "C_kNN (b/sym)": est.capacity,
                "|err| (bits)": err,
                "split spread": est.split_spread,
                "iters": est.iterations,
                "ok": ok,
            }
        )

    return ExperimentResult(
        experiment_id="E17",
        title="Sample-based capacity: Kraskov kNN vs Blahut-Arimoto",
        paper_claim=(
            "Extension of §4.3: when the channel can only be observed, "
            "capacity is still estimable — maximize a kNN mutual-"
            "information estimate over input distributions; on "
            "enumerable DMCs this agrees with Blahut-Arimoto to within "
            f"{AGREEMENT_GATE_BITS} bits at 4096 samples"
        ),
        columns=[
            "channel",
            "C_BA (b/sym)",
            "C_kNN (b/sym)",
            "|err| (bits)",
            "split spread",
            "iters",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "Scheduler rows are bits per quantum; the q=0 row is "
            "anchored to the closed-form timed capacity of the burst "
            "alphabet, noisy rows are checked for sign and "
            "monotonicity (no enumerable reference exists there — "
            "that is the point)."
        ),
    )
