"""E15 — fault resilience: the hardened protocols under every named
fault scenario (extension; see ``repro.faults``).

The paper's Theorem 1 bound ``N (1 - P_d)`` is stated for i.i.d.
events, but its *estimation recipe* (§4.3) is empirical: measure the
event frequencies, plug ``P̂_d`` in. This experiment checks that the
recipe — and the hardened counter protocol — degrade gracefully when
the i.i.d. and perfect-feedback assumptions are broken:

1. under every registered fault scenario the protocol **completes**
   (delivers every message position) rather than dying or hanging;
2. the achieved information rate never exceeds the *empirical* erasure
   bound ``N (1 - P̂_d)`` computed from the observed event frequencies
   of the faulted run — capacity claims degrade, they don't break;
3. under scenarios that inject counter desync (``bursty_loss``,
   ``counter_desync``, ``stress``), the resynchronization machinery
   actually engages (epochs run and recoveries happen), i.e. the run is
   honestly flagged ``degraded`` instead of silently misaligned.
"""

from __future__ import annotations

from typing import Sequence

from ..core.events import ChannelParameters
from ..faults.injector import run_under_faults
from ..faults.scenarios import get_scenario, list_scenarios
from ..simulation.rng import make_rng
from ..sync.feedback import CounterProtocol
from .tables import ExperimentResult

__all__ = ["run"]

_DESYNC_SCENARIOS = frozenset({"bursty_loss", "counter_desync", "stress"})


def run(
    *,
    seed: int = 0,
    bits_per_symbol: int = 3,
    num_symbols: int = 25_000,
    deletion: float = 0.1,
    insertion: float = 0.05,
    scenarios: Sequence[str] = (),
) -> ExperimentResult:
    """Execute E15 and return the result table."""
    rng = make_rng(seed)
    n = bits_per_symbol
    params = ChannelParameters.from_rates(deletion=deletion, insertion=insertion)
    names = list(scenarios) or [s.name for s in list_scenarios()]
    rows = []
    passed = True
    for name in names:
        scenario = get_scenario(name)
        injector = scenario.build(params, seed=seed)
        protocol = CounterProtocol(params, bits_per_symbol=n)
        message = rng.integers(0, 2**n, num_symbols)
        fm = run_under_faults(protocol, message, rng, injector)
        recovery_expected = name in _DESYNC_SCENARIOS
        recovery_ok = (not recovery_expected) or (
            fm.run.degraded
            and fm.fault_counts.get("resync_epochs", 0) > 0
            and fm.fault_counts.get("desyncs_recovered", 0) > 0
        )
        ok = fm.completed and fm.within_bound and recovery_ok
        passed = passed and ok
        rows.append(
            {
                "scenario": name,
                "P̂_d": fm.empirical_params.deletion,
                "P̂_i": fm.empirical_params.insertion,
                "sub rate": fm.run.symbol_error_rate,
                "rate/use": fm.information_rate_per_use,
                "UB N(1-P̂d)": fm.empirical_erasure_bound,
                "desyncs": fm.fault_counts.get("desyncs_injected", 0),
                "recovered": fm.fault_counts.get("desyncs_recovered", 0),
                "degraded": fm.run.degraded,
                "ok": ok,
            }
        )
    return ExperimentResult(
        experiment_id="E15",
        title="Fault resilience: hardened counter protocol vs. empirical bound",
        paper_claim=(
            "§4.3 estimation recipe, stressed: under bursty, drifting, and "
            "faulty-feedback regimes the achieved rate stays below the "
            "empirical Theorem-1 bound N(1 - P̂_d), and desync recovery "
            "keeps runs honest"
        ),
        columns=[
            "scenario",
            "P̂_d",
            "P̂_i",
            "sub rate",
            "rate/use",
            "UB N(1-P̂d)",
            "desyncs",
            "recovered",
            "degraded",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "Rates under faults are far below the nominal Theorem-5 value — "
            "the gap quantifies what the i.i.d./perfect-feedback hypotheses "
            "are worth. The empirical bound is computed from the faulted "
            "run's own event frequencies, so it moves with the scenario."
        ),
    )
