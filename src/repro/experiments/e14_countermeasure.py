"""E14 (extension) — the countermeasure trade-off frontier.

§3.2's design-evaluation use case as a defender's decision table: sweep
the fuzzy-time scheduler's randomness and report, side by side, the
covert capacity left to the attacker (Theorem-5 achievable, bits per
quantum) and the scheduling-delay cost paid by legitimate processes.
"""

from __future__ import annotations

from typing import Sequence

from ..os_model.countermeasures import fuzzy_scheduler_tradeoff
from ..simulation.rng import make_rng
from .tables import ExperimentResult

__all__ = ["run"]

_DEFAULT_LEVELS = (0.0, 0.15, 0.3, 0.45, 0.6, 0.75)


def run(
    *,
    seed: int = 0,
    fuzz_levels: Sequence[float] = _DEFAULT_LEVELS,
    message_symbols: int = 10_000,
) -> ExperimentResult:
    """Execute E14 and return the result table."""
    rng = make_rng(seed)
    points = fuzzy_scheduler_tradeoff(
        fuzz_levels, rng, message_symbols=message_symbols
    )
    rows = []
    for p in points:
        rows.append(
            {
                "fuzz": p.fuzz,
                "P_d": p.deletion,
                "P_i": p.insertion,
                "covert rate (b/quantum)": p.covert_rate_per_quantum,
                "capacity cut": p.capacity_reduction,
                "mean delay": p.mean_delay,
                "p99 delay": p.p99_delay,
            }
        )
    rates = [p.covert_rate_per_quantum for p in points]
    tails = [p.p99_delay for p in points]
    monotone_rate = all(
        rates[i + 1] <= rates[i] + 0.02 for i in range(len(rates) - 1)
    )
    # Fairness (mean delay) is preserved by construction; the price
    # shows up in the delay *tail*, which must grow with fuzz.
    monotone_tail = all(
        tails[i + 1] >= tails[i] - 1e-9 for i in range(len(tails) - 1)
    )
    strictly_effective = rates[-1] < 0.5 * rates[0]
    passed = monotone_rate and monotone_tail and strictly_effective
    return ExperimentResult(
        experiment_id="E14",
        title="Countermeasure trade-off: covert capacity vs scheduling delay",
        paper_claim=(
            "Extension of §3.2: the non-synchronous estimate turns "
            "scheduler randomization into a quantified capacity-vs-"
            "performance trade-off"
        ),
        columns=[
            "fuzz",
            "P_d",
            "P_i",
            "covert rate (b/quantum)",
            "capacity cut",
            "mean delay",
            "p99 delay",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "Covert rate falls monotonically with fuzz while the mean "
            "delay (fair share) stays ~2 quanta; the cost appears in the "
            "p99 delay tail — where the countermeasure starts hurting "
            "interactive latency."
        ),
    )
