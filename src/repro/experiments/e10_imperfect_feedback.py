"""E10 (extension) — what the perfect-feedback assumption is worth.

The paper derives its bounds assuming a perfect feedback path (§4.2).
This ablation runs the alternating-bit protocol over a deletion channel
whose acknowledgments are lost with probability ``q`` and confirms the
closed-form rate ``N (1 - p_d)(1 - q)``: feedback imperfection costs a
multiplicative ``(1 - q)``, and the paper's Theorem 3 is the ``q = 0``
row. Relevant to the paper's MLS remark too — a noisy legal low-to-high
flow still yields most of the capacity.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.events import ChannelParameters
from ..infotheory.probability import is_zero
from ..simulation.rng import make_rng
from ..sync.imperfect_feedback import (
    AlternatingBitProtocol,
    BlockAckProtocol,
    lossy_feedback_capacity,
)
from .tables import ExperimentResult

__all__ = ["run"]

_DEFAULT_SWEEP: Tuple[Tuple[float, float], ...] = (
    (0.1, 0.0),
    (0.1, 0.1),
    (0.1, 0.3),
    (0.3, 0.0),
    (0.3, 0.1),
    (0.3, 0.3),
)


def run(
    *,
    seed: int = 0,
    bits_per_symbol: int = 2,
    num_symbols: int = 80_000,
    sweep: Sequence[Tuple[float, float]] = _DEFAULT_SWEEP,
    tolerance: float = 0.03,
) -> ExperimentResult:
    """Execute E10 and return the result table."""
    rng = make_rng(seed)
    n = bits_per_symbol
    rows = []
    passed = True
    for pd, q in sweep:
        params = ChannelParameters.from_rates(deletion=pd, insertion=0.0)
        protocol = AlternatingBitProtocol(
            params, bits_per_symbol=n, ack_loss_prob=q
        )
        message = rng.integers(0, 2**n, num_symbols)
        record = protocol.run(message, rng)
        measured = record.throughput_per_use
        theory = lossy_feedback_capacity(n, pd, q)
        perfect = lossy_feedback_capacity(n, pd, 0.0)

        # Block-ack amortization: the same channel, a 64-symbol window
        # with repeated cumulative acks.
        block_proto = BlockAckProtocol(
            params, bits_per_symbol=n, ack_loss_prob=q, block_size=64
        )
        block_record = block_proto.run(message, rng)
        block_measured = block_record.throughput_per_use

        rel_err = abs(measured - theory) / theory if theory else abs(measured)
        amortized_ok = block_measured >= measured - 0.02 * n
        recovers = is_zero(q) or block_measured >= 0.95 * perfect
        ok = (
            rel_err < tolerance
            and record.symbol_errors == 0
            and amortized_ok
            and recovers
        )
        passed = passed and ok
        rows.append(
            {
                "p_d": pd,
                "ack loss q": q,
                "alt-bit bits/use": measured,
                "theory N(1-pd)(1-q)": theory,
                "block-ack(64) bits/use": block_measured,
                "Thm 3 ceiling": perfect,
                "rel err": rel_err,
                "ok": ok,
            }
        )
    return ExperimentResult(
        experiment_id="E10",
        title="Ablation: lossy feedback path (alternating-bit protocol)",
        paper_claim=(
            "Extension of §4.2: Theorems 2-5 assume perfect feedback; "
            "naive per-symbol acks cost a (1 - q) factor, but block "
            "acknowledgments amortize the imperfection away"
        ),
        columns=[
            "p_d",
            "ack loss q",
            "alt-bit bits/use",
            "theory N(1-pd)(1-q)",
            "block-ack(64) bits/use",
            "Thm 3 ceiling",
            "rel err",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "q = 0 rows reproduce Theorem 3 exactly; the alternating-bit "
            "penalty is exactly (1 - q), while the 64-symbol block-ack "
            "window with repeated cumulative acks amortizes the ack loss "
            "back to within a few percent of the Theorem-3 ceiling."
        ),
    )
