"""E3 — Theorem 5 / Appendix A: the counter protocol converts a
deletion-insertion channel into an M-ary symmetric DMC and achieves the
feedback lower bound.

For a sweep of ``(P_d, P_i)`` the experiment verifies three things:

1. the measured substitution rate of the converted stream equals
   ``alpha * P_i / (1 - P_d)`` (the fraction of received positions that
   are insertions, times the accidental-match factor ``alpha``);
2. the information rate through the converted channel (measured
   substitution rate plugged into the M-ary symmetric capacity, scaled
   to sender slots) matches the *exact* form of the Theorem-5 bound;
3. the paper's printed bound (eq. 2/3, which uses the per-use ``P_i``
   instead of the per-received-position fraction) coincides when
   ``P_d = 0`` and sits slightly above the exact rate otherwise — a
   reproduction finding recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.capacity import alpha, converted_insertion_fraction
from ..core.events import ChannelParameters
from ..simulation.rng import make_rng
from ..sync.feedback import CounterProtocol
from ..sync.harness import measure_protocol
from .tables import ExperimentResult

__all__ = ["run"]

_DEFAULT_SWEEP: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.05),
    (0.0, 0.15),
    (0.1, 0.1),
    (0.2, 0.1),
    (0.15, 0.25),
)


def run(
    *,
    seed: int = 0,
    bits_per_symbol: int = 3,
    num_symbols: int = 150_000,
    sweep: Sequence[Tuple[float, float]] = _DEFAULT_SWEEP,
    tolerance: float = 0.03,
) -> ExperimentResult:
    """Execute E3 and return the result table."""
    rng = make_rng(seed)
    n = bits_per_symbol
    rows = []
    passed = True
    for pd, pi in sweep:
        params = ChannelParameters.from_rates(deletion=pd, insertion=pi)
        protocol = CounterProtocol(params, bits_per_symbol=n)
        message = rng.integers(0, 2**n, num_symbols)
        m = measure_protocol(protocol, message, rng)
        expected_sub = alpha(n) * converted_insertion_fraction(pd, pi)
        sub_ok = abs(m.empirical_substitution_rate - expected_sub) < max(
            0.01, 0.1 * expected_sub
        )
        rate_ok = (
            abs(m.empirical_information_per_slot - m.theoretical_lower_exact)
            < tolerance * n
        )
        order_ok = (
            m.theoretical_lower_exact
            <= m.theoretical_lower_paper + 1e-9
            <= m.theoretical_upper + 1e-9
        )
        ok = sub_ok and rate_ok and order_ok
        passed = passed and ok
        rows.append(
            {
                "P_d": pd,
                "P_i": pi,
                "sub rate (sim)": m.empirical_substitution_rate,
                "sub rate (theory)": expected_sub,
                "rate/slot (sim)": m.empirical_information_per_slot,
                "exact LB": m.theoretical_lower_exact,
                "paper LB": m.theoretical_lower_paper,
                "UB N(1-Pd)": m.theoretical_upper,
                "ok": ok,
            }
        )
    return ExperimentResult(
        experiment_id="E3",
        title="Counter protocol: converted channel and Theorem-5 rate",
        paper_claim=(
            "Theorem 5 / eqs. (2)-(5): the counter protocol converts the "
            "channel to an M-ary symmetric DMC and achieves "
            "((1-P_d)/(1-P_i)) C_conv"
        ),
        columns=[
            "P_d",
            "P_i",
            "sub rate (sim)",
            "sub rate (theory)",
            "rate/slot (sim)",
            "exact LB",
            "paper LB",
            "UB N(1-Pd)",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "Simulation tracks the exact bound (insertion fraction "
            "P_i/(1-P_d)); the paper's eq. (3) uses P_i directly and is "
            "slightly optimistic for P_d > 0 — equal at P_d = 0."
        ),
    )
