"""E4 — eqs. (6)-(7): asymptotic convergence of the Theorem-5 lower
bound to the Theorem-4 upper bound.

With ``P_i = P_d = p`` the time coefficient is 1 and the ratio
``C_lower / C_upper = C_conv(N, p) / (N (1 - p))`` must increase to 1
as the symbol width ``N`` grows, for every fixed ``p < 1``. The table
sweeps ``N`` for several ``p`` and also records the paper's explicit
large-N form ``(N(1-p) - H(p)) / (N(1-p))`` for comparison.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.capacity import convergence_ratio, convergence_ratio_limit
from ..simulation.runner import ExperimentRunner
from .tables import ExperimentResult

__all__ = ["convergence_trial", "run"]

_DEFAULT_NS = (1, 2, 4, 8, 12, 16, 24)
_DEFAULT_PS = (0.05, 0.1, 0.2)


def convergence_trial(
    rng: np.random.Generator,
    *,
    bits_per_symbol_values: Sequence[int] = _DEFAULT_NS,
    draws: int = 200,
) -> Dict[str, float]:
    """One Monte-Carlo replication of the E4 convergence spot-check.

    Samples *draws* random probabilities ``p`` and verifies that the
    ratio ``C_lower / C_upper`` stays in ``[0, 1]`` and is monotone in
    ``N`` across the swept symbol widths — the randomized counterpart
    of the deterministic grid in :func:`run`.

    Module-level (not a closure) so :class:`ExperimentRunner` can pickle
    it to worker processes; bind keyword arguments with
    :func:`functools.partial` when customizing.
    """
    ns = tuple(bits_per_symbol_values)
    min_ratio = 1.0
    max_monotonicity_violation = 0.0
    max_bound_violation = 0.0
    final_gap_total = 0.0
    for _ in range(draws):
        p = float(rng.uniform(0.01, 0.45))
        previous = -1.0
        ratio = 0.0
        for n in ns:
            ratio = convergence_ratio(n, p)
            max_monotonicity_violation = max(
                max_monotonicity_violation, previous - ratio
            )
            max_bound_violation = max(
                max_bound_violation, -ratio, ratio - 1.0
            )
            min_ratio = min(min_ratio, ratio)
            previous = ratio
        final_gap_total += 1.0 - ratio
    return {
        "min_ratio": min_ratio,
        "max_monotonicity_violation": max_monotonicity_violation,
        "max_bound_violation": max_bound_violation,
        "mean_final_gap": final_gap_total / draws,
    }


def run(
    *,
    bits_per_symbol_values: Sequence[int] = _DEFAULT_NS,
    probs: Sequence[float] = _DEFAULT_PS,
    seed: int = 0,
    workers: int = 1,
    monte_carlo_replications: int = 4,
    budget: Optional[float] = None,
) -> ExperimentResult:
    """Execute E4 and return the result table.

    The table itself is deterministic; a seeded Monte-Carlo spot-check
    (:func:`convergence_trial`, *monte_carlo_replications* replications,
    optionally fanned over *workers* processes) randomizes ``p`` and is
    reported in the notes. Identical seeds give identical results for
    any worker count. *budget* caps the Monte-Carlo wall-clock
    (``ExperimentRunner.time_budget_seconds``); an exhausted budget is
    reported in the notes and fails the spot-check only if no
    replication completed.
    """
    rows = []
    passed = True
    for p in probs:
        previous = -1.0
        for n in bits_per_symbol_values:
            ratio = convergence_ratio(n, p)
            approx = convergence_ratio_limit(n, p)
            monotone = ratio >= previous - 1e-12
            # The large-N form is asymptotic; only hold it to account
            # once the 2^-N corrections are small.
            close_to_approx = n < 4 or abs(ratio - approx) < 0.5 / n
            ok = monotone and 0.0 <= ratio <= 1.0 + 1e-12 and close_to_approx
            passed = passed and ok
            rows.append(
                {
                    "p": p,
                    "N": n,
                    "C_lower/C_upper": ratio,
                    "large-N form": approx,
                    "gap to 1": 1.0 - ratio,
                    "ok": ok,
                }
            )
            previous = ratio
        # Convergence: the largest N must be within H(p)/(N(1-p)) of 1.
        final_gap = 1.0 - convergence_ratio(max(bits_per_symbol_values), p)
        if final_gap > 0.12:
            passed = False

    notes = (
        "The gap decays like H(p)/(N(1-p)) + O(2^-N): doubling N "
        "roughly halves it."
    )
    if monte_carlo_replications > 0:
        runner = ExperimentRunner(
            root_seed=seed,
            replications=monte_carlo_replications,
            workers=workers,
            time_budget_seconds=budget,
        )
        try:
            mc = runner.run(
                partial(
                    convergence_trial,
                    bits_per_symbol_values=tuple(bits_per_symbol_values),
                ),
                label="e4/monte-carlo",
            )
        except RuntimeError as exc:
            # Too few replications for intervals (e.g. the budget ran
            # out almost immediately); completed work is checkpointed,
            # so re-running with more budget resumes instead of redoing.
            mc = None
            passed = False
            notes += f" Monte-Carlo spot-check aborted ({exc}) -> FAILED."
        completed = (
            len(mc["min_ratio"].samples)
            if mc is not None and "min_ratio" in mc
            else 0
        )
        if mc is None:
            pass
        elif completed:
            worst_violation = max(
                max(mc["max_monotonicity_violation"].samples),
                max(mc["max_bound_violation"].samples),
            )
            mc_ok = worst_violation <= 1e-12
            passed = passed and mc_ok
            notes += (
                f" Monte-Carlo spot-check ({completed} "
                f"replications x 200 draws, seed {seed}): "
                f"worst violation {worst_violation:.3g}, "
                f"min ratio {min(mc['min_ratio'].samples):.4f} -> "
                f"{'ok' if mc_ok else 'FAILED'}."
            )
        else:
            passed = False
            notes += (
                " Monte-Carlo spot-check: no replication finished "
                "within the budget -> FAILED."
            )
        if mc is not None and mc.budget_exhausted:
            notes += (
                f" (wall-clock budget {budget:.3g}s exhausted after "
                f"{completed}/{monte_carlo_replications} replications)"
            )
    return ExperimentResult(
        experiment_id="E4",
        title="Asymptotic convergence of the feedback bounds (P_i = P_d)",
        paper_claim=(
            "eqs. (6)-(7): lim_{N->inf} C_lower / C_upper = 1 when "
            "P_i = P_d"
        ),
        columns=["p", "N", "C_lower/C_upper", "large-N form", "gap to 1", "ok"],
        rows=rows,
        passed=passed,
        notes=notes,
    )
