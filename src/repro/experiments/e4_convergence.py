"""E4 — eqs. (6)-(7): asymptotic convergence of the Theorem-5 lower
bound to the Theorem-4 upper bound.

With ``P_i = P_d = p`` the time coefficient is 1 and the ratio
``C_lower / C_upper = C_conv(N, p) / (N (1 - p))`` must increase to 1
as the symbol width ``N`` grows, for every fixed ``p < 1``. The table
sweeps ``N`` for several ``p`` and also records the paper's explicit
large-N form ``(N(1-p) - H(p)) / (N(1-p))`` for comparison.
"""

from __future__ import annotations

from typing import Sequence

from ..core.capacity import convergence_ratio, convergence_ratio_limit
from .tables import ExperimentResult

__all__ = ["run"]

_DEFAULT_NS = (1, 2, 4, 8, 12, 16, 24)
_DEFAULT_PS = (0.05, 0.1, 0.2)


def run(
    *,
    bits_per_symbol_values: Sequence[int] = _DEFAULT_NS,
    probs: Sequence[float] = _DEFAULT_PS,
) -> ExperimentResult:
    """Execute E4 and return the result table (deterministic)."""
    rows = []
    passed = True
    for p in probs:
        previous = -1.0
        for n in bits_per_symbol_values:
            ratio = convergence_ratio(n, p)
            approx = convergence_ratio_limit(n, p)
            monotone = ratio >= previous - 1e-12
            # The large-N form is asymptotic; only hold it to account
            # once the 2^-N corrections are small.
            close_to_approx = n < 4 or abs(ratio - approx) < 0.5 / n
            ok = monotone and 0.0 <= ratio <= 1.0 + 1e-12 and close_to_approx
            passed = passed and ok
            rows.append(
                {
                    "p": p,
                    "N": n,
                    "C_lower/C_upper": ratio,
                    "large-N form": approx,
                    "gap to 1": 1.0 - ratio,
                    "ok": ok,
                }
            )
            previous = ratio
        # Convergence: the largest N must be within H(p)/(N(1-p)) of 1.
        final_gap = 1.0 - convergence_ratio(max(bits_per_symbol_values), p)
        if final_gap > 0.12:
            passed = False
    return ExperimentResult(
        experiment_id="E4",
        title="Asymptotic convergence of the feedback bounds (P_i = P_d)",
        paper_claim=(
            "eqs. (6)-(7): lim_{N->inf} C_lower / C_upper = 1 when "
            "P_i = P_d"
        ),
        columns=["p", "N", "C_lower/C_upper", "large-N form", "gap to 1", "ok"],
        rows=rows,
        passed=passed,
        notes=(
            "The gap decays like H(p)/(N(1-p)) + O(2^-N): doubling N "
            "roughly halves it."
        ),
    )
