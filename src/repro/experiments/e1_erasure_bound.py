"""E1 — Theorem 1: the erasure channel upper-bounds the
deletion-insertion channel.

For a sweep of ``(P_d, P_i)`` we simulate the Definition-1 channel and
its genie-aided (extended erasure) twin on the *same* randomness:

* the genie view attains ``N (1 - P_d)`` bits per use exactly (each
  non-erased position delivers a clean symbol, locations known);
* the naive per-position mutual information of the non-synchronous
  receiver collapses far below the bound as soon as deletions shift
  the alignment — why Theorem 1 is an upper bound with lots of air
  beneath it when there is no synchronization.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..core.capacity import erasure_bound_profile
from ..core.channels import ERASURE, DeletionInsertionChannel
from ..core.events import ChannelParameters
from ..simulation.mutual_information import (
    per_position_mutual_information,
    plugin_mutual_information,
)
from ..simulation.rng import make_rng
from .tables import ExperimentResult

__all__ = ["run"]

_DEFAULT_SWEEP: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (0.05, 0.0),
    (0.1, 0.05),
    (0.2, 0.1),
    (0.3, 0.15),
)


def run(
    *,
    seed: int = 0,
    bits_per_symbol: int = 2,
    num_symbols: int = 40_000,
    sweep: Sequence[Tuple[float, float]] = _DEFAULT_SWEEP,
) -> ExperimentResult:
    """Execute E1 and return the result table."""
    rng = make_rng(seed)
    n = bits_per_symbol
    alphabet = 2**n
    rows = []
    passed = True
    bounds = erasure_bound_profile(n, [pd for pd, _ in sweep])
    for (pd, pi), bound in zip(sweep, bounds):
        bound = float(bound)
        params = ChannelParameters.from_rates(deletion=pd, insertion=pi)
        channel = DeletionInsertionChannel(
            params, bits_per_symbol=n, reveal_locations=True
        )
        message = rng.integers(0, alphabet, num_symbols)
        record = channel.transmit(message, rng)

        # Genie (erasure) receiver: knows locations; every non-erased
        # position carries N clean bits.
        view = record.erasure_view
        assert view is not None
        delivered = int(np.count_nonzero(view != ERASURE))
        erasure_rate = n * delivered / record.num_uses if record.num_uses else 0.0

        # Erasure-view per-position MI (positions aligned by the genie).
        kept = view[view != ERASURE]
        sent_kept = message[: view.size][view != ERASURE]
        if kept.size > 1:
            erasure_mi = plugin_mutual_information(
                sent_kept, kept, nx=alphabet, ny=alphabet
            )
        else:
            erasure_mi = 0.0

        # Naive non-synchronous receiver: positionally paired streams.
        naive_mi = per_position_mutual_information(
            message, record.received, alphabet_size=alphabet
        )

        ok = (
            erasure_rate <= bound + 0.05 * n
            and naive_mi <= bound + 1e-6
            and abs(erasure_mi - n) < 0.05 * n  # kept symbols are clean
        )
        passed = passed and ok
        rows.append(
            {
                "P_d": pd,
                "P_i": pi,
                "bound N(1-Pd)": bound,
                "erasure rate": erasure_rate,
                "erasure MI/symbol": erasure_mi,
                "naive MI/position": naive_mi,
                "ok": ok,
            }
        )
    return ExperimentResult(
        experiment_id="E1",
        title="Erasure upper bound vs simulated deletion-insertion channel",
        paper_claim="Theorem 1 / eq. (1): C <= N (1 - P_d)",
        columns=[
            "P_d",
            "P_i",
            "bound N(1-Pd)",
            "erasure rate",
            "erasure MI/symbol",
            "naive MI/position",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "The genie-aided erasure view attains the bound; the naive "
            "unsynchronized receiver's per-position MI collapses with "
            "alignment drift, illustrating the gap Theorem 1 leaves."
        ),
    )
