"""The paper's figures, reproduced as text.

Figures 1-5 of the paper are block diagrams of the channel and protocol
models; this module renders each as ASCII art annotated with the module
that implements it, plus ASCII line plots of the quantitative curves
the analysis implies (the convergence of eqs. 6-7 and the E5
degradation lines). ``repro-covert figures`` prints them all.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..core.capacity import convergence_ratio, feedback_lower_bound_exact

__all__ = ["FIGURES", "render_figure", "ascii_plot", "convergence_figure", "rate_figure"]

_FIG1 = r"""
Figure 1 — synchronization using two variables (repro.sync.variables)

   SENDER                                      RECEIVER
     |  writes symbol -> [ shared register ]      |
     |  toggles ------->  [ S-R "ready" ]  ----reads
     |                                            | reads symbol,
   waits until                                    | toggles
     reads <----------  [ R-S "ack" ]  <----------+
     |  then writes the next symbol ...

  Guarantees: no symbol lost or duplicated under ANY scheduling
  interleaving; cost: quanta spent waiting (E7: ~0.25 bits/quantum
  vs round-robin's 0.5).
"""

_FIG2 = r"""
Figure 2 — the deletion-insertion channel (repro.core.channels)

                      one channel use
            +--------------------------------------+
   queued   |   P_d : next queued symbol DELETED   |
  symbols ->|   P_i : random symbol INSERTED       |-> received
            |   P_t : next queued symbol DELIVERED |   stream
            |         (substituted w.p. P_s)       |
            +--------------------------------------+

  Unlike an erasure channel, the receiver learns NOTHING about where
  deletions/insertions happened (Definition 1).
"""

_FIG3 = r"""
Figure 3 — two ways to synchronize (repro.sync.feedback / common_event)

  (a) Feedback                      (b) Common events
   SENDER ----channel----> RECEIVER   SENDER ----channel----> RECEIVER
     ^                        |          ^                        ^
     +------- feedback -------+          |      [ event source E ]|
                                         +-----------+------------+
  Perfect feedback: Theorems 2-5.     Ticks drive both parties (open
                                      loop): never beats feedback.
"""

_FIG4 = r"""
Figure 4 — common events never beat feedback (repro.sync.common_event)

  (a) E broadcasts to both            (b) add a path Receiver -> E:
      parties (open loop)                 E + Receiver merge into one
                                          party => configuration (a)
   S --ch--> R                            degenerates into FEEDBACK.
   ^         ^
   +--[E]----+                        Hence C(common events) <= C(feedback)
                                      — measured in E6 (ratio <= 1).
"""

_FIG5 = r"""
Figure 5 — the converted channel (repro.infotheory.channels)

  After the counter protocol, each received position k carries:
        with prob 1 - alpha*q :  message[k]        (correct)
        with prob     alpha*q :  one of the other 2^N - 1 symbols
  where q = P_i / (1 - P_d)  and  alpha = (2^N - 1)/2^N.

        x=0 o---(1 - e)---o y=0        an M-ary SYMMETRIC DMC
             \    ...    /             e = alpha * q
        x=1 o---(1 - e)---o y=1        C_conv = N - e log2(M-1) - H(e)
             `--- e/(M-1) crossings ---'
"""

FIGURES: Dict[int, str] = {1: _FIG1, 2: _FIG2, 3: _FIG3, 4: _FIG4, 5: _FIG5}


def render_figure(number: int) -> str:
    """The ASCII rendering of paper figure *number* (1-5)."""
    if number not in FIGURES:
        raise ValueError(f"no figure {number}; the paper has figures 1-5")
    return FIGURES[number].strip("\n")


def ascii_plot(
    series: Dict[str, Sequence[float]],
    x_values: Sequence[float],
    *,
    width: int = 60,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot named series as ASCII (one marker character per series)."""
    if not series:
        raise ValueError("need at least one series")
    xs = np.asarray(x_values, dtype=float)
    markers = "*o+x#@%&"
    all_vals = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(xs.min()), float(xs.max())
    x_span = (x_hi - x_lo) or 1.0
    for idx, (name, vals) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        arr = np.asarray(vals, dtype=float)
        if arr.shape != xs.shape:
            raise ValueError(f"series {name!r} length mismatch")
        for x, v in zip(xs, arr):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((hi - v) / (hi - lo) * (height - 1)))
            grid[row][col] = marker
    lines = [f"{y_label}  max={hi:.4g}"]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * width + f"  min={lo:.4g}")
    lines.append(f"   {x_label}: {x_lo:.4g} .. {x_hi:.4g}")
    legend = "   legend: " + "  ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(series.keys())
    )
    lines.append(legend)
    return "\n".join(lines)


def convergence_figure(*, probs=(0.05, 0.1, 0.2), max_n: int = 24) -> str:
    """ASCII plot of eqs. (6)-(7): C_lower/C_upper vs N at P_i = P_d."""
    ns = list(range(1, max_n + 1))
    series = {
        f"p={p}": [convergence_ratio(n, p) for n in ns] for p in probs
    }
    return (
        "Convergence of C_lower/C_upper at P_i = P_d (paper eqs. 6-7)\n"
        + ascii_plot(series, ns, x_label="N (bits/symbol)", y_label="ratio")
    )


def rate_figure(*, bits_per_symbol: int = 2, insertion: float = 0.05) -> str:
    """ASCII plot of the Theorem-5 rate vs P_d (the E5 degradation)."""
    pds = np.linspace(0.0, 0.6, 25)
    series = {
        "exact LB": [
            feedback_lower_bound_exact(bits_per_symbol, float(pd), insertion)
            for pd in pds
        ],
        "erasure UB": [bits_per_symbol * (1 - float(pd)) for pd in pds],
    }
    return (
        f"Feedback rates vs P_d (N={bits_per_symbol}, P_i={insertion})\n"
        + ascii_plot(series, pds, x_label="P_d", y_label="bits")
    )
