"""E9 — §4.1 + refs [8][9]: numerical capacity bounds for the
no-feedback deletion channel.

For a ``p_d`` sweep the bound ladder

    Gallager lower, finite-block (Vvedenskaya-Dobrushin-style) lower
        <= true capacity <= erasure upper = feedback capacity

is computed and checked for ordering. The gap between ``best_lower``
and the feedback column is the price of not having a feedback path —
the quantity the paper's Section 4 narrative revolves around.
"""

from __future__ import annotations

from typing import Sequence

from ..bounds.brackets import capacity_bracket_sweep
from .tables import ExperimentResult

__all__ = ["run"]

_DEFAULT_PDS = (0.05, 0.1, 0.2, 0.3, 0.5)


def run(
    *,
    deletion_probs: Sequence[float] = _DEFAULT_PDS,
    block_length: int = 8,
) -> ExperimentResult:
    """Execute E9 and return the result table (deterministic)."""
    rows = []
    passed = True
    for bracket in capacity_bracket_sweep(
        deletion_probs, block_length=block_length
    ):
        ok = bracket.is_consistent()
        passed = passed and ok
        rows.append(
            {
                "p_d": bracket.deletion_prob,
                "Gallager LB": bracket.gallager_lower,
                f"block-{block_length} LB": bracket.block_lower,
                "best LB": bracket.best_lower,
                "erasure UB": bracket.erasure_upper,
                "feedback C": bracket.feedback_capacity,
                "ok": ok,
            }
        )
    return ExperimentResult(
        experiment_id="E9",
        title="Deletion-channel capacity bracket (no feedback)",
        paper_claim=(
            "Section 4.1: accurate deletion-insertion capacity is "
            "unknown; numerical lower bounds and the erasure upper bound "
            "bracket it, and feedback closes the bracket to its upper edge"
        ),
        columns=[
            "p_d",
            "Gallager LB",
            f"block-{block_length} LB",
            "best LB",
            "erasure UB",
            "feedback C",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "Finite-block lower bounds carry a log2(n+1)/n boundary "
            "penalty; the Gallager bound dominates at moderate p_d."
        ),
    )
