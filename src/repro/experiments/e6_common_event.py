"""E6 — §4.2.2 / Figures 3-4: a common event source never beats
feedback.

Sweeping the tick-miss probabilities of the open-loop (common-event)
scheme, the experiment measures the induced ``(P_d, P_i)`` and compares
the scheme's credited rate against the feedback upper bound on the same
induced channel. The paper's argument (E with an added path to the
receiver degenerates into feedback) predicts ``ratio <= 1`` everywhere.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..simulation.rng import make_rng
from ..sync.common_event import (
    CommonEventConfig,
    compare_with_feedback,
    simulate_common_event_channel,
)
from .tables import ExperimentResult

__all__ = ["run"]

_DEFAULT_SWEEP: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (0.1, 0.1),
    (0.2, 0.1),
    (0.1, 0.3),
    (0.3, 0.3),
    (0.5, 0.2),
)


def run(
    *,
    seed: int = 0,
    bits_per_symbol: int = 2,
    num_symbols: int = 40_000,
    sweep: Sequence[Tuple[float, float]] = _DEFAULT_SWEEP,
) -> ExperimentResult:
    """Execute E6 and return the result table."""
    rng = make_rng(seed)
    rows = []
    passed = True
    for s_miss, r_miss in sweep:
        config = CommonEventConfig(sender_miss=s_miss, receiver_miss=r_miss)
        message = rng.integers(0, 2**bits_per_symbol, num_symbols)
        run_record = simulate_common_event_channel(
            message, config, rng, bits_per_symbol=bits_per_symbol
        )
        comparison = compare_with_feedback(run_record)
        ok = comparison["ratio"] <= 1.0 + 1e-9
        passed = passed and ok
        rows.append(
            {
                "sender miss": s_miss,
                "receiver miss": r_miss,
                "induced P_d": comparison["induced_deletion"],
                "induced P_i": comparison["induced_insertion"],
                "open-loop rate": comparison["open_loop_rate"],
                "feedback UB": comparison["feedback_upper_bound"],
                "ratio": comparison["ratio"],
                "ok": ok,
            }
        )
    return ExperimentResult(
        experiment_id="E6",
        title="Common-event synchronization vs feedback",
        paper_claim=(
            "Section 4.2.2: exploiting a common event source will not "
            "get higher capacity than using a feedback path"
        ),
        columns=[
            "sender miss",
            "receiver miss",
            "induced P_d",
            "induced P_i",
            "open-loop rate",
            "feedback UB",
            "ratio",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "Open-loop rate is credited generously (erasure-equipped) and "
            "still never exceeds the feedback bound; at zero miss rates "
            "both coincide with the synchronous capacity."
        ),
    )
