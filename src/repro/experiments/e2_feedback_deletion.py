"""E2 — Theorem 3: the resend protocol achieves the erasure capacity of
a deletion channel with perfect feedback.

Sweeping ``p_d``, the simulated resend-until-acknowledged rate (bits
per channel use) should match ``N (1 - p_d)`` to within Monte-Carlo
noise — the bound of Theorem 2 is tight, which is the content of
Theorem 3.
"""

from __future__ import annotations

from typing import Sequence

from ..core.events import ChannelParameters
from ..core.theorems import theorem3_feedback_capacity
from ..simulation.rng import make_rng
from ..sync.feedback import ResendProtocol
from .tables import ExperimentResult

__all__ = ["run"]

_DEFAULT_PDS = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7)


def run(
    *,
    seed: int = 0,
    bits_per_symbol: int = 3,
    num_symbols: int = 100_000,
    deletion_probs: Sequence[float] = _DEFAULT_PDS,
    tolerance: float = 0.02,
) -> ExperimentResult:
    """Execute E2 and return the result table."""
    rng = make_rng(seed)
    n = bits_per_symbol
    rows = []
    passed = True
    for pd in deletion_probs:
        params = ChannelParameters.from_rates(deletion=pd, insertion=0.0)
        protocol = ResendProtocol(params, bits_per_symbol=n)
        message = rng.integers(0, 2**n, num_symbols)
        run_record = protocol.run(message, rng)
        measured = run_record.throughput_per_use
        theory = theorem3_feedback_capacity(n, pd)
        rel_err = abs(measured - theory) / theory if theory else abs(measured)
        ok = rel_err < tolerance and run_record.symbol_errors == 0
        passed = passed and ok
        rows.append(
            {
                "p_d": pd,
                "measured bits/use": measured,
                "theory N(1-pd)": theory,
                "rel err": rel_err,
                "symbol errors": run_record.symbol_errors,
                "ok": ok,
            }
        )
    return ExperimentResult(
        experiment_id="E2",
        title="Resend protocol over a deletion channel with feedback",
        paper_claim=(
            "Theorem 3: capacity of a deletion channel with perfect "
            "feedback equals the erasure capacity N (1 - p_d)"
        ),
        columns=[
            "p_d",
            "measured bits/use",
            "theory N(1-pd)",
            "rel err",
            "symbol errors",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes="Zero symbol errors: the protocol removes all drop-outs.",
    )
