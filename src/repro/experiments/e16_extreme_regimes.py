"""E16 — extreme-regime stress sweep: guarded solvers at the edge of
the parameter space (extension; see ``repro.numerics``).

The paper's bounds matter most exactly where naive numerics fall
apart: ``P_d -> 1`` (almost everything deleted), ``P_i -> 1 - P_d``
(the transmission probability vanishes), and degenerate transition
matrices whose outputs collapse onto one column. This experiment
drives :func:`repro.infotheory.blahut_arimoto_guarded` across that
grid and checks the robustness contract of the guarded numerics layer:

1. every estimate is **finite** — no NaN/Inf escapes a guarded solve,
   however extreme the channel;
2. each estimate agrees with the matching closed form (BEC ``1 - p``,
   Z-channel, M-ary erasure) to within the solver's reported gap;
3. the terminal :class:`repro.numerics.SolverStatus` is honest — every
   point reports how its solve ended, and the per-point status column
   plus the aggregated status counts are part of the result table.

Nothing here is Monte-Carlo: the grid is deterministic, so the table
is bit-reproducible and cheap enough to run in the benchmark suite.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from ..infotheory.blahut_arimoto import blahut_arimoto_guarded
from ..infotheory.channels import (
    bec_capacity,
    binary_erasure_channel,
    m_ary_erasure_capacity,
    m_ary_erasure_channel,
    z_channel,
    z_channel_capacity,
)
from ..numerics import collect_solver_statuses
from .tables import ExperimentResult

__all__ = ["run", "extreme_grid"]

#: Extreme deletion probabilities: the interesting regime of Theorem 1
#: (``C -> 0`` as ``P_d -> 1``) pushed to the edge of float64.
_EXTREME_PD = (0.9, 0.99, 0.999, 1.0 - 1e-6, 1.0 - 1e-9, 1.0 - 1e-12)


def extreme_grid() -> List[Tuple[str, float, Callable[[], np.ndarray], float]]:
    """The stress grid: ``(regime, parameter, matrix factory, exact C)``.

    Regimes covered: the binary erasure channel at ``P_d -> 1`` (the
    Theorem-1 genie channel), its 8-ary version (N = 3 symbols), the
    Z-channel at ``p -> 1``, and a fully degenerate one-column matrix
    (every input maps to the same output; capacity exactly 0).
    """
    grid: List[Tuple[str, float, Callable[[], np.ndarray], float]] = []
    for pd in _EXTREME_PD:
        grid.append(
            (
                "bec",
                pd,
                lambda pd=pd: binary_erasure_channel(pd).transition_matrix,
                bec_capacity(pd),
            )
        )
        grid.append(
            (
                "erasure8",
                pd,
                lambda pd=pd: m_ary_erasure_channel(8, pd).transition_matrix,
                m_ary_erasure_capacity(8, pd),
            )
        )
        grid.append(
            (
                "z",
                pd,
                lambda pd=pd: z_channel(pd).transition_matrix,
                z_channel_capacity(pd),
            )
        )
    # Degenerate limits: all mass on one output column.
    grid.append(("one_column", 1.0, lambda: np.ones((4, 1)), 0.0))
    grid.append(
        ("bec_pd1", 1.0, lambda: binary_erasure_channel(1.0).transition_matrix, 0.0)
    )
    return grid


def run(*, tol: float = 1e-10, max_iter: int = 10_000) -> ExperimentResult:
    """Execute E16 and return the result table."""
    rows = []
    passed = True
    status_counts: Dict[str, int] = {}
    for regime, pd, factory, exact in extreme_grid():
        with collect_solver_statuses() as counts:
            result = blahut_arimoto_guarded(
                factory(), tol=tol, max_iter=max_iter
            )
        for key, count in counts.items():
            status_counts[key] = status_counts.get(key, 0) + count
        finite = bool(np.isfinite(result.capacity))
        error = abs(result.capacity - exact) if finite else float("inf")
        # The contract: finite always; accurate whenever the solve
        # converged (a non-converged status is honest about its gap).
        tolerance = max(1e-8, 10.0 * result.gap)
        ok = finite and ((not result.converged) or error <= tolerance)
        passed = passed and ok
        rows.append(
            {
                "regime": regime,
                "P_d": pd,
                "exact C": exact,
                "BA C": result.capacity,
                "|err|": error,
                "gap": result.gap,
                "iters": result.iterations,
                "status": result.status.value,
                "finite": finite,
                "ok": ok,
            }
        )
    notes_counts = ", ".join(
        f"{k}={v}" for k, v in sorted(status_counts.items())
    )
    return ExperimentResult(
        experiment_id="E16",
        title="Extreme-regime stress sweep: guarded Blahut-Arimoto at the edge",
        paper_claim=(
            "Theorem 1 limit stressed numerically: as P_d -> 1 the "
            "erasure-channel capacity 1 - P_d survives down to 1e-12, "
            "estimates stay finite, and every solve reports an honest "
            "terminal status"
        ),
        columns=[
            "regime",
            "P_d",
            "exact C",
            "BA C",
            "|err|",
            "gap",
            "iters",
            "status",
            "finite",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "Solver statuses across the grid: "
            + (notes_counts or "none recorded")
            + ". Non-converged rows are acceptable only because they "
            "carry their own gap; finiteness is unconditional."
        ),
    )
