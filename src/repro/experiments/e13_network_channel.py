"""E13 (extension) — the estimation recipe on a network timing channel.

The paper's recipe is domain-agnostic: estimate the physical capacity
with a traditional (synchronous) method, measure ``P_d``, correct by
``(1 - P_d)``. This experiment applies it to a packet-timing covert
channel where the *network* — loss, duplication, jitter — plays the
role the scheduler played in §3.1:

* measured ``P_d`` tracks the configured packet-loss rate and measured
  ``P_i`` the duplication rate;
* the corrected capacity sits below the naive synchronous estimate by
  the predicted factor.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.estimation import CapacityEstimator
from ..network.packet_channel import (
    PacketFlowConfig,
    measured_parameters,
    transmit_flow,
)
from ..simulation.rng import make_rng
from .tables import ExperimentResult

__all__ = ["run"]

#: (loss, duplicate, jitter) rows; jitter in gap-duration units.
_DEFAULT_SWEEP: Tuple[Tuple[float, float, float], ...] = (
    (0.0, 0.0, 0.0),
    (0.0, 0.0, 0.15),
    (0.05, 0.0, 0.0),
    (0.0, 0.05, 0.0),
    (0.1, 0.05, 0.1),
    (0.2, 0.1, 0.1),
)


def run(
    *,
    seed: int = 0,
    num_symbols: int = 30_000,
    gap_durations: Sequence[float] = (1.0, 2.0),
    sweep: Sequence[Tuple[float, float, float]] = _DEFAULT_SWEEP,
) -> ExperimentResult:
    """Execute E13 and return the result table."""
    rng = make_rng(seed)
    rows = []
    passed = True
    naive = PacketFlowConfig(gap_durations).synchronous_capacity()
    for loss, dup, jitter in sweep:
        config = PacketFlowConfig(
            gap_durations,
            loss_prob=loss,
            duplicate_prob=dup,
            jitter_std=jitter,
        )
        message = rng.integers(0, config.num_symbols, num_symbols)
        record = transmit_flow(message, config, rng)
        params = measured_parameters(record)
        report = CapacityEstimator(
            bits_per_symbol=1, physical_capacity=naive
        ).estimate(params)

        loss_ok = abs(params.deletion - loss) < max(0.01, 0.25 * loss)
        # Each duplicate splits one gap: insertions per use ~ dup rate.
        dup_ok = abs(params.insertion - dup) < max(0.012, 0.4 * dup)
        corrected = report.corrected_physical
        order_ok = corrected <= naive + 1e-12
        ok = loss_ok and dup_ok and order_ok
        passed = passed and ok
        rows.append(
            {
                "loss": loss,
                "dup": dup,
                "jitter": jitter,
                "measured P_d": params.deletion,
                "measured P_i": params.insertion,
                "measured P_s": params.substitution,
                "naive C (b/s)": naive,
                "corrected C (b/s)": corrected,
                "ok": ok,
            }
        )
    return ExperimentResult(
        experiment_id="E13",
        title="Network packet-timing channel: estimation recipe end to end",
        paper_claim=(
            "Extension of §4.3: the recipe C_real = C_traditional (1 - "
            "P_d) applies unchanged when the non-synchrony comes from "
            "packet loss/duplication instead of scheduling"
        ),
        columns=[
            "loss",
            "dup",
            "jitter",
            "measured P_d",
            "measured P_i",
            "measured P_s",
            "naive C (b/s)",
            "corrected C (b/s)",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "Measured P_d tracks the packet-loss rate and P_i the "
            "duplication rate; P_s is meaningful on the jitter-only row "
            "(alignment shifts make it approximate elsewhere)."
        ),
    )
