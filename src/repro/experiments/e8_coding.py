"""E8 — §4.1: no-feedback communication works but sits far below the
synchronized capacity.

Three coding schemes from the paper's reference chain run over the same
Definition-1 channel without any feedback:

* Davey-MacKay watermark code (ref [13]);
* marker code with a convolutional outer code;
* Zigangirov-style sequential (stack) decoding of a convolutional code
  (ref [12]).

Each reports its information rate (bits per transmitted bit) and frame
reliability; the table sets them against the Theorem-5 feedback rate
and the Theorem-4 upper bound, quantifying the paper's remark that
"the capacity is quite low and in practice sophisticated coding
techniques are required".
"""

from __future__ import annotations


import numpy as np

from ..coding.convolutional import ConvolutionalCode
from ..coding.forward_backward import DriftChannelModel
from ..coding.marker import MarkerCode
from ..coding.stack_decoder import StackDecoder
from ..coding.watermark import WatermarkCode
from ..core.capacity import erasure_upper_bound, feedback_lower_bound_exact
from ..infotheory.probability import is_zero
from ..simulation.rng import make_rng
from .tables import ExperimentResult

__all__ = ["run"]


def run(
    *,
    seed: int = 0,
    insertion_prob: float = 0.02,
    deletion_prob: float = 0.02,
    frames: int = 4,
    payload_bits: int = 48,
) -> ExperimentResult:
    """Execute E8 and return the result table."""
    rng = make_rng(seed)
    channel = DriftChannelModel(
        insertion_prob=insertion_prob,
        deletion_prob=deletion_prob,
        substitution_prob=0.0,
        max_drift=14,
    )
    feedback_rate = feedback_lower_bound_exact(1, deletion_prob, insertion_prob)
    upper = erasure_upper_bound(1, deletion_prob)

    rows = []

    # Watermark code ---------------------------------------------------
    wm = WatermarkCode(payload_bits=payload_bits)
    wm_bers = [wm.simulate_frame(channel, rng).bit_error_rate for _ in range(frames)]
    rows.append(
        {
            "scheme": "watermark (DM01)",
            "rate (bits/bit)": wm.rate,
            "mean BER": float(np.mean(wm_bers)),
            "frames ok": sum(1 for b in wm_bers if is_zero(b)),
            "frames": frames,
        }
    )

    # Marker code -------------------------------------------------------
    mk = MarkerCode(
        payload_bits, period=9, outer=ConvolutionalCode((0o23, 0o35))
    )
    mk_bers = [mk.simulate_frame(channel, rng).bit_error_rate for _ in range(frames)]
    rows.append(
        {
            "scheme": "marker + conv",
            "rate (bits/bit)": mk.rate,
            "mean BER": float(np.mean(mk_bers)),
            "frames ok": sum(1 for b in mk_bers if is_zero(b)),
            "frames": frames,
        }
    )

    # Sequential (stack) decoding ----------------------------------------
    code = ConvolutionalCode((0o23, 0o35))
    stack = StackDecoder(
        code,
        insertion_prob=insertion_prob,
        deletion_prob=deletion_prob,
        substitution_prob=1e-3,
        max_nodes=150_000,
    )
    stack_errs = []
    stack_len = None
    for _ in range(frames):
        bits = rng.integers(0, 2, payload_bits)
        tx = code.encode(bits)
        stack_len = tx.size
        ry, _ = channel.transmit(tx, rng)
        result = stack.decode(ry, payload_bits)
        stack_errs.append(float((result.payload != bits).mean()))
    rows.append(
        {
            "scheme": "conv + stack (Zig69)",
            "rate (bits/bit)": payload_bits / stack_len,
            "mean BER": float(np.mean(stack_errs)),
            "frames ok": sum(1 for b in stack_errs if is_zero(b)),
            "frames": frames,
        }
    )

    rows.append(
        {
            "scheme": "feedback (Thm 5)",
            "rate (bits/bit)": feedback_rate,
            "mean BER": 0.0,
            "frames ok": frames,
            "frames": frames,
        }
    )
    rows.append(
        {
            "scheme": "upper bound N(1-Pd)",
            "rate (bits/bit)": upper,
            "mean BER": 0.0,
            "frames ok": frames,
            "frames": frames,
        }
    )

    coding_rates = [r["rate (bits/bit)"] for r in rows[:3]]
    reliable = any(
        r["mean BER"] < 0.05 for r in rows[:3]
    )  # reliable no-feedback communication exists (Dobrushin)
    below = all(rate < feedback_rate for rate in coding_rates)
    passed = reliable and below
    return ExperimentResult(
        experiment_id="E8",
        title="No-feedback coding vs synchronized capacity",
        paper_claim=(
            "Section 4.1: reliable communication without synchronization "
            "is possible (Dobrushin) but rates are far below the "
            "feedback capacity and require sophisticated coding"
        ),
        columns=["scheme", "rate (bits/bit)", "mean BER", "frames ok", "frames"],
        rows=rows,
        passed=passed,
        notes=(
            f"Channel: P_i={insertion_prob}, P_d={deletion_prob}, no "
            "substitutions. All code rates sit well below the Theorem-5 "
            "feedback rate."
        ),
    )
