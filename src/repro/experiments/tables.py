"""Experiment result containers and plain-text table rendering.

Every experiment module returns an :class:`ExperimentResult`; the CLI
and the EXPERIMENTS.md generator render them with :func:`format_table`.
No plotting dependencies — series are printed as aligned columns, the
venue-appropriate medium for a 2005 systems paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from typing import Dict, List, Sequence

__all__ = ["ExperimentResult", "format_table"]


def _format_cell(value) -> str:
    if isinstance(value, (bool, np.bool_)):
        return "yes" if value else "no"
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Dict]) -> str:
    """Render rows (dicts keyed by column name) as an aligned table."""
    if not columns:
        raise ValueError("need at least one column")
    header = list(columns)
    body = [[_format_cell(row.get(c, "")) for c in header] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Structured outcome of one experiment (E1-E9).

    Attributes
    ----------
    experiment_id:
        Short id, e.g. ``"E3"``.
    title:
        One-line description.
    paper_claim:
        The paper statement being checked, with its anchor.
    columns:
        Column order for table rendering.
    rows:
        One dict per table row.
    passed:
        Whether the claim held in this run (asserted by benchmarks).
    notes:
        Free-form commentary (e.g. discrepancies, reproduction caveats).
    """

    experiment_id: str
    title: str
    paper_claim: str
    columns: List[str]
    rows: List[Dict] = field(default_factory=list)
    passed: bool = True
    notes: str = ""

    def to_table(self) -> str:
        return format_table(self.columns, self.rows)

    def to_dict(self) -> Dict:
        """Plain-JSON form of the result (``repro run --format json``).

        Row cells are coerced from numpy scalars to native Python
        types; anything non-numeric falls back to ``str``.
        """

        def coerce(value):
            if isinstance(value, (bool, np.bool_)):
                return bool(value)
            if isinstance(value, (int, np.integer)):
                return int(value)
            if isinstance(value, (float, np.floating)):
                return float(value)
            if value is None or isinstance(value, str):
                return value
            return str(value)

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "columns": list(self.columns),
            "rows": [
                {str(k): coerce(v) for k, v in row.items()}
                for row in self.rows
            ],
            "passed": bool(self.passed),
            "notes": self.notes,
        }

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        parts = [
            f"[{self.experiment_id}] {self.title}  ({status})",
            f"claim: {self.paper_claim}",
            self.to_table(),
        ]
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)
