"""E12 (extension) — bursty (Markov) inputs tighten the no-feedback
deletion bound.

The E9 bracket used i.i.d. block inputs. The deletion channel's
capacity-achieving inputs are bursty; optimizing a first-order Markov
source through the exact block table strictly improves the block
information, and increasingly so as ``p_d`` grows. The table reports
the optimal flip probability (``< 0.5`` = bursty), the block-information
gain, and the resulting corrected lower bounds.
"""

from __future__ import annotations

from typing import Sequence

from ..bounds.deletion import gallager_lower_bound
from ..bounds.markov_input import optimize_markov_input_sweep
from .tables import ExperimentResult

__all__ = ["run"]

_DEFAULT_PDS = (0.1, 0.2, 0.3, 0.5)


def run(
    *,
    deletion_probs: Sequence[float] = _DEFAULT_PDS,
    block_length: int = 8,
) -> ExperimentResult:
    """Execute E12 and return the result table (deterministic).

    The grid's exact block tables are built once as a stack
    (:func:`repro.bounds.markov_input.optimize_markov_input_sweep`)
    instead of once per ``p_d`` point.
    """
    rows = []
    passed = True
    bounds = optimize_markov_input_sweep(
        block_length, [float(pd) for pd in deletion_probs]
    )
    for pd, bound in zip(deletion_probs, bounds):
        gallager = gallager_lower_bound(float(pd))
        ok = (
            bound.improvement_over_iid >= -1e-9
            and 0.0 < bound.best_flip_prob < 1.0
        )
        # The bursty advantage should grow with p_d (checked overall).
        passed = passed and ok
        rows.append(
            {
                "p_d": float(pd),
                "best flip f*": bound.best_flip_prob,
                "I_n (Markov)": bound.block_information,
                "I_n (iid)": bound.iid_information,
                "gain (bits)": bound.improvement_over_iid,
                "Markov LB": bound.lower_bound,
                "Gallager LB": gallager,
                "ok": ok,
            }
        )
    gains = [row["gain (bits)"] for row in rows]
    if gains != sorted(gains):
        passed = False
    return ExperimentResult(
        experiment_id="E12",
        title="Ablation: Markov-input deletion-channel bounds",
        paper_claim=(
            "Extension of §4.1 / refs [8][9]: numerical lower bounds "
            "improve with bursty inputs; the optimal Markov flip "
            "probability drops below 0.5 as p_d grows"
        ),
        columns=[
            "p_d",
            "best flip f*",
            "I_n (Markov)",
            "I_n (iid)",
            "gain (bits)",
            "Markov LB",
            "Gallager LB",
            "ok",
        ],
        rows=rows,
        passed=passed,
        notes=(
            f"Exact block computation at n = {block_length}; the "
            "log2(n+1)/n boundary penalty applies to the Markov LB "
            "column as in E9."
        ),
    )
