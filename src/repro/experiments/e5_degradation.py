"""E5 — §4.3 remark: capacity degradation is roughly proportional to
``P_d``.

Two series:

* the erasure-bound degradation, which is *exactly* ``P_d`` (slope 1,
  intercept 0, R^2 = 1);
* the Theorem-5 achievable-rate degradation at a fixed small ``P_i``,
  which is ``P_d`` plus an insertion-driven offset — still slope ~1 in
  ``P_d``, verified by a least-squares fit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.degradation import (
    degradation_series,
    fit_degradation,
    relative_degradation_upper,
)
from .tables import ExperimentResult

__all__ = ["run"]

_DEFAULT_PDS = (0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4)


def run(
    *,
    bits_per_symbol: int = 4,
    deletion_probs: Sequence[float] = _DEFAULT_PDS,
    insertion_prob: float = 0.05,
) -> ExperimentResult:
    """Execute E5 and return the result table (deterministic)."""
    pds = np.asarray(deletion_probs, dtype=float)
    upper_series = np.asarray([relative_degradation_upper(p) for p in pds])
    lower_series = degradation_series(
        bits_per_symbol, pds, insertion_prob=insertion_prob
    )
    fit_upper = fit_degradation(pds, upper_series)
    fit_lower = fit_degradation(pds, lower_series)

    rows = []
    for pd, du, dl in zip(pds, upper_series, lower_series):
        rows.append(
            {
                "P_d": float(pd),
                "erasure degradation": float(du),
                f"achievable degr (Pi={insertion_prob})": float(dl),
            }
        )
    rows.append(
        {
            "P_d": "fit slope",
            "erasure degradation": fit_upper.slope,
            f"achievable degr (Pi={insertion_prob})": fit_lower.slope,
        }
    )
    rows.append(
        {
            "P_d": "fit R^2",
            "erasure degradation": fit_upper.r_squared,
            f"achievable degr (Pi={insertion_prob})": fit_lower.r_squared,
        }
    )
    passed = (
        abs(fit_upper.slope - 1.0) < 1e-9
        and abs(fit_upper.intercept) < 1e-9
        and abs(fit_lower.slope - 1.0) < 0.1
        and fit_lower.r_squared > 0.999
    )
    return ExperimentResult(
        experiment_id="E5",
        title="Capacity degradation vs deletion probability",
        paper_claim=(
            "Section 4.3: the capacity degradation due to non-synchronous "
            "effects is roughly proportional to P_d"
        ),
        columns=[
            "P_d",
            "erasure degradation",
            f"achievable degr (Pi={insertion_prob})",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "Erasure-bound degradation is exactly P_d; the achievable-rate "
            "series adds a constant insertion offset but keeps slope ~1."
        ),
    )
