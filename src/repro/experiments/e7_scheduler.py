"""E7 — §3.1-3.2: evaluating scheduler designs by the covert capacity
they leave behind.

Runs the oblivious storage covert channel under each scheduler policy,
measures the induced ``(P_d, P_i)``, and ranks the schedulers by the
Theorem-5 achievable rate in bits per scheduling quantum — the paper's
proposed use of non-synchronous capacity estimation as a design-
evaluation tool. Also reproduces the §3.2 handshake trade-off: the
Figure-1 mechanism eliminates symbol loss at the cost of waiting
quanta.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from ..os_model.covert import HandshakeReceiver, HandshakeSender
from ..os_model.kernel import UniprocessorKernel
from ..os_model.measurement import run_oblivious_channel
from ..os_model.scheduler import (
    FuzzyTimeScheduler,
    LotteryScheduler,
    MultilevelFeedbackScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    StrideScheduler,
)
from ..simulation.rng import make_rng
from .tables import ExperimentResult

__all__ = ["run", "DEFAULT_SCHEDULERS"]

DEFAULT_SCHEDULERS: Tuple[Tuple[str, Callable[[], Scheduler]], ...] = (
    ("round-robin", RoundRobinScheduler),
    ("stride", StrideScheduler),
    ("mlfq", MultilevelFeedbackScheduler),
    ("lottery", LotteryScheduler),
    ("random", RandomScheduler),
    ("fuzzy-time(0.3)", lambda: FuzzyTimeScheduler(0.3)),
    ("fuzzy-time(0.6)", lambda: FuzzyTimeScheduler(0.6)),
)


def run(
    *,
    seed: int = 0,
    message_symbols: int = 20_000,
    schedulers: Sequence[Tuple[str, Callable[[], Scheduler]]] = DEFAULT_SCHEDULERS,
) -> ExperimentResult:
    """Execute E7 and return the result table."""
    rng = make_rng(seed)
    rows = []
    rates = {}
    for label, factory in schedulers:
        m = run_oblivious_channel(
            factory(), rng, message_symbols=message_symbols
        )
        rates[label] = m.achievable_per_quantum
        rows.append(
            {
                "scheduler": label,
                "P_d": m.params.deletion,
                "P_i": m.params.insertion,
                "corrected C (bits/use)": m.report.corrected_capacity,
                "achievable (bits/quantum)": m.achievable_per_quantum,
            }
        )

    # Handshake variant under the random scheduler: zero loss, but
    # waiting overhead caps throughput at ~1/4 bit per quantum.
    hs_rng = make_rng(seed + 1)
    message = hs_rng.integers(0, 2, message_symbols)
    sender = HandshakeSender(0, message)
    receiver = HandshakeReceiver(1)
    kernel = UniprocessorKernel([sender, receiver], RandomScheduler())
    kernel.run(
        64 * message_symbols, hs_rng, stop_condition=lambda _k: sender.done
    )
    delivered = receiver.received
    lossless = bool(
        np.array_equal(delivered, message[: delivered.size])
        and delivered.size >= message_symbols - 1
    )
    hs_rate = delivered.size / kernel.time if kernel.time else 0.0
    rows.append(
        {
            "scheduler": "random+handshake(Fig.1)",
            "P_d": 0.0,
            "P_i": 0.0,
            "corrected C (bits/use)": 1.0,
            "achievable (bits/quantum)": hs_rate,
        }
    )

    ranking_ok = (
        rates["round-robin"] >= rates["fuzzy-time(0.3)"] >= rates["fuzzy-time(0.6)"]
        and rates["round-robin"] >= rates["random"]
    )
    passed = ranking_ok and lossless
    return ExperimentResult(
        experiment_id="E7",
        title="Scheduler case study: induced non-synchrony and capacity",
        paper_claim=(
            "Sections 3.1-3.2: scheduling induces deletions/insertions; "
            "the non-synchronous estimate ranks candidate scheduler "
            "implementations; the Figure-1 handshake trades loss for "
            "waiting time"
        ),
        columns=[
            "scheduler",
            "P_d",
            "P_i",
            "corrected C (bits/use)",
            "achievable (bits/quantum)",
        ],
        rows=rows,
        passed=passed,
        notes=(
            "Round-robin, stride, and MLFQ (all deterministic) leave the "
            "full synchronous capacity — fairness alone does not disturb "
            "the covert pair; only *randomness* (lottery/random/fuzzy) "
            "does. The handshake delivers losslessly at ~0.25 "
            "bits/quantum (half the quanta are waits)."
        ),
    )
