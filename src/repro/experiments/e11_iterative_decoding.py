"""E11 (extension) — iterative inner/outer decoding gain.

The paper's §4.1 remark that no-feedback communication "requires
sophisticated coding techniques" is made concrete: the Davey-MacKay
style receiver that iterates between the drift decoder and an LDPC
outer code is compared against the one-shot pipeline at the same rate
and channel. The table reports BER per iteration count — each extra
round buys reliability with zero rate cost.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..coding.forward_backward import DriftChannelModel
from ..coding.iterative import IterativeWatermarkCode
from ..infotheory.probability import is_zero
from ..simulation.rng import make_rng
from .tables import ExperimentResult

__all__ = ["run"]


def run(
    *,
    seed: int = 0,
    insertion_prob: float = 0.04,
    deletion_prob: float = 0.04,
    frames: int = 6,
    iteration_counts: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    """Execute E11 and return the result table."""
    rng = make_rng(seed)
    code = IterativeWatermarkCode()
    channel = DriftChannelModel(
        insertion_prob=insertion_prob,
        deletion_prob=deletion_prob,
        substitution_prob=0.0,
        max_drift=16,
    )
    rows = []
    mean_bers = {}
    for iters in iteration_counts:
        bers = []
        frame_ok = 0
        for k in range(frames):
            frame_rng = make_rng(seed * 1000 + 17 * k)  # same frames per row
            result = code.simulate_frame(channel, frame_rng, iterations=iters)
            bers.append(result.bit_error_rate)
            frame_ok += is_zero(result.bit_error_rate)
        mean_bers[iters] = float(np.mean(bers))
        rows.append(
            {
                "iterations": iters,
                "rate (bits/bit)": code.rate,
                "mean BER": mean_bers[iters],
                "frames ok": frame_ok,
                "frames": frames,
            }
        )
    first = iteration_counts[0]
    last = iteration_counts[-1]
    passed = mean_bers[last] <= mean_bers[first] + 1e-12
    return ExperimentResult(
        experiment_id="E11",
        title="Ablation: iterative watermark/LDPC decoding",
        paper_claim=(
            "Extension of §4.1: iterating the inner drift decoder and "
            "the outer code improves reliability at the same rate"
        ),
        columns=["iterations", "rate (bits/bit)", "mean BER", "frames ok", "frames"],
        rows=rows,
        passed=passed,
        notes=(
            f"Channel P_i={insertion_prob}, P_d={deletion_prob}; the same "
            "frame seeds are reused across rows so the comparison is "
            "paired."
        ),
    )
