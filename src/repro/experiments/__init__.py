"""Experiments E1-E9: one module per reproduced claim (see DESIGN.md
section 3 for the experiment index)."""

from .registry import EXPERIMENTS, run_all, run_experiment
from .tables import ExperimentResult, format_table

__all__ = [
    "EXPERIMENTS",
    "run_all",
    "run_experiment",
    "ExperimentResult",
    "format_table",
]
