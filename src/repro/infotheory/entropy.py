"""Entropy and mutual-information primitives.

All logarithms are base 2: quantities are measured in **bits**. Functions
accept plain floats, sequences, or numpy arrays, and are safe at the
boundary of the probability simplex (``0 log 0`` is treated as 0, per the
usual information-theoretic convention).

These primitives underlie every capacity computation in this package,
from the closed-form bounds of Wang & Lee's Theorems 1-5 to the
Blahut-Arimoto numerical solver in :mod:`repro.infotheory.blahut_arimoto`.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from .probability import is_one, is_zero

__all__ = [
    "binary_entropy",
    "binary_entropy_derivative",
    "inverse_binary_entropy",
    "entropy",
    "cross_entropy",
    "kl_divergence",
    "joint_entropy",
    "conditional_entropy",
    "mutual_information",
    "mutual_information_from_joint",
    "normalize_distribution",
    "validate_distribution",
]

ArrayLike = Union[float, Iterable[float], np.ndarray]

_EPS = 1e-12


def _as_prob_array(p: ArrayLike) -> np.ndarray:
    """Coerce *p* to a float numpy array, rejecting negative entries."""
    arr = np.asarray(p, dtype=float)
    if np.any(arr < -_EPS):
        raise ValueError(f"probabilities must be non-negative, got {arr!r}")
    return np.clip(arr, 0.0, None)


def _xlogx(p: np.ndarray) -> np.ndarray:
    """Elementwise ``p * log2(p)`` with the convention ``0 log 0 = 0``."""
    out = np.zeros_like(p, dtype=float)
    mask = p > 0
    out[mask] = p[mask] * np.log2(p[mask])
    return out


def validate_distribution(p: ArrayLike, *, atol: float = 1e-9) -> np.ndarray:
    """Validate that *p* is a probability distribution and return it.

    Raises
    ------
    ValueError
        If any entry is negative or the entries do not sum to 1 within
        *atol*.
    """
    arr = _as_prob_array(p)
    total = float(arr.sum())
    if not np.isclose(total, 1.0, atol=atol):
        raise ValueError(f"distribution sums to {total}, expected 1.0")
    return arr


def normalize_distribution(p: ArrayLike) -> np.ndarray:
    """Rescale non-negative weights *p* into a probability distribution."""
    arr = _as_prob_array(p)
    total = float(arr.sum())
    if total <= 0:
        raise ValueError("cannot normalize an all-zero weight vector")
    return arr / total


def binary_entropy(p: ArrayLike) -> Union[float, np.ndarray]:
    """Binary entropy function ``H(p) = -p log2 p - (1-p) log2 (1-p)``.

    This is eq. (5) of Wang & Lee. Accepts scalars or arrays; values must
    lie in [0, 1].
    """
    arr = np.asarray(p, dtype=float)
    if np.any((arr < -_EPS) | (arr > 1 + _EPS)):
        raise ValueError(f"binary_entropy requires p in [0, 1], got {p!r}")
    arr = np.clip(arr, 0.0, 1.0)
    h = -(_xlogx(arr) + _xlogx(1.0 - arr))
    if np.isscalar(p) or (isinstance(p, np.ndarray) and p.ndim == 0):
        return float(h)
    return h


def binary_entropy_derivative(p: float) -> float:
    """Derivative ``H'(p) = log2((1-p)/p)`` for ``p`` in (0, 1)."""
    if not 0.0 < p < 1.0:
        raise ValueError("derivative of H is defined only on (0, 1)")
    return float(np.log2((1.0 - p) / p))


def inverse_binary_entropy(h: float, *, branch: str = "lower") -> float:
    """Invert the binary entropy function on one of its two branches.

    Parameters
    ----------
    h:
        Entropy value in [0, 1].
    branch:
        ``"lower"`` returns the root in [0, 1/2]; ``"upper"`` the root in
        [1/2, 1].
    """
    if not 0.0 <= h <= 1.0:
        raise ValueError(f"entropy value must be in [0, 1], got {h}")
    if branch not in ("lower", "upper"):
        raise ValueError("branch must be 'lower' or 'upper'")
    if is_zero(h):
        return 0.0 if branch == "lower" else 1.0
    if is_one(h):
        return 0.5
    lo, hi = (0.0, 0.5) if branch == "lower" else (0.5, 1.0)
    # Bisection: H is monotone on each branch and continuous.
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        val = binary_entropy(mid)
        if branch == "lower":
            if val < h:
                lo = mid
            else:
                hi = mid
        else:
            if val > h:
                lo = mid
            else:
                hi = mid
    return 0.5 * (lo + hi)


def entropy(p: ArrayLike) -> float:
    """Shannon entropy ``H(X) = -sum p_i log2 p_i`` in bits."""
    arr = validate_distribution(p)
    return float(-_xlogx(arr).sum())


def cross_entropy(p: ArrayLike, q: ArrayLike) -> float:
    """Cross entropy ``-sum p_i log2 q_i``; infinite if q=0 where p>0."""
    parr = validate_distribution(p)
    qarr = validate_distribution(q)
    if parr.shape != qarr.shape:
        raise ValueError("p and q must have the same shape")
    mask = parr > 0
    if np.any(qarr[mask] == 0):
        return float("inf")
    return float(-(parr[mask] * np.log2(qarr[mask])).sum())


def kl_divergence(p: ArrayLike, q: ArrayLike) -> float:
    """Kullback-Leibler divergence ``D(p || q)`` in bits."""
    parr = validate_distribution(p)
    qarr = validate_distribution(q)
    if parr.shape != qarr.shape:
        raise ValueError("p and q must have the same shape")
    mask = parr > 0
    if np.any(qarr[mask] == 0):
        return float("inf")
    return float((parr[mask] * np.log2(parr[mask] / qarr[mask])).sum())


def joint_entropy(joint: ArrayLike) -> float:
    """Entropy of a joint distribution given as a 2-D array ``P(x, y)``."""
    arr = _as_prob_array(joint)
    if not np.isclose(arr.sum(), 1.0, atol=1e-9):
        raise ValueError("joint distribution must sum to 1")
    return float(-_xlogx(arr).sum())


def conditional_entropy(joint: ArrayLike) -> float:
    """Conditional entropy ``H(Y|X)`` from a joint array ``P(x, y)``.

    Rows index X, columns index Y.
    """
    arr = _as_prob_array(joint)
    if arr.ndim != 2:
        raise ValueError("joint must be a 2-D array P(x, y)")
    if not np.isclose(arr.sum(), 1.0, atol=1e-9):
        raise ValueError("joint distribution must sum to 1")
    px = arr.sum(axis=1)
    h_joint = float(-_xlogx(arr).sum())
    h_x = float(-_xlogx(px).sum())
    return h_joint - h_x


def mutual_information_from_joint(joint: ArrayLike) -> float:
    """Mutual information ``I(X; Y)`` from a joint array ``P(x, y)``."""
    arr = _as_prob_array(joint)
    if arr.ndim != 2:
        raise ValueError("joint must be a 2-D array P(x, y)")
    total = arr.sum()
    if not np.isclose(total, 1.0, atol=1e-9):
        raise ValueError("joint distribution must sum to 1")
    px = arr.sum(axis=1)
    py = arr.sum(axis=0)
    h_x = float(-_xlogx(px).sum())
    h_y = float(-_xlogx(py).sum())
    h_xy = float(-_xlogx(arr).sum())
    # Clamp tiny negative values caused by floating-point cancellation.
    return max(0.0, h_x + h_y - h_xy)


def mutual_information(input_dist: ArrayLike, transition: ArrayLike) -> float:
    """Mutual information ``I(X; Y)`` of a DMC.

    Parameters
    ----------
    input_dist:
        Input distribution ``P(x)`` of length ``nx``.
    transition:
        Row-stochastic transition matrix ``P(y|x)`` of shape ``(nx, ny)``.
    """
    px = validate_distribution(input_dist)
    w = _as_prob_array(transition)
    if w.ndim != 2 or w.shape[0] != px.shape[0]:
        raise ValueError("transition must be (nx, ny) with nx = len(input_dist)")
    row_sums = w.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-9):
        raise ValueError("transition matrix rows must each sum to 1")
    joint = px[:, None] * w
    return mutual_information_from_joint(joint)
