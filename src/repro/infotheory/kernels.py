"""Batched multi-channel solver kernels (stack-of-channels Blahut-Arimoto).

Every bound sweep in this package — the E9 deletion grid, the indel
``(P_d, P_i)`` grids, service query batches — evaluates the *same*
algorithm over many small channels. Solving them one at a time pays the
Python/numpy dispatch overhead per channel per iteration; these kernels
instead operate on a ``(k, nx, ny)`` **stack** of transition matrices
with one extra leading axis and einsum/broadcast throughout, so a
k-channel sweep costs one well-vectorized iteration loop.

Per-channel convergence is tracked with boolean masks: channels that
meet the duality-gap criterion freeze (their iterates stop updating and
drop out of the arithmetic) while stragglers keep iterating — the
kernel's cost tracks the *slowest* channel only in iteration count, not
in per-iteration width. The guard semantics mirror
:class:`repro.numerics.IterationGuard` exactly (aborted / converged /
diverged / stalled / max-iter classification in that order, best-so-far
fallback for non-converged channels), so a batched sweep reports the
same solver health the scalar loop would.

The O(k·nx·ny) inner primitive is dispatched through
:mod:`repro.numerics.backend` (``numpy`` default, optional JIT
backends); the resolved backend is stamped into the result's
:class:`repro.numerics.SolverDiagnostics`. The scalar
:func:`repro.infotheory.blahut_arimoto.blahut_arimoto` remains the
reference oracle — the parity suite holds this kernel to 1e-12 against
it per channel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple, Union

import numpy as np

from ..numerics import (
    KernelBackend,
    SolverDiagnostics,
    SolverStatus,
    get_backend,
    masked_log2,
    normalized_exp2,
    numpy_step,
    record_status,
    safe_log2,
    stage,
)
from ..numerics.backend import StepFn
from .blahut_arimoto import BlahutArimotoResult

__all__ = [
    "BATCH_SOLVER",
    "BatchedBAResult",
    "PenalizedBABatchResult",
    "validate_transition_stack",
    "blahut_arimoto_batch",
    "penalized_blahut_arimoto_batch",
]

#: Solver name batched runs report under (status collector + diagnostics).
BATCH_SOLVER = "blahut_arimoto_batch"

#: Severity order used to summarize a stack's statuses into one
#: diagnostics status (worst wins; CONVERGED only if unanimous).
_SEVERITY = (
    SolverStatus.CONVERGED,
    SolverStatus.MAX_ITER,
    SolverStatus.STALLED,
    SolverStatus.DIVERGED,
    SolverStatus.ABORTED,
)


def validate_transition_stack(transitions: np.ndarray) -> np.ndarray:
    """Validate and return a ``(k, nx, ny)`` stack of channel matrices.

    Applies the same admission checks as the scalar solver — finite
    entries (checked explicitly, before they can trip the row-sum test
    with a confusing message), non-negative probabilities, rows summing
    to 1 — to every channel in the stack at once. A single ``(nx, ny)``
    matrix is promoted to a 1-stack.
    """
    w = np.asarray(transitions, dtype=float)
    if w.ndim == 2:
        w = w[None, :, :]
    if w.ndim != 3:
        raise ValueError("transitions must be a (k, nx, ny) channel stack")
    if w.shape[0] == 0:
        raise ValueError("channel stack is empty")
    if not np.all(np.isfinite(w)):
        raise ValueError("transition stack contains non-finite entries")
    if np.any(w < 0):
        raise ValueError("transition probabilities must be non-negative")
    if not np.allclose(w.sum(axis=2), 1.0, atol=1e-9):
        raise ValueError("transition matrix rows must each sum to 1")
    return w


def _initial_stack(
    initial_input: Optional[np.ndarray], k: int, nx: int
) -> np.ndarray:
    """Per-channel starting distributions with the scalar smoothing rule."""
    if initial_input is None:
        return np.full((k, nx), 1.0 / nx)
    p = np.asarray(initial_input, dtype=float)
    if p.shape == (nx,):
        p = np.broadcast_to(p, (k, nx)).copy()
    if p.shape != (k, nx):
        raise ValueError("initial_input has wrong shape")
    if np.any(p < 0) or not np.allclose(p.sum(axis=1), 1.0, atol=1e-9):
        raise ValueError("initial_input rows must be distributions")
    if np.any(p == 0):
        # Zero entries can never recover under the multiplicative
        # update; smooth (only) the rows that contain exact zeros so a
        # strictly positive start point passes through untouched.
        rows = np.any(p == 0, axis=1)
        smoothed = p[rows] + 1e-12
        p[rows] = smoothed / smoothed.sum(axis=1, keepdims=True)
    return p


@dataclass(frozen=True)
class BatchedBAResult:
    """Outcome of one batched Blahut-Arimoto run over a channel stack.

    All per-channel attributes are arrays indexed by the stack axis.

    Attributes
    ----------
    capacity:
        Capacity estimates, shape ``(k,)`` (best-so-far for channels
        with a non-``converged`` status, as in the scalar solver).
    input_distribution:
        Capacity-achieving inputs, shape ``(k, nx)``.
    iterations:
        Iterations each channel ran before freezing, shape ``(k,)``.
    converged:
        ``status == CONVERGED`` per channel, shape ``(k,)``.
    gap:
        Final duality gap per channel (best observed gap when not
        converged), shape ``(k,)``.
    statuses:
        Terminal :class:`repro.numerics.SolverStatus` per channel.
    backend:
        Name of the kernel backend that ran the inner step.
    diagnostics:
        Stack-level :class:`repro.numerics.SolverDiagnostics`: worst
        status, iteration count of the slowest channel, the max-gap
        trajectory tail, and the backend name in ``notes``.
    """

    capacity: np.ndarray
    input_distribution: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    gap: np.ndarray
    statuses: Tuple[SolverStatus, ...]
    backend: str
    diagnostics: SolverDiagnostics

    def __len__(self) -> int:
        return self.capacity.shape[0]

    def unbatch(self) -> List[BlahutArimotoResult]:
        """Split into per-channel scalar-shaped results.

        Each entry mirrors what the scalar solver would return for that
        channel (capacity, distribution, iterations, status, gap); the
        shared stack-level diagnostics are attached to every entry.
        """
        return [
            BlahutArimotoResult(
                capacity=float(self.capacity[i]),
                input_distribution=self.input_distribution[i],
                iterations=int(self.iterations[i]),
                converged=bool(self.converged[i]),
                gap=float(self.gap[i]),
                status=self.statuses[i],
                diagnostics=self.diagnostics,
            )
            for i in range(len(self))
        ]


def _stack_diagnostics(
    statuses: Tuple[SolverStatus, ...],
    iterations: np.ndarray,
    gap: np.ndarray,
    tail: Deque[float],
    backend_name: str,
) -> SolverDiagnostics:
    """Summarize a stack's per-channel outcomes into one diagnostics."""
    worst = max(statuses, key=_SEVERITY.index)
    finite_gaps = gap[np.isfinite(gap)]
    counts = {s: statuses.count(s) for s in _SEVERITY if s in statuses}
    notes = (f"backend={backend_name}",) + tuple(
        f"{s.value}={n}" for s, n in counts.items()
    )
    return SolverDiagnostics(
        solver=BATCH_SOLVER,
        status=worst,
        iterations=int(iterations.max()) if iterations.size else 0,
        residual_tail=tuple(tail),
        best_residual=float(finite_gaps.max()) if finite_gaps.size else float("inf"),
        best_iteration=int(iterations.max()) if iterations.size else 0,
        notes=notes,
    )


def blahut_arimoto_batch(
    transitions: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    initial_input: Optional[np.ndarray] = None,
    stall_window: int = 200,
    divergence_factor: float = 1e6,
    backend: Optional[Union[str, KernelBackend]] = None,
) -> BatchedBAResult:
    """Blahut-Arimoto over a ``(k, nx, ny)`` stack of channels at once.

    Semantics match running the scalar
    :func:`~repro.infotheory.blahut_arimoto.blahut_arimoto` (with its
    default guard: ``stall_window=200``, divergence at ``1e6 ×`` best)
    independently per channel — capacity, input distribution, and gap
    agree to 1e-12 — but the iteration is one vectorized loop whose
    per-sweep cost covers only the channels still active: early
    finishers freeze while stragglers iterate.

    Parameters
    ----------
    transitions:
        Channel stack ``(k, nx, ny)``; a single matrix is promoted to
        a 1-stack. All channels must share the alphabet shape — pad
        heterogeneous sweeps (see the bounds sweeps) before stacking.
    tol, max_iter, initial_input:
        As in the scalar solver; ``initial_input`` may be one ``(nx,)``
        row shared by the stack or a full ``(k, nx)`` array.
    stall_window, divergence_factor:
        Guard parameters (scalar defaults).
    backend:
        Kernel backend name/instance; ``None`` resolves through
        :func:`repro.numerics.get_backend` (``use_backend`` override,
        then ``REPRO_KERNEL_BACKEND``, then numpy).
    """
    w = validate_transition_stack(transitions)
    k, nx, _ny = w.shape
    be = get_backend(backend)
    p = _initial_stack(initial_input, k, nx)
    log_w = masked_log2(w)

    iterations = np.zeros(k, dtype=np.int64)
    status_codes: List[Optional[SolverStatus]] = [None] * k
    best_gap = np.full(k, np.inf)
    best_iteration = np.zeros(k, dtype=np.int64)
    out_capacity = np.zeros(k)
    out_p = p.copy()
    out_gap = np.full(k, np.inf)
    have_best = np.zeros(k, dtype=bool)
    best_capacity = np.zeros(k)
    best_p = p.copy()
    active = np.ones(k, dtype=bool)
    tail: Deque[float] = deque(maxlen=8)

    with stage("solver"):
        while active.any():
            idx = np.nonzero(active)[0]
            pa = p[idx]
            d = be.step(pa, w[idx], log_w[idx])
            capacity = np.einsum("kx,kx->k", pa, d)
            gap = d.max(axis=1) - capacity
            iterations[idx] += 1
            it = iterations[idx]
            tail.append(float(np.max(gap)))

            # Classification order mirrors IterationGuard.update:
            # non-finite -> aborted; best-so-far bookkeeping; gap <= tol
            # -> converged; divergence vs. best; stall window; max_iter.
            finite = np.isfinite(gap)
            improved = finite & (gap < best_gap[idx])
            imp = idx[improved]
            best_gap[imp] = gap[improved]
            best_iteration[imp] = it[improved]
            best_capacity[imp] = capacity[improved]
            best_p[imp] = pa[improved]
            have_best[imp] = True

            conv = finite & (gap <= tol)
            div = (
                finite
                & ~conv
                & np.isfinite(best_gap[idx])
                & (gap > divergence_factor * np.maximum(best_gap[idx], 1e-30))
            )
            stall = (
                finite
                & ~conv
                & ~div
                & (it - best_iteration[idx] >= stall_window)
            )
            capped = finite & ~conv & ~div & ~stall & (it >= max_iter)
            aborted = ~finite

            for status, mask in (
                (SolverStatus.ABORTED, aborted),
                (SolverStatus.CONVERGED, conv),
                (SolverStatus.DIVERGED, div),
                (SolverStatus.STALLED, stall),
                (SolverStatus.MAX_ITER, capped),
            ):
                if mask.any():
                    for channel in idx[mask]:
                        status_codes[channel] = status
            done = aborted | conv | div | stall | capped
            if done.any():
                # Terminal channels keep their *current* iterate here;
                # non-converged ones are replaced by best-so-far below.
                t = idx[done]
                out_capacity[t] = capacity[done]
                out_p[t] = pa[done]
                out_gap[t] = gap[done]
                active[t] = False
            cont = ~done
            if cont.any():
                ci = idx[cont]
                p[ci] = normalized_exp2(safe_log2(pa[cont]) + d[cont], axis=-1)

    statuses = tuple(
        s if s is not None else SolverStatus.MAX_ITER for s in status_codes
    )
    converged = np.array(
        [s is SolverStatus.CONVERGED for s in statuses], dtype=bool
    )
    # Honest fallback, as in the scalar solver: a non-converged channel
    # reports its best finite iterate, not its last one.
    fallback = ~converged & have_best
    out_capacity[fallback] = best_capacity[fallback]
    out_p[fallback] = best_p[fallback]
    out_gap[fallback] = best_gap[fallback]
    bad = ~np.isfinite(out_capacity)
    out_capacity[bad] = 0.0
    out_gap[bad] = np.inf

    for status in statuses:
        record_status(BATCH_SOLVER, status)
    return BatchedBAResult(
        capacity=np.maximum(0.0, out_capacity),
        input_distribution=out_p,
        iterations=iterations,
        converged=converged,
        gap=out_gap,
        statuses=statuses,
        backend=be.name,
        diagnostics=_stack_diagnostics(
            statuses, iterations, out_gap, tail, be.name
        ),
    )


@dataclass(frozen=True)
class PenalizedBABatchResult:
    """Outcome of the batched penalized (cost-constrained) BA inner solve.

    Attributes
    ----------
    input_distribution:
        Maximizing inputs per channel, shape ``(k, nx)``.
    converged:
        Whether each channel's duality gap met ``tol`` before the
        iteration cap, shape ``(k,)``. An unconverged inner solve is
        precisely what would otherwise silently contaminate an outer
        Dinkelbach residual — callers must surface it.
    iterations:
        Iterations each channel ran, shape ``(k,)``.
    """

    input_distribution: np.ndarray
    converged: np.ndarray
    iterations: np.ndarray


def penalized_blahut_arimoto_batch(
    transitions: np.ndarray,
    penalties: np.ndarray,
    *,
    log_w: Optional[np.ndarray] = None,
    tol: float = 1e-11,
    max_iter: int = 5000,
    step: StepFn = numpy_step,
) -> PenalizedBABatchResult:
    """Maximize ``I(p, W_k) - p · penalties_k`` per channel in a stack.

    The Lagrangian (cost-constrained) Blahut-Arimoto inner step of
    Dinkelbach's method, batched. Converged channels freeze while the
    rest iterate, exactly like :func:`blahut_arimoto_batch`.

    Parameters
    ----------
    transitions:
        Stack ``(k, nx, ny)``; a single matrix is promoted to a 1-stack.
        Assumed pre-validated (the outer solver owns admission checks).
    penalties:
        Per-input penalties, shape ``(k, nx)`` (or ``(nx,)`` for a
        1-stack) — ``lambda * tau`` in the timed-DMC solve.
    log_w:
        Optional precomputed :func:`repro.numerics.masked_log2` of the
        stack; constant across an outer loop, so callers hoist it.
    step:
        The divergence primitive. Defaults to the pure
        :func:`repro.numerics.numpy_step`; pass an explicit backend's
        ``step`` to override. Deliberately **not** resolved from the
        environment here: this function runs inside memoized solvers
        (``timed_dmc_capacity``), whose cached results must not depend
        on ambient process state (rule GRAPH001).
    """
    w = np.asarray(transitions, dtype=float)
    if w.ndim == 2:
        w = w[None, :, :]
    k, nx, _ny = w.shape
    pen = np.asarray(penalties, dtype=float)
    if pen.shape == (nx,):
        pen = pen[None, :]
    if pen.shape != (k, nx):
        raise ValueError("penalties must have shape (k, nx)")
    if log_w is None:
        log_w = masked_log2(w)
    elif log_w.ndim == 2:
        log_w = log_w[None, :, :]

    p = np.full((k, nx), 1.0 / nx)
    converged = np.zeros(k, dtype=bool)
    iterations = np.zeros(k, dtype=np.int64)
    active = np.ones(k, dtype=bool)
    while active.any():
        idx = np.nonzero(active)[0]
        pa = p[idx]
        d = step(pa, w[idx], log_w[idx]) - pen[idx]
        value = np.einsum("kx,kx->k", pa, d)
        gap = d.max(axis=1) - value
        iterations[idx] += 1
        done = gap < tol
        converged[idx[done]] = True
        active[idx[done]] = False
        capped = ~done & (iterations[idx] >= max_iter)
        active[idx[capped]] = False
        cont = ~done & ~capped
        if cont.any():
            ci = idx[cont]
            p[ci] = normalized_exp2(safe_log2(pa[cont]) + d[cont], axis=-1)
    return PenalizedBABatchResult(
        input_distribution=p, converged=converged, iterations=iterations
    )
