"""Blahut-Arimoto algorithm for discrete memoryless channel capacity.

The algorithm alternates between the optimal "backward" conditional
distribution and the capacity-achieving input distribution, converging to
the channel capacity ``C = max_{p(x)} I(X; Y)``. It is the numerical
workhorse used to cross-check every closed-form capacity in this package
(erasure channels, M-ary symmetric converted channels, Z-channels, ...).

Reference: R. Blahut, "Computation of channel capacity and
rate-distortion functions", IEEE Trans. IT, 1972.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["BlahutArimotoResult", "blahut_arimoto", "channel_capacity"]

_EPS = 1e-300


@dataclass(frozen=True)
class BlahutArimotoResult:
    """Outcome of a Blahut-Arimoto run.

    Attributes
    ----------
    capacity:
        Channel capacity estimate in bits per channel use.
    input_distribution:
        Capacity-achieving input distribution found by the algorithm.
    iterations:
        Number of iterations performed.
    converged:
        Whether the duality-gap stopping criterion was met.
    gap:
        Final upper-bound minus lower-bound gap on the capacity.
    """

    capacity: float
    input_distribution: np.ndarray
    iterations: int
    converged: bool
    gap: float


def blahut_arimoto(
    transition: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    initial_input: Optional[np.ndarray] = None,
) -> BlahutArimotoResult:
    """Compute DMC capacity via the Blahut-Arimoto iteration.

    Parameters
    ----------
    transition:
        Row-stochastic matrix ``P(y|x)`` of shape ``(nx, ny)``.
    tol:
        Stopping threshold on the duality gap
        ``max_x D(W(.|x) || q) - I`` which sandwiches the true capacity.
    max_iter:
        Iteration cap.
    initial_input:
        Optional starting input distribution (defaults to uniform).

    Returns
    -------
    BlahutArimotoResult
        The capacity estimate is guaranteed to be within ``gap`` bits of
        the true capacity when ``converged`` is True.
    """
    w = np.asarray(transition, dtype=float)
    if w.ndim != 2:
        raise ValueError("transition must be a 2-D matrix P(y|x)")
    if np.any(w < 0):
        raise ValueError("transition probabilities must be non-negative")
    if not np.allclose(w.sum(axis=1), 1.0, atol=1e-9):
        raise ValueError("transition matrix rows must each sum to 1")
    nx = w.shape[0]

    if initial_input is None:
        p = np.full(nx, 1.0 / nx)
    else:
        p = np.asarray(initial_input, dtype=float)
        if p.shape != (nx,):
            raise ValueError("initial_input has wrong shape")
        if np.any(p < 0) or not np.isclose(p.sum(), 1.0, atol=1e-9):
            raise ValueError("initial_input must be a distribution")
        # Zero entries can never recover; smooth slightly.
        p = (p + 1e-12) / (p + 1e-12).sum()

    log_w = np.where(w > 0, np.log2(np.maximum(w, _EPS)), 0.0)

    capacity = 0.0
    gap = float("inf")
    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        q = p @ w  # output distribution, shape (ny,)
        # D(W(.|x) || q) for each x, in bits.
        log_q = np.log2(np.maximum(q, _EPS))
        d = np.einsum("xy,xy->x", w, log_w - log_q[None, :])
        capacity = float(p @ d)  # lower bound: I(p, W)
        upper = float(d.max())  # upper bound on C
        gap = upper - capacity
        if gap < tol:
            converged = True
            break
        # Multiplicative update p_{t+1}(x) ∝ p_t(x) 2^{D(W(.|x)||q)}.
        # Subtract the max exponent for numerical stability.
        logits = np.log2(np.maximum(p, _EPS)) + d
        logits -= logits.max()
        p = np.exp2(logits)
        p /= p.sum()

    return BlahutArimotoResult(
        capacity=max(0.0, capacity),
        input_distribution=p,
        iterations=iterations,
        converged=converged,
        gap=gap,
    )


def channel_capacity(transition: np.ndarray, *, tol: float = 1e-10) -> float:
    """Convenience wrapper returning only the capacity in bits/use."""
    return blahut_arimoto(transition, tol=tol).capacity
