"""Blahut-Arimoto algorithm for discrete memoryless channel capacity.

The algorithm alternates between the optimal "backward" conditional
distribution and the capacity-achieving input distribution, converging to
the channel capacity ``C = max_{p(x)} I(X; Y)``. It is the numerical
workhorse used to cross-check every closed-form capacity in this package
(erasure channels, M-ary symmetric converted channels, Z-channels, ...).

The iteration runs under a :class:`repro.numerics.IterationGuard`: a
NaN/Inf, divergence, or stall in an extreme regime (``P_d -> 1``,
near-degenerate transition rows) terminates with an honest
:class:`repro.numerics.SolverStatus` and the best-so-far estimate
instead of spinning or poisoning downstream bounds.
:func:`blahut_arimoto_guarded` adds the degradation ladder (damped
updates, relaxed tolerance) for callers that must always get a finite
answer.

Reference: R. Blahut, "Computation of channel capacity and
rate-distortion functions", IEEE Trans. IT, 1972.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..numerics import (
    IterationGuard,
    SolverDiagnostics,
    SolverStatus,
    degrade_gracefully,
    masked_log2,
    normalized_exp2,
    record_status,
    safe_log2,
    stage,
)
from ..store import cached_solve

__all__ = [
    "BlahutArimotoResult",
    "blahut_arimoto",
    "blahut_arimoto_guarded",
    "channel_capacity",
]


@dataclass(frozen=True)
class BlahutArimotoResult:
    """Outcome of a Blahut-Arimoto run.

    Attributes
    ----------
    capacity:
        Channel capacity estimate in bits per channel use. On a
        non-``converged`` status this is the best-so-far (finite)
        estimate, accurate to within ``gap`` bits.
    input_distribution:
        Capacity-achieving input distribution found by the algorithm.
    iterations:
        Number of iterations performed.
    converged:
        Whether the duality-gap stopping criterion was met
        (equivalent to ``status is SolverStatus.CONVERGED``).
    gap:
        Final upper-bound minus lower-bound gap on the capacity
        (the best observed gap when not converged).
    status:
        Terminal :class:`repro.numerics.SolverStatus` of the solve.
    diagnostics:
        Guard trace (:class:`repro.numerics.SolverDiagnostics`) —
        residual tail, best iteration, degradation retries.
    """

    capacity: float
    input_distribution: np.ndarray
    iterations: int
    converged: bool
    gap: float
    status: SolverStatus = SolverStatus.CONVERGED
    diagnostics: Optional[SolverDiagnostics] = None


@cached_solve("blahut_arimoto")
def blahut_arimoto(
    transition: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    initial_input: Optional[np.ndarray] = None,
    damping: float = 0.0,
) -> BlahutArimotoResult:
    """Compute DMC capacity via the Blahut-Arimoto iteration.

    Memoized through :mod:`repro.store` when a result store is active
    (``REPRO_STORE_DIR`` or :func:`repro.store.use_store`); with no
    store the decorator is a bit-exact pass-through.

    Parameters
    ----------
    transition:
        Row-stochastic matrix ``P(y|x)`` of shape ``(nx, ny)``. Must be
        finite; non-finite entries are rejected explicitly rather than
        left to trip the row-sum check.
    tol:
        Stopping threshold on the duality gap
        ``max_x D(W(.|x) || q) - I`` which sandwiches the true capacity.
    max_iter:
        Iteration cap.
    initial_input:
        Optional starting input distribution (defaults to uniform).
        Zero entries can never recover under the multiplicative update,
        so a start point containing exact zeros is smoothed slightly; a
        strictly positive start point is used exactly as given.
    damping:
        Convex-combination weight kept on the previous iterate
        (``0`` = plain BA update). Used by the degradation ladder to
        settle oscillating iterates; slows nominal convergence, so the
        default is off.

    Returns
    -------
    BlahutArimotoResult
        The capacity estimate is guaranteed to be within ``gap`` bits of
        the true capacity when ``converged`` is True; otherwise
        ``status`` says how the solve ended and the estimate is the
        best (finite) iterate seen.
    """
    w = np.asarray(transition, dtype=float)
    if w.ndim != 2:
        raise ValueError("transition must be a 2-D matrix P(y|x)")
    if not np.all(np.isfinite(w)):
        raise ValueError("transition matrix contains non-finite entries")
    if np.any(w < 0):
        raise ValueError("transition probabilities must be non-negative")
    if not np.allclose(w.sum(axis=1), 1.0, atol=1e-9):
        raise ValueError("transition matrix rows must each sum to 1")
    if not 0.0 <= damping < 1.0:
        raise ValueError("damping must be in [0, 1)")
    nx = w.shape[0]

    if initial_input is None:
        p = np.full(nx, 1.0 / nx)
    else:
        p = np.asarray(initial_input, dtype=float)
        if p.shape != (nx,):
            raise ValueError("initial_input has wrong shape")
        if np.any(p < 0) or not np.isclose(p.sum(), 1.0, atol=1e-9):
            raise ValueError("initial_input must be a distribution")
        if np.any(p == 0):
            # Zero entries can never recover; smooth slightly. A
            # strictly positive start point passes through untouched.
            p = (p + 1e-12) / (p + 1e-12).sum()

    log_w = masked_log2(w)

    guard = IterationGuard(
        "blahut_arimoto", max_iter=max_iter, tol=tol, stall_window=200
    )
    capacity = 0.0
    gap = float("inf")
    status: Optional[SolverStatus] = None
    with stage("solver"):
        while status is None:
            q = p @ w  # output distribution, shape (ny,)
            # D(W(.|x) || q) for each x, in bits.
            log_q = safe_log2(q)
            d = np.einsum("xy,xy->x", w, log_w - log_q[None, :])
            capacity = float(p @ d)  # lower bound: I(p, W)
            upper = float(d.max())  # upper bound on C
            gap = upper - capacity
            status = guard.update(gap, value=(capacity, p))
            if status is not None:
                break
            # Multiplicative update p_{t+1}(x) ∝ p_t(x) 2^{D(W(.|x)||q)},
            # computed as a stabilized base-2 softmax.
            p_next = normalized_exp2(safe_log2(p) + d)
            if damping > 0.0:
                p_next = (1.0 - damping) * p_next + damping * p
            p = p_next

    if status is not SolverStatus.CONVERGED and guard.best_value is not None:
        # Honest fallback: report the best finite iterate, not the last.
        capacity, p = guard.best_value
        gap = guard.best_residual
    if not np.isfinite(capacity):
        capacity, gap = 0.0, float("inf")

    return BlahutArimotoResult(
        capacity=max(0.0, capacity),
        input_distribution=p,
        iterations=guard.iterations,
        converged=status is SolverStatus.CONVERGED,
        gap=gap,
        status=status,
        diagnostics=guard.diagnostics(),
    )


#: Degradation ladder for :func:`blahut_arimoto_guarded`: progressively
#: heavier damping to settle oscillation/stall, then a relaxed
#: tolerance to accept a near-converged gap.
_DEGRADE_LADDER = (
    {"damping": 0.5},
    {"damping": 0.9, "tol_scale": 1e4},
)


def _replay_guarded_status(result: BlahutArimotoResult) -> None:
    """On a cache hit, report the stored terminal status so a warm run
    surfaces the same solver health the cold run observed."""
    record_status("blahut_arimoto", result.status)


@cached_solve("blahut_arimoto_guarded", on_hit=_replay_guarded_status)
def blahut_arimoto_guarded(
    transition: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    initial_input: Optional[np.ndarray] = None,
) -> BlahutArimotoResult:
    """Blahut-Arimoto under the full graceful-degradation policy.

    Runs the plain iteration first; on any non-``converged`` status
    retries with damped updates, then with heavy damping and a relaxed
    tolerance. Always returns a finite estimate: the first converged
    attempt, or the best-so-far attempt with an honest status. The
    terminal status is reported to the experiment runner's status
    collector (:func:`repro.numerics.collect_solver_statuses`).
    """

    def solve(damping: float = 0.0, tol_scale: float = 1.0) -> BlahutArimotoResult:
        return blahut_arimoto(
            transition,
            tol=tol * tol_scale,
            max_iter=max_iter,
            initial_input=initial_input,
            damping=damping,
        )

    return degrade_gracefully(solve, _DEGRADE_LADDER, solver="blahut_arimoto")


def channel_capacity(transition: np.ndarray, *, tol: float = 1e-10) -> float:
    """Convenience wrapper returning only the capacity in bits/use."""
    return blahut_arimoto(transition, tol=tol).capacity
