"""Finite Markov chains: stationary distributions and entropy rates.

Used by the Millen finite-state covert-channel model
(:mod:`repro.timing.fsm`) and by the scheduler simulations, whose
deletion/insertion statistics are driven by Markovian scheduling
policies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .entropy import _xlogx  # type: ignore[attr-defined]

__all__ = [
    "validate_stochastic_matrix",
    "stationary_distribution",
    "entropy_rate",
    "is_irreducible",
    "simulate_chain",
]


def validate_stochastic_matrix(p: np.ndarray) -> np.ndarray:
    """Validate and return a row-stochastic square matrix."""
    arr = np.asarray(p, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError("transition matrix must be square")
    if np.any(arr < 0):
        raise ValueError("transition probabilities must be non-negative")
    if not np.allclose(arr.sum(axis=1), 1.0, atol=1e-9):
        raise ValueError("rows must each sum to 1")
    return arr


def stationary_distribution(p: np.ndarray, *, tol: float = 1e-12) -> np.ndarray:
    """Stationary distribution ``pi P = pi`` via eigen-decomposition.

    For reducible chains this returns one valid stationary distribution
    (the one associated with the dominant left eigenvector); chains used
    in this package are irreducible, which callers can check with
    :func:`is_irreducible`.
    """
    arr = validate_stochastic_matrix(p)
    vals, vecs = np.linalg.eig(arr.T)
    idx = int(np.argmin(np.abs(vals - 1.0)))
    if abs(vals[idx] - 1.0) > 1e-6:
        raise ValueError("matrix has no eigenvalue 1; not stochastic?")
    v = np.real(vecs[:, idx])
    v = np.abs(v)
    total = v.sum()
    if total <= tol:
        raise ValueError("degenerate stationary vector")
    return v / total


def entropy_rate(p: np.ndarray) -> float:
    """Entropy rate ``H(X) = -sum_i pi_i sum_j P_ij log2 P_ij`` in bits."""
    arr = validate_stochastic_matrix(p)
    pi = stationary_distribution(arr)
    per_state = -_xlogx(arr).sum(axis=1)
    return float(pi @ per_state)


def is_irreducible(p: np.ndarray) -> bool:
    """Check irreducibility by reachability on the support digraph."""
    arr = validate_stochastic_matrix(p)
    n = arr.shape[0]
    adj = arr > 0
    reach = np.eye(n, dtype=bool) | adj
    # Repeated squaring of the boolean reachability matrix.
    for _ in range(int(np.ceil(np.log2(max(n, 2))))):
        reach = reach | (reach @ reach)
    return bool(reach.all())


def simulate_chain(
    p: np.ndarray,
    steps: int,
    rng: np.random.Generator,
    *,
    initial_state: Optional[int] = None,
) -> np.ndarray:
    """Sample a trajectory of length *steps* from the chain.

    The initial state is drawn from the stationary distribution unless
    *initial_state* is given.
    """
    arr = validate_stochastic_matrix(p)
    n = arr.shape[0]
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if initial_state is None:
        pi = stationary_distribution(arr)
        state = int(rng.choice(n, p=pi))
    else:
        if not 0 <= initial_state < n:
            raise ValueError("initial_state out of range")
        state = initial_state
    cdf = np.cumsum(arr, axis=1)
    out = np.empty(steps, dtype=np.int64)
    u = rng.random(steps)
    for t in range(steps):
        out[t] = state
        state = int(np.searchsorted(cdf[state], u[t], side="right"))
        state = min(state, n - 1)
    return out
