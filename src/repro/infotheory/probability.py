"""Probability-domain float helpers.

Probabilities in this package are floats that frequently sit *exactly*
on the simplex boundary after closed-form algebra (``1 - p - q``,
interpolations, empirical ratios). Comparing them with ``== 0.0`` /
``== 1.0`` is fragile: a value that is zero in exact arithmetic can
come back as ``1e-17`` from floating point, silently flipping a branch
such as "is the feedback path perfect?". These helpers centralize the
boundary tests behind an explicit absolute tolerance, and the
``repro.analysis`` linter (rule PROB001) enforces their use across the
code base.

All three helpers accept scalars or numpy arrays; the array forms are
elementwise, mirroring :func:`repro.infotheory.entropy.binary_entropy`.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

__all__ = ["PROB_ATOL", "is_zero", "is_one", "validate_probability"]

ArrayLike = Union[float, Iterable[float], np.ndarray]

#: Absolute tolerance for boundary tests on probabilities. Probabilities
#: are O(1) quantities, so a fixed absolute tolerance (rather than a
#: relative one) is the right notion of "equal to 0 or 1 up to rounding".
PROB_ATOL = 1e-12


def is_zero(p: ArrayLike, *, atol: float = PROB_ATOL) -> Union[bool, np.ndarray]:
    """True where *p* equals 0 up to *atol*.

    Scalars return a ``bool``; arrays return an elementwise boolean
    array, so the result composes with numpy masks.
    """
    arr = np.asarray(p, dtype=float)
    out = np.abs(arr) <= atol
    if np.isscalar(p) or arr.ndim == 0:
        return bool(out)
    return out


def is_one(p: ArrayLike, *, atol: float = PROB_ATOL) -> Union[bool, np.ndarray]:
    """True where *p* equals 1 up to *atol* (elementwise for arrays)."""
    arr = np.asarray(p, dtype=float)
    out = np.abs(arr - 1.0) <= atol
    if np.isscalar(p) or arr.ndim == 0:
        return bool(out)
    return out


def validate_probability(
    value: float, name: str = "probability", *, atol: float = PROB_ATOL
) -> float:
    """Check that *value* is a probability and return it clipped to [0, 1].

    Values within *atol* outside the interval (floating-point spill from
    closed-form algebra) are accepted and clipped; anything further out,
    and NaN, raises ``ValueError`` naming the offending field.
    """
    v = float(value)
    if not np.isfinite(v) or v < -atol or v > 1.0 + atol:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return min(1.0, max(0.0, v))
