"""Noiseless channels with non-uniform symbol durations.

Shannon (1948) showed that a noiseless channel whose symbols take
different times ``t_1, ..., t_k`` has capacity ``C = log2(X0)`` where
``X0`` is the largest real root of the characteristic equation

    sum_i X^{-t_i} = 1.

Millen (1989) applied exactly this machinery to covert channels modeled
as finite-state machines: the channel capacity is ``log2`` of the
spectral radius of the duration-weighted adjacency operator. These are
the "traditional" capacity estimators the paper's two-step recipe
(:mod:`repro.core.estimation`) starts from.

This module solves the scalar characteristic equation; the full
finite-state version lives in :mod:`repro.timing.fsm`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..numerics import expand_bracket, guarded_brentq

__all__ = [
    "characteristic_root",
    "noiseless_capacity_per_second",
    "uniform_duration_capacity",
]


def characteristic_root(durations: Sequence[float], *, tol: float = 1e-12) -> float:
    """Largest real root ``X0 > 1`` of ``sum_i X^{-t_i} = 1``.

    Parameters
    ----------
    durations:
        Positive symbol durations ``t_i`` (any time unit). At least two
        symbols are required for positive capacity; a single symbol gives
        ``X0 = 1`` (zero information).

    Raises
    ------
    repro.numerics.BracketingError
        When the root cannot be bracketed before the expansion cap
        (vanishingly small durations push ``X0`` beyond 1e12); the
        error carries the expansion trail for diagnosis.
    """
    t = np.asarray(durations, dtype=float)
    if t.ndim != 1 or t.size == 0:
        raise ValueError("durations must be a non-empty 1-D sequence")
    if np.any(t <= 0):
        raise ValueError("symbol durations must be positive")
    if t.size == 1:
        return 1.0

    def f(x: float) -> float:
        return float(np.sum(x ** (-t)) - 1.0)

    # f is strictly decreasing for x > 0; f(1) = k - 1 >= 1 > 0.
    lo, hi = expand_bracket(
        f, 1.0, 2.0, hi_cap=1e12, solver="characteristic_root"
    )
    return guarded_brentq(f, lo, hi, xtol=tol, solver="characteristic_root")


def noiseless_capacity_per_second(durations: Sequence[float]) -> float:
    """Capacity ``log2(X0)`` in bits per time unit (Shannon 1948)."""
    return float(np.log2(characteristic_root(durations)))


def uniform_duration_capacity(num_symbols: int, duration: float = 1.0) -> float:
    """Capacity when all *num_symbols* symbols take the same *duration*.

    Equals ``log2(num_symbols) / duration`` — the familiar "bits per
    symbol over seconds per symbol" formula, and a useful sanity check
    for :func:`noiseless_capacity_per_second`.
    """
    if num_symbols < 1:
        raise ValueError("need at least one symbol")
    if duration <= 0:
        raise ValueError("duration must be positive")
    return float(np.log2(num_symbols)) / duration
