"""Information-theory substrate.

Entropy/mutual-information primitives, a generic discrete memoryless
channel class with a Blahut-Arimoto capacity solver (plus the batched
stack-of-channels kernels in :mod:`.kernels`), factories for the
standard channels used by the paper (erasure, Z, M-ary symmetric,
converted channel), Markov-chain utilities, and Shannon's noiseless
channel with non-uniform symbol durations.
"""

from .blahut_arimoto import (
    BlahutArimotoResult,
    blahut_arimoto,
    blahut_arimoto_guarded,
    channel_capacity,
)
from .channels import (
    bec_capacity,
    binary_erasure_channel,
    binary_symmetric_channel,
    bsc_capacity,
    converted_channel,
    converted_channel_capacity,
    m_ary_erasure_capacity,
    m_ary_erasure_channel,
    m_ary_symmetric_capacity,
    m_ary_symmetric_channel,
    z_channel,
    z_channel_capacity,
)
from .dmc import DiscreteMemorylessChannel
from .kernels import (
    BatchedBAResult,
    PenalizedBABatchResult,
    blahut_arimoto_batch,
    penalized_blahut_arimoto_batch,
    validate_transition_stack,
)
from .entropy import (
    binary_entropy,
    binary_entropy_derivative,
    conditional_entropy,
    cross_entropy,
    entropy,
    inverse_binary_entropy,
    joint_entropy,
    kl_divergence,
    mutual_information,
    mutual_information_from_joint,
    normalize_distribution,
    validate_distribution,
)
from .markov import (
    entropy_rate,
    is_irreducible,
    simulate_chain,
    stationary_distribution,
    validate_stochastic_matrix,
)
from .noiseless import (
    characteristic_root,
    noiseless_capacity_per_second,
    uniform_duration_capacity,
)
from .probability import PROB_ATOL, is_one, is_zero, validate_probability

__all__ = [
    "BlahutArimotoResult",
    "blahut_arimoto",
    "blahut_arimoto_guarded",
    "channel_capacity",
    "DiscreteMemorylessChannel",
    "BatchedBAResult",
    "PenalizedBABatchResult",
    "blahut_arimoto_batch",
    "penalized_blahut_arimoto_batch",
    "validate_transition_stack",
    "binary_entropy",
    "binary_entropy_derivative",
    "conditional_entropy",
    "cross_entropy",
    "entropy",
    "inverse_binary_entropy",
    "joint_entropy",
    "kl_divergence",
    "mutual_information",
    "mutual_information_from_joint",
    "normalize_distribution",
    "validate_distribution",
    "bec_capacity",
    "binary_erasure_channel",
    "binary_symmetric_channel",
    "bsc_capacity",
    "converted_channel",
    "converted_channel_capacity",
    "m_ary_erasure_capacity",
    "m_ary_erasure_channel",
    "m_ary_symmetric_capacity",
    "m_ary_symmetric_channel",
    "z_channel",
    "z_channel_capacity",
    "entropy_rate",
    "is_irreducible",
    "simulate_chain",
    "stationary_distribution",
    "validate_stochastic_matrix",
    "characteristic_root",
    "noiseless_capacity_per_second",
    "uniform_duration_capacity",
    "PROB_ATOL",
    "is_zero",
    "is_one",
    "validate_probability",
]
