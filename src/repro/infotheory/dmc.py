"""Discrete memoryless channel (DMC) abstraction.

A :class:`DiscreteMemorylessChannel` wraps a row-stochastic transition
matrix ``P(y|x)`` and provides capacity computation (closed-form where
known, Blahut-Arimoto otherwise), mutual information under a given input
distribution, sampling, and composition (cascade / product channels).

The converted channel of Wang & Lee's Appendix A (Figure 5) is an
instance of this class; see
:func:`repro.infotheory.channels.m_ary_symmetric_channel`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .blahut_arimoto import BlahutArimotoResult, blahut_arimoto
from .entropy import mutual_information, validate_distribution

__all__ = ["DiscreteMemorylessChannel"]


class DiscreteMemorylessChannel:
    """A discrete memoryless channel defined by ``P(y|x)``.

    Parameters
    ----------
    transition:
        Row-stochastic matrix of shape ``(nx, ny)``.
    input_labels, output_labels:
        Optional human-readable labels for the alphabets; purely
        cosmetic, used in ``repr`` and experiment reports.
    """

    def __init__(
        self,
        transition: np.ndarray,
        *,
        input_labels: Optional[Sequence[str]] = None,
        output_labels: Optional[Sequence[str]] = None,
    ) -> None:
        w = np.asarray(transition, dtype=float)
        if w.ndim != 2:
            raise ValueError("transition must be a 2-D matrix P(y|x)")
        if np.any(w < 0):
            raise ValueError("transition probabilities must be non-negative")
        if not np.allclose(w.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("transition matrix rows must each sum to 1")
        self._w = w
        if input_labels is not None and len(input_labels) != w.shape[0]:
            raise ValueError("input_labels length mismatch")
        if output_labels is not None and len(output_labels) != w.shape[1]:
            raise ValueError("output_labels length mismatch")
        self.input_labels = list(input_labels) if input_labels else None
        self.output_labels = list(output_labels) if output_labels else None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def transition_matrix(self) -> np.ndarray:
        """A copy of the ``(nx, ny)`` transition matrix."""
        return self._w.copy()

    @property
    def num_inputs(self) -> int:
        return self._w.shape[0]

    @property
    def num_outputs(self) -> int:
        return self._w.shape[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(nx={self.num_inputs}, "
            f"ny={self.num_outputs})"
        )

    # ------------------------------------------------------------------
    # Information quantities
    # ------------------------------------------------------------------
    def mutual_information(self, input_dist: np.ndarray) -> float:
        """``I(X; Y)`` in bits under input distribution *input_dist*."""
        return mutual_information(input_dist, self._w)

    def capacity(self, *, tol: float = 1e-10) -> float:
        """Channel capacity in bits per use, via Blahut-Arimoto."""
        return self.capacity_result(tol=tol).capacity

    def capacity_result(self, *, tol: float = 1e-10) -> BlahutArimotoResult:
        """Full Blahut-Arimoto result (capacity + optimal input)."""
        return blahut_arimoto(self._w, tol=tol)

    def output_distribution(self, input_dist: np.ndarray) -> np.ndarray:
        """Marginal ``P(y)`` induced by *input_dist*."""
        px = validate_distribution(input_dist)
        if px.shape[0] != self.num_inputs:
            raise ValueError("input distribution has wrong length")
        return px @ self._w

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    def is_symmetric(self, *, atol: float = 1e-9) -> bool:
        """True if every row is a permutation of every other row and every
        column is a permutation of every other column (Gallager-symmetric
        channels achieve capacity with a uniform input)."""
        rows = np.sort(self._w, axis=1)
        cols = np.sort(self._w, axis=0)
        return bool(
            np.allclose(rows, rows[0], atol=atol)
            and np.allclose(cols, cols[:, [0]], atol=atol)
        )

    def is_weakly_symmetric(self, *, atol: float = 1e-9) -> bool:
        """True if rows are permutations of each other and columns all
        have equal sums (Cover & Thomas weak symmetry)."""
        rows = np.sort(self._w, axis=1)
        col_sums = self._w.sum(axis=0)
        return bool(
            np.allclose(rows, rows[0], atol=atol)
            and np.allclose(col_sums, col_sums[0], atol=atol)
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def transmit(
        self, inputs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Pass an array of input symbol indices through the channel.

        Vectorized inverse-CDF sampling: one uniform draw per symbol.
        """
        x = np.asarray(inputs)
        if x.ndim != 1:
            raise ValueError("inputs must be a 1-D array of symbol indices")
        if x.size and (x.min() < 0 or x.max() >= self.num_inputs):
            raise ValueError("input symbol index out of range")
        cdf = np.cumsum(self._w, axis=1)
        u = rng.random(x.shape[0])
        # searchsorted per row of the CDF selected by x.
        rows = cdf[x]
        y = (u[:, None] > rows).sum(axis=1)
        return np.minimum(y, self.num_outputs - 1).astype(np.int64)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def cascade(self, other: "DiscreteMemorylessChannel") -> "DiscreteMemorylessChannel":
        """Serial composition: output of *self* feeds *other*."""
        if self.num_outputs != other.num_inputs:
            raise ValueError(
                "cascade requires self.num_outputs == other.num_inputs"
            )
        return DiscreteMemorylessChannel(self._w @ other._w)

    def product(self, other: "DiscreteMemorylessChannel") -> "DiscreteMemorylessChannel":
        """Parallel (product) channel used independently side by side."""
        w = np.kron(self._w, other._w)
        return DiscreteMemorylessChannel(w)
