"""Standard discrete memoryless channels.

Factories for the channels used throughout the paper and its reference
chain: the binary symmetric channel, the (M-ary) erasure channel, the
Z-channel of Moskowitz et al., and the **M-ary symmetric channel** that
Wang & Lee's counter protocol converts a deletion-insertion channel into
(Appendix A, Figure 5).

Each factory returns a :class:`~repro.infotheory.dmc.DiscreteMemorylessChannel`
plus, where known, a closed-form capacity helper so the Blahut-Arimoto
solver can be validated against theory.
"""

from __future__ import annotations

import math

import numpy as np

from .dmc import DiscreteMemorylessChannel
from .entropy import binary_entropy
from .probability import is_zero

__all__ = [
    "binary_symmetric_channel",
    "bsc_capacity",
    "binary_erasure_channel",
    "bec_capacity",
    "m_ary_erasure_channel",
    "m_ary_erasure_capacity",
    "z_channel",
    "z_channel_capacity",
    "m_ary_symmetric_channel",
    "m_ary_symmetric_capacity",
    "converted_channel",
    "converted_channel_capacity",
]


def binary_symmetric_channel(p: float) -> DiscreteMemorylessChannel:
    """BSC with crossover probability *p*."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("crossover probability must be in [0, 1]")
    w = np.array([[1 - p, p], [p, 1 - p]])
    return DiscreteMemorylessChannel(w, input_labels=["0", "1"], output_labels=["0", "1"])


def bsc_capacity(p: float) -> float:
    """Closed-form BSC capacity ``1 - H(p)`` bits/use."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("crossover probability must be in [0, 1]")
    return 1.0 - float(binary_entropy(p))


def binary_erasure_channel(epsilon: float) -> DiscreteMemorylessChannel:
    """BEC with erasure probability *epsilon*; output alphabet {0, 1, e}."""
    return m_ary_erasure_channel(2, epsilon)


def bec_capacity(epsilon: float) -> float:
    """Closed-form BEC capacity ``1 - epsilon`` bits/use."""
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError("erasure probability must be in [0, 1]")
    return 1.0 - epsilon


def m_ary_erasure_channel(m: int, epsilon: float) -> DiscreteMemorylessChannel:
    """M-ary erasure channel: symbol survives w.p. ``1-epsilon`` else ``e``.

    This is the channel of Wang & Lee's Theorem 1: identical to a
    deletion channel except the receiver *knows where* symbols were
    dropped. Its capacity ``log2(M) (1 - epsilon)`` is the paper's
    upper bound ``N (1 - P_d)`` with ``M = 2^N``.
    """
    if m < 2:
        raise ValueError("alphabet size must be at least 2")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError("erasure probability must be in [0, 1]")
    w = np.zeros((m, m + 1))
    for x in range(m):
        w[x, x] = 1.0 - epsilon
        w[x, m] = epsilon
    labels = [str(i) for i in range(m)]
    return DiscreteMemorylessChannel(
        w, input_labels=labels, output_labels=labels + ["e"]
    )


def m_ary_erasure_capacity(m: int, epsilon: float) -> float:
    """Closed-form M-ary erasure capacity ``log2(M)(1 - epsilon)``."""
    if m < 2:
        raise ValueError("alphabet size must be at least 2")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError("erasure probability must be in [0, 1]")
    return math.log2(m) * (1.0 - epsilon)


def z_channel(p: float) -> DiscreteMemorylessChannel:
    """Z-channel: 0 is noiseless, 1 flips to 0 with probability *p*.

    The (untimed) version of the channel analyzed by Moskowitz,
    Greenwald & Kang (1996), one of the "traditional" covert-channel
    models the paper contrasts with.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("flip probability must be in [0, 1]")
    w = np.array([[1.0, 0.0], [p, 1.0 - p]])
    return DiscreteMemorylessChannel(w, input_labels=["0", "1"], output_labels=["0", "1"])


def z_channel_capacity(p: float) -> float:
    """Closed-form Z-channel capacity.

    ``C = log2(1 + (1-p) p^{p/(1-p)})`` for p in [0, 1).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("flip probability must be in [0, 1]")
    if p >= 1.0:
        return 0.0
    if is_zero(p):
        return 1.0
    return float(np.log2(1.0 + (1.0 - p) * p ** (p / (1.0 - p))))


def m_ary_symmetric_channel(m: int, error_prob: float) -> DiscreteMemorylessChannel:
    """M-ary symmetric channel with total error probability *error_prob*.

    ``P(y|x) = 1 - e`` for ``y = x`` and ``e / (M-1)`` for each of the
    ``M-1`` wrong symbols.
    """
    if m < 2:
        raise ValueError("alphabet size must be at least 2")
    if not 0.0 <= error_prob <= 1.0:
        raise ValueError("error probability must be in [0, 1]")
    w = np.full((m, m), error_prob / (m - 1))
    np.fill_diagonal(w, 1.0 - error_prob)
    return DiscreteMemorylessChannel(w)


def m_ary_symmetric_capacity(m: int, error_prob: float) -> float:
    """Closed-form M-ary symmetric capacity.

    ``C = log2(M) - H(e) - e log2(M - 1)`` bits/use — the form of
    Wang & Lee's eq. (3) with ``e = alpha * P_i``.
    """
    if m < 2:
        raise ValueError("alphabet size must be at least 2")
    if not 0.0 <= error_prob <= 1.0:
        raise ValueError("error probability must be in [0, 1]")
    e = error_prob
    log_m1 = math.log2(m - 1) if m > 2 else 0.0
    return float(math.log2(m) - binary_entropy(e) - e * log_m1)


def converted_channel(bits_per_symbol: int, insertion_prob: float) -> DiscreteMemorylessChannel:
    """The converted channel of Wang & Lee Appendix A (Figure 5).

    After the counter protocol removes deletions (by resending) and
    re-aligns insertions (by skipping), each received position carries
    either the genuine message symbol or a uniformly random inserted
    symbol. With insertion probability ``p_i`` per received position the
    result is an M-ary symmetric DMC, M = 2^N, with

        P(y|x) = 1 - p_i (2^N - 1)/2^N   if y = x
        P(y|x) = p_i / 2^N               if y != x

    i.e. total error probability ``alpha * p_i`` with
    ``alpha = (2^N - 1)/2^N`` (eq. 4 of the paper).
    """
    n = bits_per_symbol
    if n < 1:
        raise ValueError("bits_per_symbol must be >= 1")
    if not 0.0 <= insertion_prob <= 1.0:
        raise ValueError("insertion probability must be in [0, 1]")
    m = 2**n
    alpha = (m - 1) / m
    return m_ary_symmetric_channel(m, alpha * insertion_prob)


def converted_channel_capacity(bits_per_symbol: int, insertion_prob: float) -> float:
    """Closed-form ``C_conv`` of Wang & Lee eq. (3).

    ``C_conv = N - alpha P_i log2(2^N - 1) - H(alpha P_i)`` with
    ``alpha = (2^N - 1)/2^N``.
    """
    n = bits_per_symbol
    if n < 1:
        raise ValueError("bits_per_symbol must be >= 1")
    if not 0.0 <= insertion_prob <= 1.0:
        raise ValueError("insertion probability must be in [0, 1]")
    m = 2**n
    alpha = (m - 1) / m
    return m_ary_symmetric_capacity(m, alpha * insertion_prob)
