"""Named fault scenarios.

A scenario is a reproducible recipe for a :class:`~repro.faults.
injector.FaultInjector`: given the *nominal* channel parameters and a
seed it builds the injector, so any protocol can be stress-tested under
``bursty_loss`` or ``stress`` with one call. Experiment E15 sweeps this
registry; the CLI lists it via ``repro-covert faults list``.

The registry is extensible: :func:`register_scenario` adds new recipes
(e.g. traces fitted to a real scheduler) without touching the sweep
code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.events import ChannelParameters
from .injector import FaultInjector
from .models import (
    DriftingParameterModel,
    FeedbackFaultModel,
    GilbertElliottModel,
    IIDEventModel,
)

__all__ = [
    "FaultScenario",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "build_injector",
]


@dataclass(frozen=True)
class FaultScenario:
    """A named, parameter-relative fault recipe.

    Attributes
    ----------
    name:
        Registry key (also the CLI spelling).
    description:
        One line for tables and ``faults list``.
    builder:
        ``builder(params, seed) -> FaultInjector`` — receives the
        nominal :class:`ChannelParameters` so scenarios scale with the
        channel under test.
    """

    name: str
    description: str
    builder: Callable[[ChannelParameters, int], FaultInjector]

    def build(self, params: ChannelParameters, *, seed: int = 0) -> FaultInjector:
        """Instantiate the injector for *params* with *seed*."""
        return self.builder(params, seed)


def _degraded(params: ChannelParameters, extra_d: float, extra_i: float) -> ChannelParameters:
    """Nominal parameters pushed toward a congested regime.

    Deletion/insertion rates rise by the given amounts, clipped so the
    three event probabilities stay a valid distribution.
    """
    d = min(0.9, params.deletion + extra_d)
    i = min(max(0.0, 0.95 - d), params.insertion + extra_i)
    return ChannelParameters.from_rates(deletion=d, insertion=i)


def _baseline(params: ChannelParameters, seed: int) -> FaultInjector:
    return FaultInjector(IIDEventModel(params), FeedbackFaultModel(), seed=seed)


def _bursty_loss(params: ChannelParameters, seed: int) -> FaultInjector:
    model = GilbertElliottModel(
        good=params,
        bad=_degraded(params, 0.35, 0.10),
        p_gb=0.01,
        p_bg=0.05,
    )
    feedback = FeedbackFaultModel(ack_loss_prob=0.05, desync_prob=0.002)
    return FaultInjector(model, feedback, seed=seed)


def _slow_drift(params: ChannelParameters, seed: int) -> FaultInjector:
    model = DriftingParameterModel(
        start=params, end=_degraded(params, 0.20, 0.05), ramp_uses=20_000
    )
    return FaultInjector(model, FeedbackFaultModel(), seed=seed)


def _lossy_ack(params: ChannelParameters, seed: int) -> FaultInjector:
    return FaultInjector(
        IIDEventModel(params),
        FeedbackFaultModel(ack_loss_prob=0.2),
        seed=seed,
    )


def _delayed_ack(params: ChannelParameters, seed: int) -> FaultInjector:
    return FaultInjector(
        IIDEventModel(params),
        FeedbackFaultModel(ack_delay_prob=0.2),
        seed=seed,
    )


def _ack_corruption(params: ChannelParameters, seed: int) -> FaultInjector:
    return FaultInjector(
        IIDEventModel(params),
        FeedbackFaultModel(ack_corrupt_prob=0.15),
        seed=seed,
    )


def _counter_desync(params: ChannelParameters, seed: int) -> FaultInjector:
    return FaultInjector(
        IIDEventModel(params),
        FeedbackFaultModel(desync_prob=0.005),
        seed=seed,
    )


def _stress(params: ChannelParameters, seed: int) -> FaultInjector:
    model = GilbertElliottModel(
        good=params,
        bad=_degraded(params, 0.45, 0.15),
        p_gb=0.02,
        p_bg=0.04,
    )
    feedback = FeedbackFaultModel(
        ack_loss_prob=0.15,
        ack_delay_prob=0.10,
        ack_corrupt_prob=0.05,
        desync_prob=0.01,
    )
    return FaultInjector(model, feedback, seed=seed)


SCENARIOS: Dict[str, FaultScenario] = {}


def register_scenario(scenario: FaultScenario) -> FaultScenario:
    """Add *scenario* to the registry (name must be unused)."""
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


for _name, _desc, _builder in (
    ("baseline", "nominal i.i.d. events, perfect feedback", _baseline),
    (
        "bursty_loss",
        "Gilbert-Elliott bursts of heavy loss + mild ack loss + rare "
        "counter desync",
        _bursty_loss,
    ),
    (
        "slow_drift",
        "P_d/P_i ramp up over the run (load drift)",
        _slow_drift,
    ),
    ("lossy_ack", "20% of acknowledgments lost", _lossy_ack),
    ("delayed_ack", "20% of acknowledgments arrive late", _delayed_ack),
    ("ack_corruption", "15% of acknowledgments unreadable", _ack_corruption),
    (
        "counter_desync",
        "receiver counter drifts ±1 w.p. 0.5% per use",
        _counter_desync,
    ),
    (
        "stress",
        "long bad bursts + every feedback fault at once",
        _stress,
    ),
):
    register_scenario(FaultScenario(_name, _desc, _builder))


def get_scenario(name: str) -> FaultScenario:
    """Look up a scenario by name."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown fault scenario {name!r}; known: {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name]


def list_scenarios() -> List[FaultScenario]:
    """All registered scenarios, sorted by name."""
    return [SCENARIOS[k] for k in sorted(SCENARIOS)]


def build_injector(
    name: str, params: ChannelParameters, *, seed: int = 0
) -> FaultInjector:
    """Shorthand: ``get_scenario(name).build(params, seed=seed)``."""
    return get_scenario(name).build(params, seed=seed)
