"""Fault injection for protocols and channel simulators.

A :class:`FaultInjector` bundles an event-stream fault model (bursty,
drifting, or i.i.d.) with a :class:`~repro.faults.models.
FeedbackFaultModel` and *installs* itself for the duration of a run:

* the forward path is intercepted through
  :func:`repro.core.events.set_event_sampler_hook`, so every protocol
  and channel simulator that draws events via
  :func:`repro.core.events.sample_events` runs **unmodified** under the
  fault model;
* the feedback path is consulted explicitly by the hardened protocols
  in :mod:`repro.sync.feedback` via :func:`active_injector`.

All fault randomness comes from the injector's own seeded
:class:`~repro.simulation.rng.RngFactory` substreams ("feedback",
"abandon"), never from the protocol's generator — so enabling feedback
faults does not perturb the channel event stream, and a fault scenario
is reproducible bit-for-bit from ``(scenario, seed)``.

:func:`run_under_faults` is the one-call harness: it executes any
:class:`~repro.sync.protocols.SynchronizationProtocol` under a fault
injector and reports the achieved rate next to the Theorem-1 erasure
bound ``N (1 - P̂_d)`` computed from the *empirical* event frequencies
of the faulted run.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

import numpy as np

from ..core.capacity import erasure_upper_bound
from ..core.events import (
    ChannelParameters,
    active_fault_injector,
    set_active_fault_injector,
    set_event_sampler_hook,
)
from ..simulation.rng import RngFactory
from ..sync.harness import (
    ProtocolMeasurement,
    measure_protocol,
    substitution_error_capacity,
)
from ..sync.protocols import SynchronizationProtocol
from .models import AckOutcome, EventStreamModel, FeedbackFaultModel

__all__ = [
    "FaultLog",
    "FaultInjector",
    "FaultedMeasurement",
    "active_injector",
    "run_under_faults",
]

def active_injector() -> Optional["FaultInjector"]:
    """The :class:`FaultInjector` currently installed, if any.

    Hardened protocols call this at the top of ``run`` to learn whether
    feedback-path faults apply; ``None`` means the perfect-feedback
    semantics of the paper. The registry itself lives in
    :mod:`repro.core.events` so the sync layer can consult it without
    importing this package.
    """
    return active_fault_injector()


@dataclass
class FaultLog:
    """Mutable per-run accounting of injected faults."""

    counts: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str, n: int = 1) -> None:
        """Add *n* occurrences of fault *name*."""
        self.counts[name] = self.counts.get(name, 0) + n

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """An immutable copy of the current counters."""
        return dict(self.counts)

    def clear(self) -> None:
        self.counts.clear()


class FaultInjector:
    """Injects forward-path and feedback-path faults into protocol runs.

    Parameters
    ----------
    event_model:
        Replacement event process for the forward channel. ``None``
        leaves the forward path on the protocol's own i.i.d. model.
    feedback:
        Feedback-path fault rates (defaults to a perfect path).
    seed:
        Root seed for the injector's private fault streams.
    """

    def __init__(
        self,
        event_model: Optional[EventStreamModel] = None,
        feedback: Optional[FeedbackFaultModel] = None,
        *,
        seed: int = 0,
    ) -> None:
        self.event_model = event_model
        self.feedback = feedback if feedback is not None else FeedbackFaultModel()
        self.seed = int(seed)
        self._factory = RngFactory(self.seed)
        self.log = FaultLog()

    # ------------------------------------------------------------------
    # lifecycle

    def reset(self) -> None:
        """Restart fault streams and counters for an independent run."""
        if self.event_model is not None:
            self.event_model.reset()
        self._factory = RngFactory(self.seed)
        self.log.clear()

    @contextmanager
    def active(self) -> Iterator["FaultInjector"]:
        """Install this injector for the duration of a ``with`` block.

        Installs the forward-path event hook and registers the injector
        for :func:`active_injector`. Nesting restores the previous
        injector on exit.
        """
        previous_hook = set_event_sampler_hook(
            self._sample_events_hook if self.event_model is not None else None
        )
        previous_active = set_active_fault_injector(self)
        try:
            yield self
        finally:
            set_active_fault_injector(previous_active)
            set_event_sampler_hook(previous_hook)

    # ------------------------------------------------------------------
    # forward path

    def _sample_events_hook(
        self, params: ChannelParameters, num_uses: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Hook body for :func:`repro.core.events.sample_events`."""
        events = self.event_model.sample(num_uses, rng)
        self.log.record("faulted_uses", num_uses)
        return events

    # ------------------------------------------------------------------
    # feedback path (consulted by hardened protocols)

    @property
    def _feedback_rng(self) -> np.random.Generator:
        return self._factory.stream("feedback")

    def ack_outcome(self) -> AckOutcome:
        """Sample and record the fate of one acknowledgment."""
        outcome = self.feedback.ack_outcome(self._feedback_rng)
        if outcome == AckOutcome.LOST:
            self.log.record("acks_lost")
        elif outcome == AckOutcome.DELAYED:
            self.log.record("acks_delayed")
        elif outcome == AckOutcome.CORRUPTED:
            self.log.record("acks_corrupted")
        return outcome

    def desync(self) -> int:
        """Sample a counter-desync fault for one channel use.

        Returns the signed counter drift (0 for no fault, else ±1) and
        records it.
        """
        if not self.feedback.desync_occurs(self._feedback_rng):
            return 0
        self.log.record("desyncs_injected")
        return 1 if self._feedback_rng.random() < 0.5 else -1

    def abandon_guess(self, alphabet_size: int) -> int:
        """A receiver-side stand-in symbol for an abandoned position."""
        return int(self._factory.stream("abandon").integers(0, alphabet_size))


@dataclass(frozen=True)
class FaultedMeasurement:
    """A protocol measurement taken under fault injection.

    Attributes
    ----------
    measurement:
        The ordinary :class:`~repro.sync.harness.ProtocolMeasurement`
        (its theoretical columns refer to the *nominal* parameters).
    empirical_params:
        Event frequencies actually observed during the faulted run.
    empirical_erasure_bound:
        Theorem 1 evaluated at the empirical frequencies:
        ``N (1 - P̂_d)`` bits per channel use — the bound fault-tolerant
        protocols are measured against.
    information_rate_per_use:
        Converted-channel information at the measured substitution rate,
        scaled to bits per channel use (comparable to the bound).
    fault_counts:
        Snapshot of the injector's :class:`FaultLog` after the run.
    """

    measurement: ProtocolMeasurement
    empirical_params: ChannelParameters
    empirical_erasure_bound: float
    information_rate_per_use: float
    fault_counts: Dict[str, int]

    @property
    def run(self):
        return self.measurement.run

    @property
    def completed(self) -> bool:
        """Whether every message position reached the receiver."""
        return self.run.symbols_delivered == int(self.run.message.shape[0])

    @property
    def within_bound(self) -> bool:
        """Achieved information rate does not exceed ``N (1 - P̂_d)``."""
        return self.information_rate_per_use <= self.empirical_erasure_bound + 1e-9


def _empirical_event_parameters(run) -> ChannelParameters:
    """Event frequencies of a run record (excluding resync overhead)."""
    total = run.deletions + run.insertions + run.transmissions
    if total == 0:
        return ChannelParameters(0.0, 0.0, 1.0)
    return ChannelParameters(
        deletion=run.deletions / total,
        insertion=run.insertions / total,
        transmission=run.transmissions / total,
    )


def run_under_faults(
    protocol: SynchronizationProtocol,
    message: np.ndarray,
    rng: np.random.Generator,
    injector: FaultInjector,
    *,
    max_uses: Optional[int] = None,
) -> FaultedMeasurement:
    """Execute *protocol* under *injector* and measure against the
    empirical Theorem-1 bound.

    The injector is reset first, so repeated calls with identical seeds
    are bit-for-bit reproducible.
    """
    injector.reset()
    with injector.active():
        measurement = measure_protocol(protocol, message, rng, max_uses=max_uses)
    run = measurement.run
    empirical = _empirical_event_parameters(run)
    bound = erasure_upper_bound(protocol.bits_per_symbol, empirical.deletion)
    info_per_symbol = substitution_error_capacity(
        protocol.bits_per_symbol, run.symbol_error_rate
    )
    info_per_use = (
        info_per_symbol * run.symbols_delivered / run.channel_uses
        if run.channel_uses
        else 0.0
    )
    return FaultedMeasurement(
        measurement=measurement,
        empirical_params=empirical,
        empirical_erasure_bound=bound,
        information_rate_per_use=info_per_use,
        fault_counts=injector.log.snapshot(),
    )
