"""Service-level fault scenarios: crashy workers, slow solvers, chaos.

Where :mod:`repro.faults.injector` perturbs the *channel* a protocol
runs over, this module perturbs the *infrastructure* a capacity-query
service runs on. A :class:`ServiceFaultPlan` describes, per worker
batch, the probability of a hard worker crash (``SIGKILL``), an
artificially slow solve, and a transient (retryable) error — plus the
rate of malformed queries the trace generator mixes into a synthetic
load. All fault randomness is drawn from the RNG substream the caller
passes in, so a chaos run is reproducible bit-for-bit from
``(scenario, seed)``.

Consumers: :func:`repro.service.workers.solve_query_batch` (applies
:func:`apply_worker_faults` before solving) and
:mod:`repro.service.loadtest` (drives the ≥10k-query fault-injected
acceptance run).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .process import in_worker_process, kill_current_worker

__all__ = [
    "TransientWorkerError",
    "ServiceFaultPlan",
    "SERVICE_SCENARIOS",
    "get_service_scenario",
    "list_service_scenarios",
    "apply_worker_faults",
]


class TransientWorkerError(RuntimeError):
    """A worker failed in a way that is expected to heal on retry."""


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Per-batch fault probabilities for the service worker tier.

    Parameters
    ----------
    worker_crash_prob:
        Probability that the worker handling a batch SIGKILLs itself
        before solving (modelling OOM kills / hard crashes). Applied
        only inside real worker processes.
    slow_prob:
        Probability of sleeping ``slow_seconds`` before solving
        (modelling a pathological solver input or an overloaded host).
    slow_seconds:
        Duration of the injected slowdown.
    transient_error_prob:
        Probability of raising :class:`TransientWorkerError` instead of
        solving — the retryable failure class the service's
        ``RetryPolicy`` exists for.
    malformed_rate:
        Fraction of queries in a synthetic trace that are malformed
        (consumed by the trace generator, not by workers: malformed
        queries must be rejected at admission, before any worker sees
        them).
    """

    worker_crash_prob: float = 0.0
    slow_prob: float = 0.0
    slow_seconds: float = 0.02
    transient_error_prob: float = 0.0
    malformed_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_prob("worker_crash_prob", self.worker_crash_prob)
        _check_prob("slow_prob", self.slow_prob)
        _check_prob("transient_error_prob", self.transient_error_prob)
        _check_prob("malformed_rate", self.malformed_rate)
        if self.slow_seconds < 0:
            raise ValueError("slow_seconds must be non-negative")

    @property
    def injects_faults(self) -> bool:
        """Whether this plan can perturb worker execution at all."""
        return (
            self.worker_crash_prob > 0
            or self.slow_prob > 0
            or self.transient_error_prob > 0
        )


#: Named scenarios for the CLI (``repro service replay --scenario``) and
#: the load-test harness. "chaos" is the acceptance-test mix: crashes,
#: slowdowns, transient errors, and malformed queries all at once.
SERVICE_SCENARIOS: Dict[str, ServiceFaultPlan] = {
    "none": ServiceFaultPlan(),
    "crashy_workers": ServiceFaultPlan(worker_crash_prob=0.05),
    "slow_solvers": ServiceFaultPlan(slow_prob=0.2, slow_seconds=0.05),
    "flaky_solvers": ServiceFaultPlan(transient_error_prob=0.1),
    "chaos": ServiceFaultPlan(
        worker_crash_prob=0.02,
        slow_prob=0.05,
        slow_seconds=0.02,
        transient_error_prob=0.05,
        malformed_rate=0.02,
    ),
}


def get_service_scenario(name: str) -> ServiceFaultPlan:
    """Look up a named :class:`ServiceFaultPlan` or raise ``KeyError``."""
    try:
        return SERVICE_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown service fault scenario {name!r}; available: "
            f"{', '.join(sorted(SERVICE_SCENARIOS))}"
        ) from None


def list_service_scenarios() -> List[str]:
    """Sorted names of the registered service fault scenarios."""
    return sorted(SERVICE_SCENARIOS)


def apply_worker_faults(plan: ServiceFaultPlan, rng: np.random.Generator) -> None:
    """Roll *plan*'s dice against *rng*; maybe crash, stall, or raise.

    Called by the worker-side batch solver before it touches a query.
    Draw order is fixed (crash, slow, transient) so a given
    ``(plan, substream)`` pair always injects the same fault — chaos
    runs replay deterministically. Crashes are skipped outside real
    worker processes (e.g. a plan evaluated inline in tests).
    """
    if not plan.injects_faults:
        return
    if plan.worker_crash_prob > 0 and float(rng.random()) < plan.worker_crash_prob:
        if in_worker_process():
            kill_current_worker()
    if plan.slow_prob > 0 and float(rng.random()) < plan.slow_prob:
        time.sleep(plan.slow_seconds)
    if (
        plan.transient_error_prob > 0
        and float(rng.random()) < plan.transient_error_prob
    ):
        raise TransientWorkerError(
            "injected transient worker failure (service fault plan)"
        )
