"""Process-level fault injection: killing worker processes on purpose.

The chaos tests for the supervised worker pool
(:class:`repro.simulation.pool.SupervisedPool`) need a fault that a
Python-level ``raise`` cannot model: a worker process dying abruptly
(``SIGKILL``), which poisons a bare ``ProcessPoolExecutor`` with
``BrokenProcessPool``. :class:`KillWorkerOnce` wraps any picklable
trial callable and kills the executing worker exactly once per marker
file — and only when actually running inside a worker process, so the
serial baseline of a bit-identity comparison is never harmed.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

__all__ = [
    "in_worker_process",
    "kill_current_worker",
    "KillWorkerOnce",
]


def in_worker_process() -> bool:
    """Whether this process was spawned by a multiprocessing pool.

    ``True`` in ``ProcessPoolExecutor`` workers (they have a
    multiprocessing parent), ``False`` in the main process — the guard
    that keeps process-killing faults from shooting the test harness.
    """
    return multiprocessing.parent_process() is not None


def kill_current_worker() -> None:
    """``SIGKILL`` the current process — no cleanup, no excuses.

    Models the faults supervision must survive (OOM killer, hard
    crash): the process gets no chance to run ``finally`` blocks or
    flush anything. Refuses to run outside a worker process.
    """
    if not in_worker_process():
        raise RuntimeError(
            "kill_current_worker() refused: not inside a worker process"
        )
    os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class KillWorkerOnce:
    """Picklable trial wrapper that SIGKILLs its worker exactly once.

    The first invocation (across *all* worker processes) atomically
    creates *marker* via ``open(..., "x")`` and kills its own process
    mid-replication; every other invocation — including the retry of
    the killed replication — runs *trial* unchanged. Run serially
    (``workers=1``) the kill is skipped entirely, so the same wrapper
    is safe on both sides of a serial-vs-parallel bit-identity check.

    Parameters
    ----------
    trial:
        The underlying trial callable (must be picklable itself).
    marker:
        Path used as the at-most-once latch; also the test's evidence
        that the kill actually fired.
    """

    trial: Callable[[np.random.Generator], Dict[str, float]]
    marker: str

    def __call__(self, rng: np.random.Generator) -> Dict[str, float]:
        if in_worker_process():
            try:
                with open(self.marker, "x", encoding="utf-8") as fh:
                    fh.write(str(os.getpid()))
            except FileExistsError:
                pass  # someone already died for this marker
            else:
                kill_current_worker()
        return self.trial(rng)
