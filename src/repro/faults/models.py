"""Fault models for non-synchronous covert channels.

The paper's analysis (Theorems 1-5) assumes i.i.d. channel events and a
perfect feedback path. Real covert channels violate both: scheduling
noise is *bursty* (periods of heavy contention push ``P_d``/``P_i`` up
for many consecutive uses), system load makes the event probabilities
*drift* over a run, and the feedback path itself loses, delays, or
corrupts acknowledgments and can silently desynchronize the two
counters of the Appendix-A protocol. This module provides generative
models for all of these regimes:

* :class:`IIDEventModel` — the paper's baseline, as a stream model;
* :class:`GilbertElliottModel` — two-state (good/bad) Markov-modulated
  event process, the classic bursty-loss model;
* :class:`DriftingParameterModel` — slow deterministic drift of
  ``(P_d, P_i)`` between two parameter bundles;
* :class:`FeedbackFaultModel` — ack loss / delay / corruption and
  counter-desync rates for the receiver-to-sender path.

Every model draws from an explicit ``numpy.random.Generator`` so fault
streams are reproducible bit-for-bit; :class:`repro.faults.injector.
FaultInjector` wires them to seeded :class:`repro.simulation.rng.
RngFactory` substreams.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

import numpy as np

from ..core.events import ChannelParameters
from ..infotheory.probability import is_zero, validate_probability

__all__ = [
    "EventStreamModel",
    "IIDEventModel",
    "GilbertElliottModel",
    "DriftingParameterModel",
    "AckOutcome",
    "FeedbackFaultModel",
]


class EventStreamModel(abc.ABC):
    """A (possibly non-i.i.d.) generator of Definition-1 event streams.

    Unlike :func:`repro.core.events.sample_events`, a stream model is
    *stateful*: successive calls to :meth:`sample` continue one process,
    so protocols that pull events block-by-block see a single coherent
    fault trajectory. Call :meth:`reset` before reusing a model for an
    independent run.
    """

    @abc.abstractmethod
    def sample(self, num_uses: int, rng: np.random.Generator) -> np.ndarray:
        """Draw the next *num_uses* events (``ChannelEvent`` codes)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return the model to its initial state."""

    @abc.abstractmethod
    def expected_parameters(self) -> ChannelParameters:
        """Long-run average :class:`ChannelParameters` of the stream."""


def _sample_from_rows(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Vectorized categorical draw: one event per row of *probs*."""
    cum = np.cumsum(probs, axis=1)
    # Guard against rounding: force the last column to 1 exactly.
    cum[:, -1] = 1.0
    u = rng.random(probs.shape[0])
    return (u[:, None] > cum).sum(axis=1).astype(np.int64)


class IIDEventModel(EventStreamModel):
    """The paper's baseline: i.i.d. events at fixed parameters."""

    def __init__(self, params: ChannelParameters) -> None:
        self.params = params

    def sample(self, num_uses: int, rng: np.random.Generator) -> np.ndarray:
        if num_uses < 0:
            raise ValueError("num_uses must be non-negative")
        dist = self.params.event_distribution()
        return rng.choice(4, size=num_uses, p=dist).astype(np.int64)

    def reset(self) -> None:  # stateless
        pass

    def expected_parameters(self) -> ChannelParameters:
        return self.params


class GilbertElliottModel(EventStreamModel):
    """Two-state Markov-modulated event process (bursty faults).

    A hidden good/bad state chain modulates the event distribution:
    while *good*, events follow ``good`` parameters; while *bad*
    (e.g. heavy scheduler contention), they follow ``bad`` parameters
    with typically much higher ``P_d``/``P_i``. Transitions happen
    per channel use with probabilities ``p_gb`` (good→bad) and ``p_bg``
    (bad→good), so mean burst length is ``1/p_bg``.

    Attributes
    ----------
    bad_uses:
        Number of uses sampled while in the bad state since the last
        :meth:`reset` — fault accounting for run records.
    """

    GOOD, BAD = 0, 1

    def __init__(
        self,
        good: ChannelParameters,
        bad: ChannelParameters,
        *,
        p_gb: float,
        p_bg: float,
    ) -> None:
        for name, p in (("p_gb", p_gb), ("p_bg", p_bg)):
            if not 0.0 < p <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {p}")
        self.good = good
        self.bad = bad
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.state = self.GOOD
        self.bad_uses = 0

    def reset(self) -> None:
        self.state = self.GOOD
        self.bad_uses = 0

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of uses spent in the bad state."""
        return self.p_gb / (self.p_gb + self.p_bg)

    def expected_parameters(self) -> ChannelParameters:
        w = self.stationary_bad_fraction
        mix = (1.0 - w) * self.good.event_distribution() + w * (
            self.bad.event_distribution()
        )
        transmission = mix[2] + mix[3]
        return ChannelParameters(
            deletion=float(mix[0]),
            insertion=float(mix[1]),
            transmission=float(transmission),
            substitution=float(mix[3] / transmission) if transmission else 0.0,
        )

    def _sample_states(self, num_uses: int, rng: np.random.Generator) -> np.ndarray:
        """Advance the state chain *num_uses* steps (per-use draws)."""
        flips = rng.random(num_uses)
        states = np.empty(num_uses, dtype=np.int64)
        s = self.state
        for k in range(num_uses):
            p_switch = self.p_gb if s == self.GOOD else self.p_bg
            if flips[k] < p_switch:
                s = self.BAD if s == self.GOOD else self.GOOD
            states[k] = s
        self.state = s
        return states

    def sample(self, num_uses: int, rng: np.random.Generator) -> np.ndarray:
        if num_uses < 0:
            raise ValueError("num_uses must be non-negative")
        if num_uses == 0:
            return np.empty(0, dtype=np.int64)
        states = self._sample_states(num_uses, rng)
        self.bad_uses += int(np.count_nonzero(states == self.BAD))
        probs = np.where(
            (states == self.BAD)[:, None],
            self.bad.event_distribution()[None, :],
            self.good.event_distribution()[None, :],
        )
        return _sample_from_rows(probs, rng)


class DriftingParameterModel(EventStreamModel):
    """Slow deterministic drift of the channel parameters.

    The event distribution interpolates linearly from ``start`` to
    ``end`` over ``ramp_uses`` channel uses and then holds at ``end`` —
    a minimal model of load ramping up (or a countermeasure kicking in)
    during a long covert transfer.
    """

    def __init__(
        self,
        start: ChannelParameters,
        end: ChannelParameters,
        *,
        ramp_uses: int,
    ) -> None:
        if ramp_uses < 1:
            raise ValueError("ramp_uses must be >= 1")
        self.start = start
        self.end = end
        self.ramp_uses = ramp_uses
        self.t = 0

    def reset(self) -> None:
        self.t = 0

    def expected_parameters(self) -> ChannelParameters:
        # Long-run behaviour is dominated by the post-ramp plateau.
        return self.end

    def params_at(self, t: int) -> ChannelParameters:
        """The interpolated parameter bundle at channel use *t*."""
        frac = min(1.0, max(0.0, t / self.ramp_uses))
        mix = (1.0 - frac) * self.start.event_distribution() + frac * (
            self.end.event_distribution()
        )
        transmission = mix[2] + mix[3]
        return ChannelParameters(
            deletion=float(mix[0]),
            insertion=float(mix[1]),
            transmission=float(transmission),
            substitution=float(mix[3] / transmission) if transmission else 0.0,
        )

    def sample(self, num_uses: int, rng: np.random.Generator) -> np.ndarray:
        if num_uses < 0:
            raise ValueError("num_uses must be non-negative")
        if num_uses == 0:
            return np.empty(0, dtype=np.int64)
        ts = np.arange(self.t, self.t + num_uses, dtype=float)
        frac = np.clip(ts / self.ramp_uses, 0.0, 1.0)
        probs = (1.0 - frac)[:, None] * self.start.event_distribution()[
            None, :
        ] + frac[:, None] * self.end.event_distribution()[None, :]
        self.t += num_uses
        return _sample_from_rows(probs, rng)


class AckOutcome(enum.IntEnum):
    """Fate of one acknowledgment on a faulty feedback path."""

    DELIVERED = 0
    LOST = 1
    DELAYED = 2
    CORRUPTED = 3


@dataclass(frozen=True)
class FeedbackFaultModel:
    """Fault rates for the receiver-to-sender feedback path.

    Attributes
    ----------
    ack_loss_prob:
        Probability an acknowledgment never arrives.
    ack_delay_prob:
        Probability an acknowledgment arrives late — after the sender's
        timeout, so the sender retransmits a symbol the receiver
        already has.
    ack_corrupt_prob:
        Probability an acknowledgment arrives unreadable; a hardened
        sender must treat it as lost (but the event is accounted
        separately).
    desync_prob:
        Per-channel-use probability that the receiver's symbol counter
        silently drifts by one relative to the sender's belief —
        the fault :class:`repro.sync.feedback.CounterProtocol`'s
        resynchronization epochs exist to repair.
    """

    ack_loss_prob: float = 0.0
    ack_delay_prob: float = 0.0
    ack_corrupt_prob: float = 0.0
    desync_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "ack_loss_prob",
            "ack_delay_prob",
            "ack_corrupt_prob",
            "desync_prob",
        ):
            validate_probability(getattr(self, name), name)
        bad = self.ack_loss_prob + self.ack_delay_prob + self.ack_corrupt_prob
        if bad > 1.0 + 1e-12:
            raise ValueError(
                "ack_loss_prob + ack_delay_prob + ack_corrupt_prob must "
                f"not exceed 1, got {bad}"
            )

    @property
    def is_perfect(self) -> bool:
        """True when the feedback path has no faults at all."""
        return bool(
            is_zero(self.ack_loss_prob)
            and is_zero(self.ack_delay_prob)
            and is_zero(self.ack_corrupt_prob)
            and is_zero(self.desync_prob)
        )

    @property
    def ack_failure_prob(self) -> float:
        """Probability an ack does not arrive intact and on time."""
        return self.ack_loss_prob + self.ack_delay_prob + self.ack_corrupt_prob

    def ack_outcome(self, rng: np.random.Generator) -> AckOutcome:
        """Sample the fate of one acknowledgment."""
        u = float(rng.random())
        if u < self.ack_loss_prob:
            return AckOutcome.LOST
        u -= self.ack_loss_prob
        if u < self.ack_delay_prob:
            return AckOutcome.DELAYED
        u -= self.ack_delay_prob
        if u < self.ack_corrupt_prob:
            return AckOutcome.CORRUPTED
        return AckOutcome.DELIVERED

    def desync_occurs(self, rng: np.random.Generator) -> bool:
        """Sample whether a counter-desync fault strikes this use."""
        if is_zero(self.desync_prob):
            return False
        return bool(rng.random() < self.desync_prob)
