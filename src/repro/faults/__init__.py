"""Fault injection for non-synchronous covert channels.

The paper's capacity results assume i.i.d. channel events and a perfect
feedback path. This package systematically breaks those assumptions —
bursty Gilbert-Elliott loss, slow parameter drift, lossy/delayed/
corrupted acknowledgments, and counter desynchronization — so the
protocols and bounds can be measured where the theory's hypotheses
fail. See ``docs/api.md`` ("Fault injection & resilience") for a tour
and :mod:`repro.experiments.e15_fault_resilience` for the sweep.
"""

from .injector import (
    FaultedMeasurement,
    FaultInjector,
    FaultLog,
    active_injector,
    run_under_faults,
)
from .models import (
    AckOutcome,
    DriftingParameterModel,
    EventStreamModel,
    FeedbackFaultModel,
    GilbertElliottModel,
    IIDEventModel,
)
from .scenarios import (
    SCENARIOS,
    FaultScenario,
    build_injector,
    get_scenario,
    list_scenarios,
    register_scenario,
)

__all__ = [
    "AckOutcome",
    "DriftingParameterModel",
    "EventStreamModel",
    "FeedbackFaultModel",
    "GilbertElliottModel",
    "IIDEventModel",
    "FaultLog",
    "FaultInjector",
    "FaultedMeasurement",
    "active_injector",
    "run_under_faults",
    "FaultScenario",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "build_injector",
]
