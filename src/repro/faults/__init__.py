"""Fault injection for non-synchronous covert channels.

The paper's capacity results assume i.i.d. channel events and a perfect
feedback path. This package systematically breaks those assumptions —
bursty Gilbert-Elliott loss, slow parameter drift, lossy/delayed/
corrupted acknowledgments, and counter desynchronization — so the
protocols and bounds can be measured where the theory's hypotheses
fail. See ``docs/api.md`` ("Fault injection & resilience") for a tour
and :mod:`repro.experiments.e15_fault_resilience` for the sweep.
"""

from .injector import (
    FaultedMeasurement,
    FaultInjector,
    FaultLog,
    active_injector,
    run_under_faults,
)
from .models import (
    AckOutcome,
    DriftingParameterModel,
    EventStreamModel,
    FeedbackFaultModel,
    GilbertElliottModel,
    IIDEventModel,
)
from .process import KillWorkerOnce, in_worker_process, kill_current_worker
from .scenarios import (
    SCENARIOS,
    FaultScenario,
    build_injector,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from .service_faults import (
    SERVICE_SCENARIOS,
    ServiceFaultPlan,
    TransientWorkerError,
    apply_worker_faults,
    get_service_scenario,
    list_service_scenarios,
)

__all__ = [
    "AckOutcome",
    "DriftingParameterModel",
    "EventStreamModel",
    "FeedbackFaultModel",
    "GilbertElliottModel",
    "IIDEventModel",
    "FaultLog",
    "FaultInjector",
    "FaultedMeasurement",
    "active_injector",
    "run_under_faults",
    "FaultScenario",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "build_injector",
    "in_worker_process",
    "kill_current_worker",
    "KillWorkerOnce",
    "TransientWorkerError",
    "ServiceFaultPlan",
    "SERVICE_SCENARIOS",
    "get_service_scenario",
    "list_service_scenarios",
    "apply_worker_faults",
]
