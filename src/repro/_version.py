"""Single source of the package version.

Kept in a leaf module (no imports) so infrastructure that must not
import the full package mid-initialization — the result store's key
salting, the experiment runner's checkpoint fingerprints — can read it
without risking a partially-initialized ``repro`` during import cycles.
Must match ``[project] version`` in ``pyproject.toml``.
"""

from __future__ import annotations

__all__ = ["PACKAGE_VERSION"]

PACKAGE_VERSION = "1.0.0"
