"""Statistical helpers for Monte-Carlo experiments.

Mean/confidence-interval summaries, Wilson intervals for event-rate
estimates (the measured ``P_d``/``P_i`` of the estimation recipe), and a
small running-statistics accumulator used by long protocol simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats

from ..infotheory.probability import is_zero

__all__ = [
    "ConfidenceInterval",
    "mean_confidence_interval",
    "wilson_interval",
    "RunningStats",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    @property
    def half_width(self) -> float:
        return 0.5 * (self.upper - self.lower)

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper


def mean_confidence_interval(
    samples: Sequence[float], *, confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of *samples*."""
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError("need at least two samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    if is_zero(sem):
        return ConfidenceInterval(mean, mean, mean, confidence)
    t = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return ConfidenceInterval(mean, mean - t * sem, mean + t * sem, confidence)


def wilson_interval(
    successes: int, trials: int, *, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation for the small event rates
    (``P_d``, ``P_i``) typical of well-designed schedulers.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = float(_scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    lower = max(0.0, center - margin)
    upper = min(1.0, center + margin)
    # Snap floating-point fuzz at the degenerate endpoints.
    if successes == 0:
        lower = 0.0
    if successes == trials:
        upper = 1.0
    return ConfidenceInterval(
        estimate=phat, lower=lower, upper=upper, confidence=confidence
    )


class RunningStats:
    """Welford's online mean/variance accumulator.

    Numerically stable for very long protocol runs where storing every
    per-block rate sample would be wasteful.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, x: float) -> None:
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)

    def extend(self, xs: Sequence[float]) -> None:
        for x in xs:
            self.push(float(x))

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        if self._n < 2:
            raise ValueError("need at least two samples")
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def confidence_interval(self, *, confidence: float = 0.95) -> ConfidenceInterval:
        """Student-t interval from the accumulated statistics."""
        if self._n < 2:
            raise ValueError("need at least two samples")
        sem = self.std / math.sqrt(self._n)
        t = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=self._n - 1))
        return ConfidenceInterval(
            self._mean, self._mean - t * sem, self._mean + t * sem, confidence
        )
