"""Monte-Carlo experiment runner.

An orchestration layer hardened for long, many-scenario campaigns: an
:class:`ExperimentRunner` repeats a trial function over independent
seeded replications and aggregates the results into
:class:`TrialSummary` objects. Experiments E1-E15 are built on it so
that every number in EXPERIMENTS.md carries a replication count and a
confidence interval.

Robustness guarantees (see ``tests/simulation/test_runner_robustness``):

* **Exception isolation** — a replication that raises is recorded as a
  :class:`ReplicationFailure` and retried on a fresh, independent RNG
  substream; a crash never kills the run, and successful replications
  are unaffected (their streams are derived from the replication index,
  not from execution order).
* **Wall-clock budget** — ``time_budget_seconds`` stops the run early
  (with however many replications completed) instead of overrunning a
  campaign schedule.
* **Checkpoint/resume** — with ``checkpoint_path`` set, completed
  replication metrics are persisted (atomically) after every trial;
  re-running the same configuration resumes from the checkpoint and
  produces bit-identical summaries, because replication ``k`` always
  draws from the substream ``trial/<k>`` regardless of which
  replications were restored.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..numerics import collect_solver_statuses
from .rng import RngFactory
from .stats import ConfidenceInterval, mean_confidence_interval

__all__ = [
    "TrialSummary",
    "ReplicationFailure",
    "RunResult",
    "ExperimentRunner",
]


@dataclass(frozen=True)
class TrialSummary:
    """Aggregate of one metric across replications."""

    name: str
    samples: tuple
    interval: ConfidenceInterval

    @property
    def mean(self) -> float:
        return self.interval.estimate

    @property
    def replications(self) -> int:
        return len(self.samples)


@dataclass(frozen=True)
class ReplicationFailure:
    """Record of one failed trial execution.

    Attributes
    ----------
    replication:
        Index of the replication that failed.
    attempt:
        0 for the first execution, ``r`` for retry number ``r``.
    error:
        ``repr`` of the exception (kept as text so failures serialize
        into checkpoints).
    """

    replication: int
    attempt: int
    error: str


class RunResult(Dict[str, TrialSummary]):
    """Mapping of metric name to :class:`TrialSummary`, plus run
    metadata.

    Behaves exactly like the plain dict the runner used to return, so
    existing experiments index it unchanged; the extra attributes
    expose what the hardened runner observed.

    Attributes
    ----------
    failures:
        Every failed execution (including ones whose retry succeeded).
    failed_replications:
        Replication indices that failed *all* allowed attempts and
        contributed no sample.
    elapsed_seconds:
        Wall-clock duration of this call (resumed replications cost
        nothing).
    budget_exhausted:
        True when the wall-clock budget stopped the run early.
    resumed_replications:
        Number of replications restored from the checkpoint rather
        than executed.
    solver_statuses:
        Aggregate ``{"solver:status": count}`` reported by guarded
        solvers (:mod:`repro.numerics`) across the replications
        executed in this call — a stalled or aborted solve deep inside
        a trial surfaces here instead of vanishing. Replications
        restored from a checkpoint contribute no counts (they did not
        execute).
    """

    def __init__(
        self,
        summaries: Dict[str, TrialSummary],
        *,
        failures: Tuple[ReplicationFailure, ...] = (),
        failed_replications: Tuple[int, ...] = (),
        elapsed_seconds: float = 0.0,
        budget_exhausted: bool = False,
        resumed_replications: int = 0,
        solver_statuses: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(summaries)
        self.failures = failures
        self.failed_replications = failed_replications
        self.elapsed_seconds = elapsed_seconds
        self.budget_exhausted = budget_exhausted
        self.resumed_replications = resumed_replications
        self.solver_statuses = dict(solver_statuses or {})


def _metric_mismatch_message(
    replication: int, got: Sequence[str], expected: Sequence[str]
) -> str:
    missing = sorted(set(expected) - set(got))
    extra = sorted(set(got) - set(expected))
    parts = [
        f"replication {replication} reported metric names "
        f"{sorted(got)} but earlier replications reported "
        f"{sorted(expected)}"
    ]
    if missing:
        parts.append(f"missing: {missing}")
    if extra:
        parts.append(f"unexpected: {extra}")
    return "; ".join(parts)


@dataclass
class ExperimentRunner:
    """Run a trial function across seeded replications, crash-proof.

    Parameters
    ----------
    root_seed:
        Root seed; replication ``k`` receives the independent stream
        ``trial/<k>`` (retry ``r`` of a failed replication receives
        ``trial/<k>/retry/<r>``).
    replications:
        Number of independent repetitions.
    confidence:
        Confidence level for the aggregated intervals.
    max_trial_retries:
        How many fresh-substream retries a raising replication gets
        before it is recorded as permanently failed.
    time_budget_seconds:
        Optional wall-clock budget; once exceeded, remaining
        replications are skipped and the result is flagged
        ``budget_exhausted``.
    checkpoint_path:
        Optional path for persisted partial state. Written atomically
        after every completed replication; an existing compatible
        checkpoint is resumed (bit-identical results), an incompatible
        one raises ``ValueError``.
    """

    root_seed: int = 0
    replications: int = 10
    confidence: float = 0.95
    max_trial_retries: int = 1
    time_budget_seconds: Optional[float] = None
    checkpoint_path: Optional[Union[str, Path]] = None
    _factory: RngFactory = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.replications < 2:
            raise ValueError("need at least two replications for intervals")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.max_trial_retries < 0:
            raise ValueError("max_trial_retries must be non-negative")
        if self.time_budget_seconds is not None and self.time_budget_seconds <= 0:
            raise ValueError("time_budget_seconds must be positive")
        self._factory = RngFactory(self.root_seed)

    # ------------------------------------------------------------------
    # checkpointing

    def _config_fingerprint(self) -> Dict[str, float]:
        return {
            "root_seed": self.root_seed,
            "replications": self.replications,
            "confidence": self.confidence,
        }

    def _load_checkpoint(self, label: str) -> Dict:
        """Completed-replication state for *label*, or an empty dict."""
        if self.checkpoint_path is None:
            return {}
        path = Path(self.checkpoint_path)
        if not path.exists():
            return {}
        try:
            state = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as exc:
            raise ValueError(f"unreadable checkpoint {path}: {exc!r}") from exc
        if state.get("config") != self._config_fingerprint():
            raise ValueError(
                f"checkpoint {path} was written by an incompatible runner "
                f"configuration {state.get('config')}; expected "
                f"{self._config_fingerprint()}"
            )
        return state.get("runs", {}).get(label, {})

    def _save_checkpoint(
        self,
        label: str,
        completed: Dict[int, Dict[str, float]],
        failures: List[ReplicationFailure],
    ) -> None:
        if self.checkpoint_path is None:
            return
        path = Path(self.checkpoint_path)
        state = {"config": self._config_fingerprint(), "runs": {}}
        if path.exists():
            try:
                prior = json.loads(path.read_text(encoding="utf-8"))
                if prior.get("config") == self._config_fingerprint():
                    state["runs"] = prior.get("runs", {})
            except (json.JSONDecodeError, OSError):
                pass  # rewrite a corrupt checkpoint from scratch
        state["runs"][label] = {
            "completed": {str(k): v for k, v in sorted(completed.items())},
            "failures": [
                {"replication": f.replication, "attempt": f.attempt, "error": f.error}
                for f in failures
            ],
        }
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(state, indent=1, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # execution

    def _execute_replication(
        self,
        trial: Callable[[np.random.Generator], Dict[str, float]],
        k: int,
        failures: List[ReplicationFailure],
    ) -> Tuple[Optional[Dict[str, float]], Dict[str, int]]:
        """Run replication *k*, retrying on fresh substreams.

        Returns ``(metrics, solver_statuses)``; metrics is ``None``
        when every attempt raised (failures are appended either way),
        and the statuses come from the successful attempt only.
        """
        for attempt in range(self.max_trial_retries + 1):
            stream = f"trial/{k}" if attempt == 0 else f"trial/{k}/retry/{attempt}"
            rng = self._factory.fresh(stream)
            try:
                with collect_solver_statuses() as counts:
                    metrics = trial(rng)
                return metrics, dict(counts)
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                failures.append(ReplicationFailure(k, attempt, repr(exc)))
        return None, {}

    def run(
        self,
        trial: Callable[[np.random.Generator], Dict[str, float]],
        *,
        label: str = "run",
    ) -> RunResult:
        """Execute *trial* once per replication and aggregate metrics.

        *trial* receives a fresh generator and returns a flat mapping of
        metric name to value; all replications must report the same
        metric names. *label* namespaces checkpoint state (used by
        :meth:`sweep` so swept points don't collide in one file).
        """
        # Wall-clock budgeting is the runner's job — the one sanctioned
        # use of real time in src/.
        start = time.monotonic()  # repro: noqa[DET001]
        completed: Dict[int, Dict[str, float]] = {}
        failures: List[ReplicationFailure] = []

        resumed_state = self._load_checkpoint(label)
        for key, metrics in resumed_state.get("completed", {}).items():
            completed[int(key)] = {m: float(v) for m, v in metrics.items()}
        for f in resumed_state.get("failures", []):
            failures.append(
                ReplicationFailure(f["replication"], f["attempt"], f["error"])
            )
        resumed = len(completed)

        expected_names: Optional[frozenset] = (
            frozenset(next(iter(completed.values()))) if completed else None
        )
        budget_exhausted = False
        solver_statuses: Dict[str, int] = {}
        for k in range(self.replications):
            if k in completed:
                continue
            if (
                self.time_budget_seconds is not None
                and time.monotonic() - start > self.time_budget_seconds  # repro: noqa[DET001]
            ):
                budget_exhausted = True
                break
            result, statuses = self._execute_replication(trial, k, failures)
            for key, count in statuses.items():
                solver_statuses[key] = solver_statuses.get(key, 0) + count
            if result is None:
                self._save_checkpoint(label, completed, failures)
                continue
            if not result:
                raise ValueError(f"replication {k} returned no metrics")
            if expected_names is None:
                expected_names = frozenset(result)
            elif frozenset(result) != expected_names:
                raise ValueError(
                    _metric_mismatch_message(k, list(result), list(expected_names))
                )
            completed[k] = {name: float(value) for name, value in result.items()}
            self._save_checkpoint(label, completed, failures)

        if len(completed) < 2:
            raise RuntimeError(
                f"only {len(completed)} of {self.replications} replications "
                "produced samples (need at least 2 for intervals); "
                + (
                    f"last failure: {failures[-1].error}"
                    if failures
                    else "wall-clock budget exhausted"
                )
            )

        per_metric: Dict[str, List[float]] = {}
        for k in sorted(completed):
            for name, value in completed[k].items():
                per_metric.setdefault(name, []).append(value)
        summaries = {
            name: TrialSummary(
                name=name,
                samples=tuple(values),
                interval=mean_confidence_interval(
                    values, confidence=self.confidence
                ),
            )
            for name, values in per_metric.items()
        }
        succeeded = set(completed)
        permanently_failed = tuple(
            sorted(
                {f.replication for f in failures} - succeeded
            )
        )
        return RunResult(
            summaries,
            failures=tuple(failures),
            failed_replications=permanently_failed,
            elapsed_seconds=time.monotonic() - start,  # repro: noqa[DET001]
            budget_exhausted=budget_exhausted,
            resumed_replications=resumed,
            solver_statuses=solver_statuses,
        )

    def sweep(
        self,
        trial: Callable[[np.random.Generator, float], Dict[str, float]],
        parameter_values: Sequence[float],
    ) -> Dict[float, Dict[str, TrialSummary]]:
        """Run :meth:`run` for each value of a swept scalar parameter."""
        out: Dict[float, Dict[str, TrialSummary]] = {}
        for value in parameter_values:
            def bound_trial(rng: np.random.Generator, _v=value) -> Dict[str, float]:
                return trial(rng, _v)

            out[float(value)] = self.run(bound_trial, label=f"sweep/{value}")
        return out
