"""Monte-Carlo experiment runner.

An orchestration layer hardened for long, many-scenario campaigns: an
:class:`ExperimentRunner` repeats a trial function over independent
seeded replications and aggregates the results into
:class:`TrialSummary` objects. Experiments E1-E15 are built on it so
that every number in EXPERIMENTS.md carries a replication count and a
confidence interval.

Robustness guarantees (see ``tests/simulation/test_runner_robustness``
and ``tests/simulation/test_parallel_runner``):

* **Exception isolation** — a replication that raises is recorded as a
  :class:`ReplicationFailure` and retried on a fresh, independent RNG
  substream; a crash never kills the run, and successful replications
  are unaffected (their streams are derived from the replication index,
  not from execution order).
* **Wall-clock budget** — ``time_budget_seconds`` stops the run early
  (with however many replications completed) instead of overrunning a
  campaign schedule.
* **Checkpoint/resume** — with ``checkpoint_path`` set, completed
  replication metrics (and their solver-status counts) are persisted
  (atomically) after every trial; re-running the same configuration
  resumes from the checkpoint and produces bit-identical summaries,
  because replication ``k`` always draws from the substream
  ``trial/<k>`` regardless of which replications were restored.
* **Parallel execution** — ``workers > 1`` fans replications out over a
  :class:`repro.simulation.pool.SupervisedPool` (a restartable,
  hang-aware ``ProcessPoolExecutor``). Replication ``k`` still draws
  from ``trial/<k>`` (the worker re-derives the substream from
  ``(root_seed, k)``), so serial and parallel runs are bit-identical;
  the parent process remains the only checkpoint writer, merging worker
  results as tasks complete. A worker killed mid-replication no longer
  poisons the run: the pool is rebuilt and the interrupted replications
  are resubmitted on their original substreams. See
  ``docs/performance.md`` for the worker model and determinism
  contract.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._version import PACKAGE_VERSION
from ..numerics import (
    collect_solver_statuses,
    collect_stage_timings,
    record_stage_seconds,
    stage,
)
from ..store import (
    SerializationError,
    StoreError,
    UnsupportedParameterError,
    active_store,
    callable_fingerprint,
    canonical_key,
    record_cache_event,
)
from .pool import SupervisedPool
from .rng import RngFactory
from .stats import ConfidenceInterval, mean_confidence_interval

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "RUNNER_FN_ID",
    "TrialSummary",
    "ReplicationFailure",
    "RunResult",
    "ExperimentRunner",
    "sweep_checkpoint_label",
]

#: Version of the checkpoint config-fingerprint format. Bumped when the
#: fingerprint gains or changes fields; checkpoints written by the
#: pre-versioned format are still resumed (one-release migration shim)
#: and rewritten in the current format on the next save.
CHECKPOINT_SCHEMA_VERSION = 2

#: Store function-id under which whole aggregated runs are cached.
RUNNER_FN_ID = "experiment_runner.run"


@dataclass(frozen=True)
class TrialSummary:
    """Aggregate of one metric across replications."""

    name: str
    samples: tuple
    interval: ConfidenceInterval

    @property
    def mean(self) -> float:
        return self.interval.estimate

    @property
    def replications(self) -> int:
        return len(self.samples)


@dataclass(frozen=True)
class ReplicationFailure:
    """Record of one failed trial execution.

    Attributes
    ----------
    replication:
        Index of the replication that failed.
    attempt:
        0 for the first execution, ``r`` for retry number ``r``.
    error:
        ``repr`` of the exception (kept as text so failures serialize
        into checkpoints).
    """

    replication: int
    attempt: int
    error: str


class RunResult(Dict[str, TrialSummary]):
    """Mapping of metric name to :class:`TrialSummary`, plus run
    metadata.

    Behaves exactly like the plain dict the runner used to return, so
    existing experiments index it unchanged; the extra attributes
    expose what the hardened runner observed.

    Attributes
    ----------
    failures:
        Every failed execution (including ones whose retry succeeded),
        ordered by ``(replication, attempt)``.
    failed_replications:
        Replication indices that failed *all* allowed attempts and
        contributed no sample.
    elapsed_seconds:
        Wall-clock duration of this call (resumed replications cost
        nothing).
    budget_exhausted:
        True when the wall-clock budget stopped the run early.
    resumed_replications:
        Number of replications restored from the checkpoint rather
        than executed.
    solver_statuses:
        Aggregate ``{"solver:status": count}`` reported by guarded
        solvers (:mod:`repro.numerics`) across all replications that
        contributed samples — including replications restored from a
        checkpoint, whose statuses are persisted per replication and
        restored on resume.
    timing:
        Per-stage wall-clock attribution, populated only when the
        runner was built with ``collect_timing=True`` (empty dict
        otherwise). ``"trial"`` is the summed in-trial execution time
        across replications, kernel stages such as ``"lattice"`` and
        ``"solver"`` are subsets of it, ``"checkpoint"`` is parent-side
        persistence, and ``"total"`` is this call's wall-clock. With
        ``workers > 1`` the stage sums aggregate across processes and
        may exceed ``"total"``.
    pool_restarts:
        How many times the supervised worker pool was rebuilt during
        this call (crashed or hung worker processes); 0 for serial
        runs. Replications interrupted by a pool restart were
        resubmitted and recomputed bit-identically.
    """

    def __init__(
        self,
        summaries: Dict[str, TrialSummary],
        *,
        failures: Tuple[ReplicationFailure, ...] = (),
        failed_replications: Tuple[int, ...] = (),
        elapsed_seconds: float = 0.0,
        budget_exhausted: bool = False,
        resumed_replications: int = 0,
        solver_statuses: Optional[Dict[str, int]] = None,
        timing: Optional[Dict[str, float]] = None,
        pool_restarts: int = 0,
    ) -> None:
        super().__init__(summaries)
        self.failures = failures
        self.failed_replications = failed_replications
        self.elapsed_seconds = elapsed_seconds
        self.budget_exhausted = budget_exhausted
        self.resumed_replications = resumed_replications
        self.solver_statuses = dict(solver_statuses or {})
        self.timing = dict(timing or {})
        self.pool_restarts = pool_restarts

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation: summaries plus all run metadata.

        Round-trips through :meth:`from_dict`; also the payload the
        result store persists for whole cached runs and the body of
        ``repro run --format json``.
        """
        return {
            "summaries": {
                name: {
                    "name": summary.name,
                    "samples": [float(v) for v in summary.samples],
                    "interval": {
                        "estimate": summary.interval.estimate,
                        "lower": summary.interval.lower,
                        "upper": summary.interval.upper,
                        "confidence": summary.interval.confidence,
                    },
                }
                for name, summary in self.items()
            },
            "failures": [
                {
                    "replication": f.replication,
                    "attempt": f.attempt,
                    "error": f.error,
                }
                for f in self.failures
            ],
            "failed_replications": list(self.failed_replications),
            "elapsed_seconds": self.elapsed_seconds,
            "budget_exhausted": self.budget_exhausted,
            "resumed_replications": self.resumed_replications,
            "solver_statuses": dict(self.solver_statuses),
            "timing": dict(self.timing),
            "pool_restarts": self.pool_restarts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a :class:`RunResult` from :meth:`to_dict` output."""
        summaries = {
            name: TrialSummary(
                name=s["name"],
                samples=tuple(float(v) for v in s["samples"]),
                interval=ConfidenceInterval(
                    estimate=float(s["interval"]["estimate"]),
                    lower=float(s["interval"]["lower"]),
                    upper=float(s["interval"]["upper"]),
                    confidence=float(s["interval"]["confidence"]),
                ),
            )
            for name, s in data["summaries"].items()
        }
        return cls(
            summaries,
            failures=tuple(
                ReplicationFailure(
                    replication=int(f["replication"]),
                    attempt=int(f["attempt"]),
                    error=str(f["error"]),
                )
                for f in data.get("failures", [])
            ),
            failed_replications=tuple(
                int(k) for k in data.get("failed_replications", [])
            ),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            budget_exhausted=bool(data.get("budget_exhausted", False)),
            resumed_replications=int(data.get("resumed_replications", 0)),
            solver_statuses={
                str(k): int(v)
                for k, v in data.get("solver_statuses", {}).items()
            },
            timing={
                str(k): float(v) for k, v in data.get("timing", {}).items()
            },
            pool_restarts=int(data.get("pool_restarts", 0)),
        )


def sweep_checkpoint_label(value: float) -> str:
    """Canonical checkpoint label for one swept parameter value.

    The value is coerced to ``float`` first, so the label is bijective
    with the sweep-result dictionary key: two values that coerce to
    different floats (``0.3`` vs. ``0.1 + 0.2``) never share checkpoint
    state, and two spellings of the same float (``1`` vs. ``1.0``, a
    ``np.float64`` vs. the plain float) never fragment it. Formatting
    the *raw* value instead collides for types whose ``str`` truncates
    (``str(np.float32(0.1)) == "0.1"`` but
    ``float(np.float32(0.1)) != 0.1``).
    """
    return f"sweep/{float(value)!r}"


@dataclass(frozen=True)
class _SweepTrial:
    """Picklable binding of a swept parameter value onto a trial.

    A closure would break ``workers > 1`` (closures don't pickle);
    this dataclass pickles whenever the underlying trial does.
    """

    trial: Callable[[np.random.Generator, float], Dict[str, float]]
    value: float

    def __call__(self, rng: np.random.Generator) -> Dict[str, float]:
        return self.trial(rng, self.value)


def _execute_replication_task(
    trial: Callable[[np.random.Generator], Dict[str, float]],
    root_seed: int,
    k: int,
    max_trial_retries: int,
    collect_timing: bool,
) -> Tuple[
    int,
    Optional[Dict[str, float]],
    List[Tuple[int, int, str]],
    Dict[str, int],
    Dict[str, float],
]:
    """Run replication *k*, retrying on fresh substreams.

    Module-level so it executes identically inline (serial path) and in
    a worker process (``workers > 1``): the substream is re-derived from
    ``(root_seed, k)``, never shipped across the process boundary, so a
    worker draws exactly the randomness the serial loop would have.

    Returns ``(k, metrics, failures, solver_statuses, timing)``;
    metrics is ``None`` when every attempt raised (failure tuples are
    recorded either way), and statuses/timing come from the successful
    attempt only.
    """
    factory = RngFactory(root_seed)
    failures: List[Tuple[int, int, str]] = []
    for attempt in range(max_trial_retries + 1):
        stream = f"trial/{k}" if attempt == 0 else f"trial/{k}/retry/{attempt}"
        rng = factory.fresh(stream)
        try:
            with collect_solver_statuses() as counts:
                if collect_timing:
                    with collect_stage_timings() as stage_totals:
                        with stage("trial"):
                            metrics = trial(rng)
                    timing = dict(stage_totals)
                else:
                    metrics = trial(rng)
                    timing = {}
            return k, metrics, failures, dict(counts), timing
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            failures.append((k, attempt, repr(exc)))
    return k, None, failures, {}, {}


def _metric_mismatch_message(
    replication: int, got: Sequence[str], expected: Sequence[str]
) -> str:
    missing = sorted(set(expected) - set(got))
    extra = sorted(set(got) - set(expected))
    parts = [
        f"replication {replication} reported metric names "
        f"{sorted(got)} but earlier replications reported "
        f"{sorted(expected)}"
    ]
    if missing:
        parts.append(f"missing: {missing}")
    if extra:
        parts.append(f"unexpected: {extra}")
    return "; ".join(parts)


@dataclass
class ExperimentRunner:
    """Run a trial function across seeded replications, crash-proof.

    Parameters
    ----------
    root_seed:
        Root seed; replication ``k`` receives the independent stream
        ``trial/<k>`` (retry ``r`` of a failed replication receives
        ``trial/<k>/retry/<r>``).
    replications:
        Number of independent repetitions.
    confidence:
        Confidence level for the aggregated intervals.
    max_trial_retries:
        How many fresh-substream retries a raising replication gets
        before it is recorded as permanently failed.
    time_budget_seconds:
        Optional wall-clock budget; once exceeded, remaining
        replications are skipped and the result is flagged
        ``budget_exhausted``.
    checkpoint_path:
        Optional path for persisted partial state. Written atomically
        after every completed replication; an existing compatible
        checkpoint is resumed (bit-identical results), an incompatible
        one raises ``ValueError``.
    workers:
        Number of replication executors. ``1`` (the default) runs the
        classic serial loop; ``> 1`` fans pending replications out over
        a ``ProcessPoolExecutor``. Because substreams are derived from
        the replication index, the aggregated result is bit-identical
        to a serial run; the trial callable must be picklable
        (module-level function or picklable callable object). Serial
        and parallel runs share checkpoints interchangeably.
    max_pool_restarts:
        How many times a crashed (or hung) worker pool may be rebuilt
        before the affected replications are recorded as failed.
    worker_hang_seconds:
        Optional per-replication hang threshold for ``workers > 1``: a
        replication exceeding it has its worker terminated, the pool
        rebuilt, and the replication resubmitted (counted against
        ``max_pool_restarts``). ``None`` disables hang detection.
    collect_timing:
        When True, the result's :attr:`RunResult.timing` carries a
        per-stage wall-clock breakdown (trial / kernel stages /
        checkpoint / total) gathered via
        :func:`repro.numerics.collect_stage_timings`.
    """

    root_seed: int = 0
    replications: int = 10
    confidence: float = 0.95
    max_trial_retries: int = 1
    time_budget_seconds: Optional[float] = None
    checkpoint_path: Optional[Union[str, Path]] = None
    workers: int = 1
    collect_timing: bool = False
    discard_corrupt_checkpoint: bool = False
    max_pool_restarts: int = 2
    worker_hang_seconds: Optional[float] = None
    _factory: RngFactory = field(init=False, repr=False)
    _pool_restarts: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.replications < 2:
            raise ValueError("need at least two replications for intervals")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.max_trial_retries < 0:
            raise ValueError("max_trial_retries must be non-negative")
        if self.time_budget_seconds is not None and self.time_budget_seconds <= 0:
            raise ValueError("time_budget_seconds must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be non-negative")
        if self.worker_hang_seconds is not None and self.worker_hang_seconds <= 0:
            raise ValueError("worker_hang_seconds must be positive")
        self._factory = RngFactory(self.root_seed)

    # ------------------------------------------------------------------
    # checkpointing

    def _config_fingerprint(self) -> Dict[str, Any]:
        # workers/collect_timing are deliberately absent: they change
        # how a run executes, never what it computes, so serial and
        # parallel runs resume each other's checkpoints.
        return {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "package_version": PACKAGE_VERSION,
            "root_seed": self.root_seed,
            "replications": self.replications,
            "confidence": self.confidence,
        }

    def _config_compatible(self, stored: Any) -> bool:
        """Whether a checkpoint config matches this runner.

        Accepts the current versioned fingerprint exactly, plus the
        pre-``schema_version`` format (bare seed/replications/confidence
        triple) as a one-time migration: a resumed legacy checkpoint is
        rewritten with the versioned fingerprint on its next save.
        """
        if not isinstance(stored, dict):
            return False
        if stored == self._config_fingerprint():
            return True
        if "schema_version" not in stored:
            legacy = {
                "root_seed": self.root_seed,
                "replications": self.replications,
                "confidence": self.confidence,
            }
            return stored == legacy
        return False

    def _discard_or_raise(self, path: Path, message: str) -> Dict:
        """Honor ``discard_corrupt_checkpoint``: delete and start fresh,
        or raise ``ValueError`` telling the caller about the flag."""
        if self.discard_corrupt_checkpoint:
            try:
                path.unlink()
            except OSError:
                pass  # already gone or unremovable; run fresh anyway
            return {}
        raise ValueError(
            f"{message} (pass discard_corrupt_checkpoint=True to delete "
            "the checkpoint and start over)"
        )

    def _load_checkpoint(self, label: str) -> Dict:
        """Completed-replication state for *label*, or an empty dict."""
        if self.checkpoint_path is None:
            return {}
        path = Path(self.checkpoint_path)
        if not path.exists():
            return {}
        try:
            state = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            # UnicodeDecodeError covers binary garbage at the checkpoint
            # path (e.g. a truncated .npz written by something else):
            # decode failures are corruption, not programming errors.
            return self._discard_or_raise(
                path, f"unreadable checkpoint {path}: {exc!r}"
            )
        if not self._config_compatible(state.get("config")):
            return self._discard_or_raise(
                path,
                f"checkpoint {path} was written by an incompatible runner "
                f"configuration {state.get('config')}; expected "
                f"{self._config_fingerprint()}",
            )
        return state.get("runs", {}).get(label, {})

    def _save_checkpoint(
        self,
        label: str,
        completed: Dict[int, Dict[str, float]],
        failures: List[ReplicationFailure],
        statuses_by_replication: Dict[int, Dict[str, int]],
    ) -> None:
        if self.checkpoint_path is None:
            return
        path = Path(self.checkpoint_path)
        state = {"config": self._config_fingerprint(), "runs": {}}
        if path.exists():
            try:
                prior = json.loads(path.read_text(encoding="utf-8"))
                # Same compatibility test as resume, so legacy-format
                # sweep state survives the fingerprint migration
                # instead of being silently dropped on the first save.
                if self._config_compatible(prior.get("config")):
                    state["runs"] = prior.get("runs", {})
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                pass  # rewrite a corrupt checkpoint from scratch
        state["runs"][label] = {
            "completed": {str(k): v for k, v in sorted(completed.items())},
            "failures": [
                {"replication": f.replication, "attempt": f.attempt, "error": f.error}
                for f in sorted(
                    set(failures), key=lambda f: (f.replication, f.attempt)
                )
            ],
            # Per-replication solver statuses persist so a resumed run
            # reports the same solver health as an uninterrupted one.
            "statuses": {
                str(k): v
                for k, v in sorted(statuses_by_replication.items())
                if v
            },
        }
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(state, indent=1, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # result store

    def _store_key(self, trial: Callable, label: str) -> Optional[str]:
        """Content address of a finished run, or ``None`` (uncacheable).

        The key covers the config fingerprint (seed, replications,
        confidence, schema and package versions), the checkpoint label,
        and an identity-plus-code fingerprint of the trial callable —
        editing the trial's source invalidates its cached runs the same
        way editing a solver invalidates its solves.
        """
        fingerprint = callable_fingerprint(trial)
        if fingerprint is None:
            return None
        try:
            return canonical_key(
                RUNNER_FN_ID,
                {
                    "config": self._config_fingerprint(),
                    "label": label,
                    "trial": fingerprint,
                },
            )
        except UnsupportedParameterError:
            return None

    # ------------------------------------------------------------------
    # execution

    def _over_budget(self, start: float) -> bool:
        return (
            self.time_budget_seconds is not None
            and time.monotonic() - start > self.time_budget_seconds  # repro: noqa[DET001]
        )

    def _save_checkpoint_timed(
        self,
        label: str,
        completed: Dict[int, Dict[str, float]],
        failures: List[ReplicationFailure],
        statuses_by_replication: Dict[int, Dict[str, int]],
        timing: Dict[str, float],
    ) -> None:
        """Persist state, attributing the cost to the ``checkpoint``
        stage when timing collection is on."""
        if not self.collect_timing:
            self._save_checkpoint(
                label, completed, failures, statuses_by_replication
            )
            return
        t0 = time.perf_counter()  # repro: noqa[DET001] — observability only
        self._save_checkpoint(label, completed, failures, statuses_by_replication)
        timing["checkpoint"] = (
            timing.get("checkpoint", 0.0)
            + time.perf_counter()  # repro: noqa[DET001] — observability only
            - t0
        )

    @staticmethod
    def _merge_metrics(
        k: int,
        metrics: Dict[str, float],
        completed: Dict[int, Dict[str, float]],
        expected_names: Optional[frozenset],
    ) -> frozenset:
        """Validate and record replication *k*'s metrics; returns the
        (possibly newly established) expected metric-name set."""
        if not metrics:
            raise ValueError(f"replication {k} returned no metrics")
        if expected_names is None:
            expected_names = frozenset(metrics)
        elif frozenset(metrics) != expected_names:
            raise ValueError(
                _metric_mismatch_message(k, list(metrics), list(expected_names))
            )
        completed[k] = {name: float(value) for name, value in metrics.items()}
        return expected_names

    def _run_serial(
        self,
        trial: Callable[[np.random.Generator], Dict[str, float]],
        label: str,
        start: float,
        pending: Sequence[int],
        completed: Dict[int, Dict[str, float]],
        failures: List[ReplicationFailure],
        statuses_by_replication: Dict[int, Dict[str, int]],
        timing: Dict[str, float],
        expected_names: Optional[frozenset],
    ) -> bool:
        """Classic in-process loop; returns ``budget_exhausted``."""
        for k in pending:
            if self._over_budget(start):
                return True
            _, metrics, fail_tuples, statuses, rep_timing = (
                _execute_replication_task(
                    trial, self.root_seed, k, self.max_trial_retries,
                    self.collect_timing,
                )
            )
            failures.extend(ReplicationFailure(*t) for t in fail_tuples)
            if metrics is None:
                self._save_checkpoint_timed(
                    label, completed, failures, statuses_by_replication, timing
                )
                continue
            statuses_by_replication[k] = statuses
            for stage_name, seconds in rep_timing.items():
                timing[stage_name] = timing.get(stage_name, 0.0) + seconds
            expected_names = self._merge_metrics(
                k, metrics, completed, expected_names
            )
            self._save_checkpoint_timed(
                label, completed, failures, statuses_by_replication, timing
            )
        return False

    def _run_parallel(
        self,
        trial: Callable[[np.random.Generator], Dict[str, float]],
        label: str,
        start: float,
        pending: Sequence[int],
        completed: Dict[int, Dict[str, float]],
        failures: List[ReplicationFailure],
        statuses_by_replication: Dict[int, Dict[str, int]],
        timing: Dict[str, float],
        expected_names: Optional[frozenset],
    ) -> bool:
        """Fan *pending* replications over worker processes.

        The parent is the only checkpoint writer: worker results are
        merged (and persisted) as tasks complete, in completion
        order — which is irrelevant to the final summaries because
        aggregation sorts by replication index.

        Supervision is delegated to :class:`SupervisedPool`: the
        wall-clock budget is consulted between submissions (not merely
        at completions), crashed workers are restarted and their
        replications resubmitted on the same substreams (bit-identical
        results), and — with ``worker_hang_seconds`` set — wedged
        workers are terminated. Returns ``budget_exhausted``.
        """
        try:
            pickle.dumps(trial)
        except Exception as exc:
            raise ValueError(
                f"workers={self.workers} requires a picklable trial "
                "(a module-level function or a picklable callable "
                f"object, not a lambda/closure): {exc!r}"
            ) from exc
        pool = SupervisedPool(
            min(self.workers, len(pending)) if pending else 1,
            max_restarts=self.max_pool_restarts,
            hang_seconds=self.worker_hang_seconds,
        )
        tasks = [
            (
                k,
                (
                    trial,
                    self.root_seed,
                    k,
                    self.max_trial_retries,
                    self.collect_timing,
                ),
            )
            for k in pending
        ]
        try:
            for k, outcome in pool.map_tasks(
                _execute_replication_task,
                tasks,
                should_stop=lambda: self._over_budget(start),
            ):
                if isinstance(outcome, Exception):
                    # Supervision gave up (restart budget spent) or the
                    # task machinery itself raised; record it like any
                    # other permanently failed replication.
                    failures.append(ReplicationFailure(k, 0, repr(outcome)))
                    self._save_checkpoint_timed(
                        label, completed, failures, statuses_by_replication,
                        timing,
                    )
                    continue
                _, metrics, fail_tuples, statuses, rep_timing = outcome
                failures.extend(ReplicationFailure(*t) for t in fail_tuples)
                if metrics is not None:
                    statuses_by_replication[k] = statuses
                    for stage_name, seconds in rep_timing.items():
                        timing[stage_name] = (
                            timing.get(stage_name, 0.0) + seconds
                        )
                    expected_names = self._merge_metrics(
                        k, metrics, completed, expected_names
                    )
                self._save_checkpoint_timed(
                    label, completed, failures, statuses_by_replication,
                    timing,
                )
        finally:
            self._pool_restarts += pool.restarts
            pool.shutdown()
        return pool.stopped_early

    def run(
        self,
        trial: Callable[[np.random.Generator], Dict[str, float]],
        *,
        label: str = "run",
    ) -> RunResult:
        """Execute *trial* once per replication and aggregate metrics.

        *trial* receives a fresh generator and returns a flat mapping of
        metric name to value; all replications must report the same
        metric names. *label* namespaces checkpoint state (used by
        :meth:`sweep` so swept points don't collide in one file).

        When a result store is active (:mod:`repro.store`), a finished
        run — every replication sampled, budget not exhausted — is
        cached whole, keyed by the config fingerprint, the label, and a
        fingerprint of the trial callable; a later identical run
        returns the stored aggregate without dispatching any
        replications. Trials the store cannot fingerprint bypass the
        cache and run normally. Checkpoints still govern resuming one
        *interrupted* run; the store shares *finished* runs.
        """
        store = active_store()
        store_key: Optional[str] = None
        if store is not None:
            store_key = self._store_key(trial, label)
            if store_key is None:
                record_cache_event(RUNNER_FN_ID, "bypass")
            else:
                found = store.fetch(store_key)
                if found is not None:
                    cached, entry = found
                    record_cache_event(RUNNER_FN_ID, "hit")
                    record_stage_seconds(
                        "store:saved_seconds", entry.compute_seconds
                    )
                    return RunResult.from_dict(cached)
                record_cache_event(RUNNER_FN_ID, "miss")

        # Wall-clock budgeting is the runner's job — the one sanctioned
        # use of real time in src/.
        start = time.monotonic()  # repro: noqa[DET001]
        self._pool_restarts = 0
        completed: Dict[int, Dict[str, float]] = {}
        failures: List[ReplicationFailure] = []
        statuses_by_replication: Dict[int, Dict[str, int]] = {}
        timing: Dict[str, float] = {}

        resumed_state = self._load_checkpoint(label)
        for key, metrics in resumed_state.get("completed", {}).items():
            completed[int(key)] = {m: float(v) for m, v in metrics.items()}
        for f in resumed_state.get("failures", []):
            failures.append(
                ReplicationFailure(f["replication"], f["attempt"], f["error"])
            )
        for key, counts in resumed_state.get("statuses", {}).items():
            statuses_by_replication[int(key)] = {
                status: int(count) for status, count in counts.items()
            }
        resumed = len(completed)

        expected_names: Optional[frozenset] = (
            frozenset(next(iter(completed.values()))) if completed else None
        )
        pending = [k for k in range(self.replications) if k not in completed]
        execute = self._run_parallel if self.workers > 1 else self._run_serial
        budget_exhausted = execute(
            trial, label, start, pending, completed, failures,
            statuses_by_replication, timing, expected_names,
        )

        if len(completed) < 2:
            raise RuntimeError(
                f"only {len(completed)} of {self.replications} replications "
                "produced samples (need at least 2 for intervals); "
                + (
                    f"last failure: {failures[-1].error}"
                    if failures
                    else "wall-clock budget exhausted"
                )
            )

        per_metric: Dict[str, List[float]] = {}
        for k in sorted(completed):
            for name, value in completed[k].items():
                per_metric.setdefault(name, []).append(value)
        summaries = {
            name: TrialSummary(
                name=name,
                samples=tuple(values),
                interval=mean_confidence_interval(
                    values, confidence=self.confidence
                ),
            )
            for name, values in per_metric.items()
        }
        succeeded = set(completed)
        permanently_failed = tuple(
            sorted(
                {f.replication for f in failures} - succeeded
            )
        )
        solver_statuses: Dict[str, int] = {}
        for counts in statuses_by_replication.values():
            for key, count in counts.items():
                solver_statuses[key] = solver_statuses.get(key, 0) + count
        elapsed = time.monotonic() - start  # repro: noqa[DET001]
        if self.collect_timing:
            timing["total"] = elapsed
        result = RunResult(
            summaries,
            # set(): a resumed replication that fails again deterministically
            # re-records the checkpointed failure; keep one copy.
            failures=tuple(
                sorted(set(failures), key=lambda f: (f.replication, f.attempt))
            ),
            failed_replications=permanently_failed,
            elapsed_seconds=elapsed,
            budget_exhausted=budget_exhausted,
            resumed_replications=resumed,
            solver_statuses=solver_statuses,
            timing=timing,
            pool_restarts=self._pool_restarts,
        )
        if (
            store is not None
            and store_key is not None
            and not budget_exhausted
            and not permanently_failed
        ):
            # Only complete runs are shareable: a truncated or partially
            # failed aggregate must not masquerade as the full result.
            try:
                store.put(
                    store_key,
                    result.to_dict(),
                    fn_id=RUNNER_FN_ID,
                    compute_seconds=elapsed,
                )
            except (OSError, SerializationError, StoreError):
                pass  # best-effort write; the computed result stands
        return result

    def sweep(
        self,
        trial: Callable[[np.random.Generator, float], Dict[str, float]],
        parameter_values: Sequence[float],
    ) -> Dict[float, RunResult]:
        """Run :meth:`run` for each value of a swept scalar parameter.

        Returns the full :class:`RunResult` (a ``TrialSummary`` mapping
        plus failure/budget/status metadata) per swept value, keyed by
        ``float(value)``. Checkpoint state is namespaced by
        :func:`sweep_checkpoint_label`, which is bijective with the
        float key, so near-equal or differently-typed swept values
        never collide or fragment.
        """
        out: Dict[float, RunResult] = {}
        for value in parameter_values:
            v = float(value)
            out[v] = self.run(
                _SweepTrial(trial, v), label=sweep_checkpoint_label(v)
            )
        return out
