"""Monte-Carlo experiment runner.

A thin orchestration layer: an :class:`ExperimentRunner` repeats a
trial function over independent seeded replications and aggregates the
results into :class:`TrialSummary` objects. Experiments E1-E9 are built
on it so that every number in EXPERIMENTS.md carries a replication count
and a confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from .rng import RngFactory
from .stats import ConfidenceInterval, mean_confidence_interval

__all__ = ["TrialSummary", "ExperimentRunner"]


@dataclass(frozen=True)
class TrialSummary:
    """Aggregate of one metric across replications."""

    name: str
    samples: tuple
    interval: ConfidenceInterval

    @property
    def mean(self) -> float:
        return self.interval.estimate

    @property
    def replications(self) -> int:
        return len(self.samples)


@dataclass
class ExperimentRunner:
    """Run a trial function across seeded replications.

    Parameters
    ----------
    root_seed:
        Root seed; replication ``k`` receives the independent stream
        ``trial/<k>``.
    replications:
        Number of independent repetitions.
    confidence:
        Confidence level for the aggregated intervals.
    """

    root_seed: int = 0
    replications: int = 10
    confidence: float = 0.95
    _factory: RngFactory = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.replications < 2:
            raise ValueError("need at least two replications for intervals")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        self._factory = RngFactory(self.root_seed)

    def run(
        self, trial: Callable[[np.random.Generator], Dict[str, float]]
    ) -> Dict[str, TrialSummary]:
        """Execute *trial* once per replication and aggregate metrics.

        *trial* receives a fresh generator and returns a flat mapping of
        metric name to value; all replications must report the same
        metric names.
        """
        per_metric: Dict[str, List[float]] = {}
        for k in range(self.replications):
            rng = self._factory.fresh(f"trial/{k}")
            result = trial(rng)
            if not result:
                raise ValueError("trial returned no metrics")
            if per_metric and set(result) != set(per_metric):
                raise ValueError(
                    "trial metric names changed between replications"
                )
            for name, value in result.items():
                per_metric.setdefault(name, []).append(float(value))
        return {
            name: TrialSummary(
                name=name,
                samples=tuple(values),
                interval=mean_confidence_interval(
                    values, confidence=self.confidence
                ),
            )
            for name, values in per_metric.items()
        }

    def sweep(
        self,
        trial: Callable[[np.random.Generator, float], Dict[str, float]],
        parameter_values: Sequence[float],
    ) -> Dict[float, Dict[str, TrialSummary]]:
        """Run :meth:`run` for each value of a swept scalar parameter."""
        out: Dict[float, Dict[str, TrialSummary]] = {}
        for value in parameter_values:
            def bound_trial(rng: np.random.Generator, _v=value) -> Dict[str, float]:
                return trial(rng, _v)

            out[float(value)] = self.run(bound_trial)
        return out
