"""Precision-targeted Monte-Carlo estimation.

Fixed replication counts either waste work (easy estimands) or deliver
sloppy intervals (hard ones). :func:`run_until_precise` keeps drawing
replications until the confidence interval's half-width falls below a
target (absolute or relative), with a hard cap — the standard
sequential-sampling pattern the experiment modules use for their
tightest claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..infotheory.probability import is_zero
from ..numerics import SolverStatus, record_status
from .rng import RngFactory
from .stats import ConfidenceInterval, RunningStats

__all__ = ["SequentialResult", "run_until_precise"]


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of a sequential Monte-Carlo run.

    Attributes
    ----------
    interval:
        The final confidence interval.
    replications:
        Samples drawn.
    reached_target:
        Whether the precision target was met before the cap.
    """

    interval: ConfidenceInterval
    replications: int
    reached_target: bool

    @property
    def estimate(self) -> float:
        return self.interval.estimate

    @property
    def status(self) -> SolverStatus:
        """Solver-status view of the run: ``converged`` when the
        precision target was met, ``max_iter`` when the replication cap
        stopped it first."""
        if self.reached_target:
            return SolverStatus.CONVERGED
        return SolverStatus.MAX_ITER


def run_until_precise(
    trial: Callable[[np.random.Generator], float],
    *,
    root_seed: int = 0,
    abs_half_width: Optional[float] = None,
    rel_half_width: Optional[float] = None,
    confidence: float = 0.95,
    min_replications: int = 8,
    max_replications: int = 10_000,
    batch: int = 8,
) -> SequentialResult:
    """Draw replications of *trial* until the CI is tight enough.

    At least one of *abs_half_width* / *rel_half_width* must be given
    (passing neither raises). When both are given, sampling continues
    until **both** criteria hold.

    Parameters
    ----------
    trial:
        Function of a fresh generator returning one scalar sample.
    abs_half_width:
        Stop when the CI half-width is below this.
    rel_half_width:
        Stop when half-width / |mean| is below this. A (numerically)
        zero running mean makes the relative criterion unsatisfiable;
        the run then falls back to the absolute criterion when one was
        given, and otherwise draws until *max_replications*.
    """
    if abs_half_width is None and rel_half_width is None:
        raise ValueError("need abs_half_width and/or rel_half_width")
    if min_replications < 2:
        raise ValueError("min_replications must be >= 2")
    if max_replications < min_replications:
        raise ValueError("max_replications < min_replications")
    if batch < 1:
        raise ValueError("batch must be >= 1")

    factory = RngFactory(root_seed)
    stats = RunningStats()
    count = 0

    def tight_enough(ci: ConfidenceInterval) -> bool:
        ok = True
        if abs_half_width is not None:
            ok = ok and ci.half_width <= abs_half_width
        if rel_half_width is not None:
            scale = abs(ci.estimate)
            if is_zero(scale):
                # A zero mean with shrinking absolute width: fall back
                # to the absolute criterion if present, else not tight.
                ok = ok and abs_half_width is not None
            else:
                ok = ok and ci.half_width / scale <= rel_half_width
        return ok

    while count < max_replications:
        take = min(batch, max_replications - count)
        for _ in range(take):
            rng = factory.fresh(f"seq/{count}")
            stats.push(float(trial(rng)))
            count += 1
        if count >= min_replications:
            ci = stats.confidence_interval(confidence=confidence)
            if tight_enough(ci):
                result = SequentialResult(
                    interval=ci, replications=count, reached_target=True
                )
                record_status("sequential_mc", result.status)
                return result
    ci = stats.confidence_interval(confidence=confidence)
    result = SequentialResult(
        interval=ci, replications=count, reached_target=tight_enough(ci)
    )
    record_status("sequential_mc", result.status)
    return result
