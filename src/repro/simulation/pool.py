"""Supervised process-pool execution: restarts, hang detection, budgets.

A bare ``ProcessPoolExecutor`` is fragile in exactly the ways a long
campaign (or a capacity-query service) gets hurt: a worker that dies
abruptly (OOM kill, segfault, ``SIGKILL``) poisons *every* outstanding
future with ``BrokenProcessPool``, and a worker that wedges holds its
slot forever. :class:`SupervisedPool` wraps the executor with the
supervision both consumers of this module need:

* **Broken-pool recovery** — when the pool breaks, the executor is
  rebuilt and the tasks that were in flight are resubmitted (they
  re-derive their RNG substreams from their arguments, so a resubmitted
  replication is bit-identical to one that never crashed). Restarts are
  counted and bounded; past the bound the affected tasks surface as
  :class:`PoolExhaustedError` results instead of an unhandled
  ``BrokenProcessPool`` traceback.
* **Hang detection** — with ``hang_seconds`` set, a task that exceeds
  it is declared hung: the worker processes are terminated, the pool is
  rebuilt, and the task is resubmitted (bounded by the same restart
  budget).
* **Incremental submission** — :meth:`map_tasks` keeps at most
  ``max_workers`` tasks in flight and consults ``should_stop`` *between
  submissions*, so a wall-clock budget stops a run before the next
  dispatch, not merely after the next completion.

Consumers: :class:`repro.simulation.runner.ExperimentRunner` (the
``workers > 1`` fan-out) and the :mod:`repro.service` worker tier.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from threading import Lock
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "PoolTaskError",
    "WorkerCrashedError",
    "WorkerHungError",
    "PoolExhaustedError",
    "SupervisedPool",
]


class PoolTaskError(RuntimeError):
    """Base class for supervised-pool task failures."""


class WorkerCrashedError(PoolTaskError):
    """The worker process executing a task died abruptly.

    The pool has already been rebuilt when this is raised; the caller
    decides whether to retry (the service's :class:`RetryPolicy` does,
    on a fresh attempt substream).
    """


class WorkerHungError(PoolTaskError):
    """A task exceeded its timeout; its worker was terminated.

    Raised by :meth:`SupervisedPool.run` after the hung worker
    processes have been killed and the pool rebuilt, so the next task
    starts on healthy workers.
    """


class PoolExhaustedError(PoolTaskError):
    """The restart budget is spent; the task could not be completed."""


def _terminate_workers(executor: ProcessPoolExecutor) -> None:
    """Forcibly terminate an executor's worker processes.

    Reaches into the executor because there is no public kill switch:
    ``shutdown`` alone would wait forever on a wedged worker. Best
    effort — a worker that already exited is skipped.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, AttributeError):
            pass


class SupervisedPool:
    """A restartable, hang-aware ``ProcessPoolExecutor`` wrapper.

    Parameters
    ----------
    max_workers:
        Worker-process count for each underlying executor.
    max_restarts:
        How many times the pool may be rebuilt (after a crash or a
        hang) before affected tasks fail with
        :class:`PoolExhaustedError`. ``None`` means unbounded — the
        right setting for a long-lived service, where the circuit
        breaker (not a restart cap) governs giving up.
    hang_seconds:
        Default per-task timeout for :meth:`map_tasks`; ``None``
        disables hang detection there. :meth:`run` takes an explicit
        per-call ``timeout`` instead.
    """

    def __init__(
        self,
        max_workers: int,
        *,
        max_restarts: Optional[int] = 2,
        hang_seconds: Optional[float] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_restarts is not None and max_restarts < 0:
            raise ValueError("max_restarts must be non-negative (or None)")
        if hang_seconds is not None and hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive (or None)")
        self.max_workers = max_workers
        self.max_restarts = max_restarts
        self.hang_seconds = hang_seconds
        self.restarts = 0
        self.stopped_early = False
        self._executor: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._lock = Lock()

    # ------------------------------------------------------------------
    # lifecycle

    def _ensure(self) -> Tuple[ProcessPoolExecutor, int]:
        """The live executor and its generation, creating it if needed."""
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers
                )
            return self._executor, self._generation

    def _restart(self, seen_generation: int, *, terminate: bool = False) -> bool:
        """Rebuild the pool if *seen_generation* is still current.

        Thread-safe: concurrent callers that observed the same broken
        generation trigger exactly one rebuild. Returns ``False`` when
        the restart budget is exhausted (the pool is torn down and the
        caller must fail its task).
        """
        with self._lock:
            if self._generation != seen_generation:
                return True  # another caller already rebuilt the pool
            if (
                self.max_restarts is not None
                and self.restarts >= self.max_restarts
            ):
                self._shutdown_locked(terminate=terminate)
                self._generation += 1
                return False
            if self._executor is not None:
                self._shutdown_locked(terminate=terminate)
            self._generation += 1
            self.restarts += 1
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
            return True

    def _shutdown_locked(self, *, terminate: bool) -> None:
        if self._executor is None:
            return
        if terminate:
            _terminate_workers(self._executor)
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None

    def shutdown(self) -> None:
        """Tear the pool down; safe to call repeatedly."""
        with self._lock:
            self._shutdown_locked(terminate=False)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # one-task API (the service's worker tier)

    def run(
        self, fn: Callable[..., Any], *args: Any, timeout: Optional[float] = None
    ) -> Any:
        """Execute ``fn(*args)`` on a worker; supervise the outcome.

        Raises
        ------
        WorkerCrashedError
            The worker died (e.g. ``SIGKILL``). The pool has been
            rebuilt; retrying is the caller's decision.
        WorkerHungError
            The task outlived *timeout*. The hung workers were
            terminated and the pool rebuilt.
        PoolExhaustedError
            The restart budget was already spent.
        Exception
            Whatever ``fn`` itself raised, re-raised unchanged.
        """
        executor, generation = self._ensure()
        try:
            future = executor.submit(fn, *args)
        except BrokenProcessPool as exc:
            if not self._restart(generation):
                raise PoolExhaustedError(
                    f"worker pool broken and restart budget spent: {exc!r}"
                )
            raise WorkerCrashedError(f"worker pool broken on submit: {exc!r}")
        except RuntimeError as exc:
            raise PoolExhaustedError(f"pool unavailable: {exc!r}")
        try:
            return future.result(timeout=timeout)
        except BrokenProcessPool as exc:
            if not self._restart(generation):
                raise PoolExhaustedError(
                    f"worker crashed and restart budget is spent: {exc!r}"
                )
            raise WorkerCrashedError(f"worker process died: {exc!r}")
        except FuturesTimeoutError:
            future.cancel()
            if not self._restart(generation, terminate=True):
                raise PoolExhaustedError(
                    f"worker hung beyond {timeout}s and restart budget is spent"
                )
            raise WorkerHungError(
                f"worker exceeded {timeout}s; terminated and pool rebuilt"
            )

    # ------------------------------------------------------------------
    # many-task API (the experiment runner's fan-out)

    def map_tasks(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple[Any, Tuple[Any, ...]]],
        *,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Iterator[Tuple[Any, Union[Any, PoolTaskError]]]:
        """Run ``fn(*args)`` for every ``(key, args)`` task; yield
        ``(key, outcome)`` in completion order.

        *outcome* is the task's return value, the exception the task
        raised, or a :class:`PoolTaskError` when supervision gave up on
        it (restart budget spent). Every task yields exactly once —
        none are silently lost.

        At most ``max_workers`` tasks are in flight; *should_stop* is
        consulted **before every submission** (the wall-clock-budget
        fix: a budget that expires mid-run prevents the next dispatch
        instead of only being noticed at the next completion). Once it
        returns True, unsubmitted tasks are dropped and
        :attr:`stopped_early` is set; already-running tasks are
        abandoned, mirroring the runner's historical budget semantics.

        Crashed pools are rebuilt and their in-flight tasks resubmitted
        (a resubmitted task re-derives its randomness from its
        arguments, so results stay bit-identical to an uninterrupted
        run). With ``hang_seconds`` set, tasks exceeding it are treated
        as crashed workers: terminate, rebuild, resubmit.
        """
        self.stopped_early = False
        pending: Deque[Tuple[Any, Tuple[Any, ...]]] = deque(tasks)
        inflight: Dict[Future, Tuple[Any, Tuple[Any, ...]]] = {}
        started_at: Dict[Future, float] = {}

        def fail_all(exc: PoolTaskError) -> Iterator[Tuple[Any, PoolTaskError]]:
            for future_key, _ in inflight.values():
                yield future_key, exc
            inflight.clear()
            started_at.clear()
            while pending:
                key, _ = pending.popleft()
                yield key, exc

        while pending or inflight:
            # Top up the in-flight window, checking the budget between
            # submissions.
            stopped = bool(should_stop()) if should_stop is not None else False
            while (
                not stopped and pending and len(inflight) < self.max_workers
            ):
                key, args = pending.popleft()
                try:
                    executor, generation = self._ensure()
                    future = executor.submit(fn, *args)
                except BrokenProcessPool:
                    pending.appendleft((key, args))
                    if not self._restart(generation):
                        yield from fail_all(
                            PoolExhaustedError(
                                "worker pool broken and restart budget spent"
                            )
                        )
                        return
                    continue
                inflight[future] = (key, args)
                # Observability-only clock read: hang detection never
                # influences task results.
                started_at[future] = time.monotonic()  # repro: noqa[DET001]
                if should_stop is not None:
                    stopped = bool(should_stop())
            if stopped and pending:
                self.stopped_early = True
                pending.clear()
            if not inflight:
                if stopped:
                    self.stopped_early = True
                continue

            done, _ = wait(
                set(inflight), timeout=self.hang_seconds,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                key, args = inflight.pop(future)
                started_at.pop(future, None)
                try:
                    yield key, future.result()
                except BrokenProcessPool:
                    pending.appendleft((key, args))
                    broken = True
                except Exception as exc:  # noqa: BLE001 — isolation
                    yield key, exc
            hung = False
            if not broken and self.hang_seconds is not None and inflight:
                # Per-task ages, not merely "no completion lately": a
                # steady trickle of finishing tasks must not mask one
                # wedged worker. Observability-only clock read.
                now = time.monotonic()  # repro: noqa[DET001]
                hung = any(
                    now - t0 >= self.hang_seconds
                    for t0 in started_at.values()
                )
            if broken or hung:
                # The pool is unusable (dead workers, or a wedged one
                # that must be terminated — which kills its siblings'
                # tasks too). Reclaim every in-flight task for
                # resubmission and rebuild once.
                _, generation = self._ensure()
                for future in list(inflight):
                    pending.appendleft(inflight.pop(future))
                    started_at.pop(future, None)
                if not self._restart(generation, terminate=hung):
                    reason = (
                        f"workers hung beyond {self.hang_seconds}s"
                        if hung
                        else "worker pool broken"
                    )
                    yield from fail_all(
                        PoolExhaustedError(
                            f"{reason} and restart budget spent"
                        )
                    )
                    return
