"""Empirical mutual-information estimation from samples.

Used by experiment E1 to demonstrate Theorem 1: the plug-in mutual
information between what a sender offered and what a receiver observed
over a simulated deletion-insertion channel stays below the matched
erasure bound ``N (1 - P_d)``, while the genie-aided erasure view
attains it.

The plug-in (maximum-likelihood) estimator is biased upward by roughly
``(|X|-1)(|Y|-1) / (2 n ln 2)`` bits; :func:`plugin_mutual_information`
optionally applies the Miller-Madow correction for that bias.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..infotheory.entropy import mutual_information_from_joint

__all__ = [
    "joint_histogram",
    "plugin_mutual_information",
    "miller_madow_correction",
    "per_position_mutual_information",
]


def joint_histogram(
    xs: Sequence[int], ys: Sequence[int], *, nx: int = 0, ny: int = 0
) -> np.ndarray:
    """Joint frequency table ``P_hat(x, y)`` from paired samples."""
    x = np.asarray(xs, dtype=np.int64)
    y = np.asarray(ys, dtype=np.int64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be matching 1-D sequences")
    if x.size == 0:
        raise ValueError("need at least one sample")
    if x.min() < 0 or y.min() < 0:
        raise ValueError("symbol indices must be non-negative")
    nx = max(nx, int(x.max()) + 1)
    ny = max(ny, int(y.max()) + 1)
    joint = np.zeros((nx, ny), dtype=float)
    np.add.at(joint, (x, y), 1.0)
    return joint / x.size


def miller_madow_correction(joint_counts_shape: Tuple[int, int], n: int) -> float:
    """First-order bias of the plug-in MI estimator, in bits."""
    nx, ny = joint_counts_shape
    if n <= 0:
        raise ValueError("sample size must be positive")
    return (nx - 1) * (ny - 1) / (2.0 * n * np.log(2.0))


def plugin_mutual_information(
    xs: Sequence[int],
    ys: Sequence[int],
    *,
    nx: int = 0,
    ny: int = 0,
    bias_correct: bool = False,
) -> float:
    """Plug-in estimate of ``I(X; Y)`` in bits from paired samples."""
    joint = joint_histogram(xs, ys, nx=nx, ny=ny)
    mi = mutual_information_from_joint(joint)
    if bias_correct:
        mi = max(0.0, mi - miller_madow_correction(joint.shape, len(xs)))
    return mi


def per_position_mutual_information(
    sent: np.ndarray, received: np.ndarray, *, alphabet_size: int
) -> float:
    """Naive per-position MI between sent and received streams.

    The streams are truncated to the shorter length and paired position
    by position — exactly what a receiver without synchronization would
    do. Deletions and insertions shift the alignment, so this quantity
    collapses quickly as ``P_d``/``P_i`` grow, illustrating why the
    non-synchronous channel is so much worse than its erasure twin.
    """
    n = min(len(sent), len(received))
    if n == 0:
        return 0.0
    return plugin_mutual_information(
        np.asarray(sent[:n]),
        np.asarray(received[:n]),
        nx=alphabet_size,
        ny=alphabet_size,
    )
