"""Monte-Carlo simulation framework: seeded RNG streams, statistics,
empirical mutual information, and an experiment runner."""

from .convergence import SequentialResult, run_until_precise
from .mutual_information import (
    joint_histogram,
    miller_madow_correction,
    per_position_mutual_information,
    plugin_mutual_information,
)
from .pool import (
    PoolExhaustedError,
    PoolTaskError,
    SupervisedPool,
    WorkerCrashedError,
    WorkerHungError,
)
from .rng import RngFactory, make_rng
from .runner import (
    ExperimentRunner,
    ReplicationFailure,
    RunResult,
    TrialSummary,
    sweep_checkpoint_label,
)
from .stats import (
    ConfidenceInterval,
    RunningStats,
    mean_confidence_interval,
    wilson_interval,
)

__all__ = [
    "SequentialResult",
    "run_until_precise",
    "joint_histogram",
    "miller_madow_correction",
    "per_position_mutual_information",
    "plugin_mutual_information",
    "PoolTaskError",
    "WorkerCrashedError",
    "WorkerHungError",
    "PoolExhaustedError",
    "SupervisedPool",
    "RngFactory",
    "make_rng",
    "ExperimentRunner",
    "ReplicationFailure",
    "RunResult",
    "TrialSummary",
    "sweep_checkpoint_label",
    "ConfidenceInterval",
    "RunningStats",
    "mean_confidence_interval",
    "wilson_interval",
]
