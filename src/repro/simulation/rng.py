"""Deterministic random-stream management.

Every stochastic component in this package takes an explicit
``numpy.random.Generator``. This module provides the conventions for
creating them: a root seed fans out into named, independent substreams
via ``SeedSequence.spawn`` semantics so that experiments are
reproducible bit-for-bit and adding a new consumer never perturbs the
streams of existing ones.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

__all__ = ["make_rng", "RngFactory"]

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a ``numpy.random.Generator``.

    Accepts an int, a ``SeedSequence``, an existing ``Generator``
    (returned unchanged), or None (OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngFactory:
    """Fan a root seed out into named independent substreams.

    >>> factory = RngFactory(42)
    >>> rng_channel = factory.stream("channel")
    >>> rng_protocol = factory.stream("protocol")

    The same (root seed, name) pair always yields the same stream,
    regardless of the order in which streams are requested.
    """

    def __init__(self, root_seed: int = 0) -> None:
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError("root_seed must be an integer")
        self.root_seed = int(root_seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for substream *name* (cached)."""
        if not name:
            raise ValueError("stream name must be non-empty")
        if name not in self._cache:
            # Derive a child seed deterministically from (root, name):
            # hash the name into entropy words appended to the root.
            words = [self.root_seed & 0xFFFFFFFF, (self.root_seed >> 32) & 0xFFFFFFFF]
            words.extend(byte for byte in name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=words)
            self._cache[name] = np.random.default_rng(seq)
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Like :meth:`stream` but always restarts the substream."""
        self._cache.pop(name, None)
        return self.stream(name)
