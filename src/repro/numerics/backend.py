"""Kernel-backend dispatch for the batched solver kernels.

The batched Blahut-Arimoto kernels (:mod:`repro.infotheory.kernels`)
spend essentially all their time in one primitive: given a stack of
input distributions ``p`` of shape ``(k, nx)`` and a channel stack
``w`` / ``log_w`` of shape ``(k, nx, ny)``, compute the per-input
divergence

    d(k, x) = sum_y W_k(y|x) * (log2 W_k(y|x) - log2 q_k(y)),
    q_k = p_k @ W_k

for every channel in the stack at once. This module puts that primitive
behind a tiny registry of :class:`KernelBackend` objects so faster
implementations (a numba JIT, a GPU array library) can drop in without
touching any solver or sweep code:

* the ``numpy`` backend (einsum/broadcast) is always registered and is
  the default;
* third-party backends register through the ``repro.kernel_backends``
  entry-point group — each entry point is a zero-argument callable
  returning a :class:`KernelBackend` (or ``None`` to decline, e.g.
  when its JIT dependency is not installed). The bundled
  :mod:`repro.numerics.backend_numba` declines cleanly when numba is
  absent, so the optional dependency never breaks an import;
* selection order is: explicit ``backend=`` argument, innermost
  :func:`use_backend` override, the ``REPRO_KERNEL_BACKEND``
  environment variable, then ``numpy``.

Backend choice is *reported*, never silent: the batched kernels stamp
the resolved backend's name into their
:class:`repro.numerics.SolverDiagnostics` notes, and the store-backed
sweeps put it in their cache keys — two backends may differ in the last
ulp, so their results must never masquerade as one another.

Scalar solvers memoized with ``@cached_solve`` deliberately do **not**
dispatch through this module: reading the environment inside a cached
solve would violate the purity contract enforced by lint rule GRAPH001.
They pin the numpy primitive explicitly and stay bit-exact references.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from .safeops import safe_log2

__all__ = [
    "KernelBackend",
    "numpy_step",
    "register_backend",
    "available_backends",
    "get_backend",
    "use_backend",
    "BACKEND_ENV_VAR",
    "ENTRY_POINT_GROUP",
]

#: Environment variable naming the default backend for batched kernels.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Entry-point group third-party backends register under.
ENTRY_POINT_GROUP = "repro.kernel_backends"

#: The batched divergence primitive: ``(p, w, log_w) -> d`` with shapes
#: ``(k, nx), (k, nx, ny), (k, nx, ny) -> (k, nx)``.
StepFn = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def numpy_step(p: np.ndarray, w: np.ndarray, log_w: np.ndarray) -> np.ndarray:
    """Reference einsum implementation of the batched divergence step.

    ``q_k = p_k @ W_k`` then ``d(k, x) = sum_y W (log_w - log2 q)`` —
    the O(k * nx * ny) inner loop of every batched kernel. ``log2`` of
    ``q`` is floored at the module's usual :data:`~.safeops.LOG_FLOOR`
    via :func:`~.safeops.safe_log2` so an underflowed output symbol
    produces a large-but-finite divergence instead of ``inf``.
    """
    q = np.einsum("kx,kxy->ky", p, w)
    log_q = safe_log2(q)
    return np.einsum("kxy,kxy->kx", w, log_w - log_q[:, None, :])


@dataclass(frozen=True)
class KernelBackend:
    """One registered implementation of the batched divergence step.

    Attributes
    ----------
    name:
        Registry key (``"numpy"``, ``"numba"``, ...); also what the
        kernels report in diagnostics and sweep cache keys.
    step:
        The :data:`StepFn` primitive.
    description:
        One line for ``available_backends`` listings and docs.
    """

    name: str
    step: StepFn = field(repr=False)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("backend name must be non-empty")


_REGISTRY: Dict[str, KernelBackend] = {}
_OVERRIDES: List[KernelBackend] = []
_ENTRY_POINTS_LOADED: List[bool] = []


def register_backend(backend: KernelBackend, *, replace: bool = False) -> None:
    """Add *backend* to the registry.

    Re-registering an existing name is an error unless ``replace=True``
    — a silent clobber would let a plugin hijack ``"numpy"``.
    """
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"kernel backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend


def _load_entry_points() -> None:
    """Load third-party backends once per process (best-effort)."""
    if _ENTRY_POINTS_LOADED:
        return
    _ENTRY_POINTS_LOADED.append(True)
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py<3.8 has no importlib.metadata
        return
    try:
        entries = metadata.entry_points()
        if hasattr(entries, "select"):  # py>=3.10
            group = entries.select(group=ENTRY_POINT_GROUP)
        else:  # pragma: no cover - py3.9 mapping API
            group = entries.get(ENTRY_POINT_GROUP, ())
    except Exception:  # pragma: no cover - malformed metadata
        return
    for entry in group:
        try:
            backend = entry.load()()
        except Exception:  # noqa: BLE001 - a broken plugin must not break import
            continue
        if backend is None:  # the plugin declined (missing optional dep)
            continue
        if backend.name not in _REGISTRY:
            register_backend(backend)
    if "numba" not in _REGISTRY:
        # The bundled numba backend's entry point lives in dist
        # metadata, invisible when running from a source tree
        # (PYTHONPATH=src); fall back to loading it directly. It
        # declines cleanly when numba is absent.
        try:
            from .backend_numba import load_backend
        except Exception:  # pragma: no cover - defensive
            return
        backend = load_backend()
        if backend is not None:
            register_backend(backend)


def available_backends() -> Tuple[str, ...]:
    """Names of every usable backend, ``numpy`` first."""
    _load_entry_points()
    names = sorted(_REGISTRY)
    names.remove("numpy")
    return ("numpy", *names)


def get_backend(
    name: Optional[Union[str, KernelBackend]] = None,
) -> KernelBackend:
    """Resolve the backend the batched kernels should use.

    Resolution order: an explicit *name* (or an already-constructed
    :class:`KernelBackend`, passed through untouched), the innermost
    :func:`use_backend` override, the ``REPRO_KERNEL_BACKEND``
    environment variable, then the ``numpy`` default. An unknown name
    raises ``ValueError`` listing what is registered — a typo'd env var
    must fail loudly, not silently fall back to a slower backend.
    """
    if isinstance(name, KernelBackend):
        return name
    _load_entry_points()
    if name is None and _OVERRIDES:
        return _OVERRIDES[-1]
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or "numpy"
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return backend


@contextmanager
def use_backend(
    name: Union[str, KernelBackend],
) -> Iterator[KernelBackend]:
    """Scoped backend override: batched kernels inside the block use it.

    Takes precedence over the environment variable, nests (innermost
    wins), and — being an explicit in-process handle rather than
    ambient state — is the recommended way for tests and experiments to
    pin a backend.
    """
    backend = get_backend(name)
    _OVERRIDES.append(backend)
    try:
        yield backend
    finally:
        _OVERRIDES.pop()


register_backend(
    KernelBackend(
        name="numpy",
        step=numpy_step,
        description="pure-numpy einsum/broadcast reference (always available)",
    )
)
