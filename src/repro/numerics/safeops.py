"""Log-domain primitives with explicit underflow floors.

Every capacity solver in this package manipulates probabilities that
legitimately reach 0 (deleted symbols, degenerate transition rows) or
underflow (forward-backward likelihoods over long frames). The ad-hoc
idiom ``np.log(np.maximum(x, 1e-300))`` was scattered across the
solvers with inconsistent floors; these helpers centralize it so the
floor is one auditable constant, the guarded call sites are lintable
(rule NUM001), and log-domain accumulation (``logsumexp2``,
``normalized_exp2``) is shared instead of re-derived per solver.

All functions accept scalars or arrays and preserve shape.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = [
    "LOG_FLOOR",
    "safe_log",
    "safe_log2",
    "masked_log2",
    "logsumexp2",
    "normalized_exp",
    "normalized_exp2",
]

#: Default probability floor before taking a logarithm. Chosen just
#: above the smallest positive normal double so ``log`` of the floored
#: value is a large-but-finite number (~ -996 in bits), never ``-inf``.
LOG_FLOOR = 1e-300

ArrayLike = Union[float, np.ndarray]


def _floored(x: ArrayLike, floor: float, name: str) -> np.ndarray:
    if floor <= 0:
        raise ValueError(f"{name} floor must be positive, got {floor}")
    arr = np.asarray(x, dtype=float)
    if np.any(arr < 0):
        raise ValueError(f"{name} argument must be non-negative")
    return np.maximum(arr, floor)


def safe_log(x: ArrayLike, *, floor: float = LOG_FLOOR) -> np.ndarray:
    """Natural log of a non-negative array, floored at *floor*.

    Replaces the ``np.log(np.maximum(x, eps))`` /
    ``np.log(np.clip(x, eps, None))`` idiom: zeros and underflowed
    values map to ``log(floor)`` (finite), never ``-inf`` or ``nan``.
    Negative inputs raise ``ValueError`` — a negative "probability" is
    a bug upstream, not something to floor away.
    """
    return np.log(_floored(x, floor, "safe_log"))


def safe_log2(x: ArrayLike, *, floor: float = LOG_FLOOR) -> np.ndarray:
    """Base-2 log of a non-negative array, floored at *floor*.

    The bits-domain twin of :func:`safe_log`; the workhorse of the
    Blahut-Arimoto and timed-DMC solvers.
    """
    return np.log2(_floored(x, floor, "safe_log2"))


def masked_log2(x: ArrayLike, *, floor: float = LOG_FLOOR) -> np.ndarray:
    """Base-2 log on the positive entries of *x*, exact ``0.0`` elsewhere.

    The Blahut-Arimoto family needs ``log2 W`` only where ``W > 0`` —
    structural zeros never contribute to ``sum_y W log2(W/q)`` because
    the ``W`` factor kills the term — so the log of a zero entry is
    *meaningless*, not merely small. This helper makes that explicit:
    positive entries get :func:`safe_log2` (subnormals still pass
    through the *floor*), zeros map to exactly ``0.0``, and negative
    entries raise like every other ``safe_*`` primitive. It replaces
    the ``np.where(w > 0, safe_log2(w), 0.0)`` idiom previously
    duplicated across the scalar solvers, and is the form the batched
    kernels precompute once per ``(k, nx, ny)`` stack.
    """
    arr = np.asarray(x, dtype=float)
    return np.where(arr > 0, np.log2(_floored(arr, floor, "masked_log2")), 0.0)


def logsumexp2(
    a: ArrayLike, *, axis: Optional[int] = None
) -> Union[float, np.ndarray]:
    """``log2(sum(2**a))`` computed without overflow (max-shifted).

    Entries of ``-inf`` (exactly-zero mass) are handled: an all-``-inf``
    reduction returns ``-inf`` rather than ``nan``.
    """
    arr = np.asarray(a, dtype=float)
    if arr.size == 0:
        raise ValueError("logsumexp2 of an empty array")
    hi = np.max(arr, axis=axis, keepdims=True)
    # An all--inf slice would produce -inf - -inf = nan; shift by 0 there.
    shift = np.where(np.isfinite(hi), hi, 0.0)
    total = np.sum(np.exp2(arr - shift), axis=axis, keepdims=True)
    with np.errstate(divide="ignore"):
        # log2(0) for an all--inf slice is replaced by -inf just below.
        out = shift + np.log2(total)
    out = np.where(np.isfinite(hi), out, hi)
    if axis is None:
        return float(out.reshape(()))
    return np.squeeze(out, axis=axis)


def _normalized(shifted: np.ndarray, axis: int) -> np.ndarray:
    total = shifted.sum(axis=axis, keepdims=True)
    # All-zero mass (every logit -inf, or exp underflowed): fall back to
    # uniform instead of dividing by zero — the caller's guard sees the
    # stall/abort through its residuals, not through NaN poisoning.
    n = shifted.shape[axis]
    return np.where(total > 0, shifted / np.where(total > 0, total, 1.0), 1.0 / n)


def normalized_exp2(logits: ArrayLike, *, axis: int = -1) -> np.ndarray:
    """Softmax in base 2: ``2**logits`` normalized to sum to 1.

    Subtracts the per-slice max before exponentiating (the standard
    stabilization) and degrades an all-``-inf`` slice to the uniform
    distribution instead of ``nan``.
    """
    arr = np.asarray(logits, dtype=float)
    hi = np.max(arr, axis=axis, keepdims=True)
    shift = np.where(np.isfinite(hi), hi, 0.0)
    return _normalized(np.exp2(arr - shift), axis)


def normalized_exp(logits: ArrayLike, *, axis: int = -1) -> np.ndarray:
    """Natural-base softmax: ``exp(logits)`` normalized to sum to 1.

    Same stabilization and all-``-inf`` fallback as
    :func:`normalized_exp2`.
    """
    arr = np.asarray(logits, dtype=float)
    hi = np.max(arr, axis=axis, keepdims=True)
    shift = np.where(np.isfinite(hi), hi, 0.0)
    return _normalized(np.exp(arr - shift), axis)
