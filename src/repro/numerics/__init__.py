"""Solver robustness layer: guarded numerics for extreme channel regimes.

The paper's bounds are most interesting exactly where naive numerics
break down — ``P_d -> 1``, ``P_i -> 1 - P_d``, near-zero transition
probabilities. This package is the shared substrate that keeps the
solvers honest there:

* :mod:`.safeops` — log-domain primitives (``safe_log2``,
  ``logsumexp2``, ``normalized_exp2``) replacing per-solver
  ``np.log(np.maximum(x, 1e-300))`` patterns (lint rule NUM001);
* :mod:`.guard` — :class:`IterationGuard` with NaN/divergence/stall
  detection, the :class:`SolverStatus` taxonomy
  (``converged | max_iter | stalled | diverged | aborted``),
  :class:`SolverDiagnostics`, and the status collector the experiment
  runner uses to surface solver health;
* :mod:`.degrade` — :func:`degrade_gracefully`: retry with stabilizing
  adjustments, else return best-so-far with an honest status;
* :mod:`.bracketing` — root bracketing that fails as a
  diagnostics-carrying :class:`BracketingError` instead of a bare
  ``RuntimeError``;
* :mod:`.backend` — the kernel-backend registry for the batched
  solver kernels (:func:`get_backend`, :func:`use_backend`, the
  ``REPRO_KERNEL_BACKEND`` environment variable, and the
  ``repro.kernel_backends`` entry-point group for optional JIT
  backends such as :mod:`.backend_numba`);
* :mod:`.profiling` — opt-in per-stage wall-clock attribution
  (:func:`stage`, :func:`collect_stage_timings`) so benchmarks can
  split campaign time into lattice vs. solver vs. orchestration
  (see ``docs/performance.md``), plus the result-store cache-event
  collector (:func:`collect_store_events`) fed by
  :mod:`repro.store`'s hit/miss/bypass counters.

See ``docs/numerics.md`` for guard semantics and how to read
diagnostics.
"""

from .backend import (
    BACKEND_ENV_VAR,
    KernelBackend,
    available_backends,
    get_backend,
    numpy_step,
    register_backend,
    use_backend,
)
from .bracketing import (
    BracketDiagnostics,
    BracketingError,
    expand_bracket,
    guarded_brentq,
)
from .degrade import GuardedValue, degrade_gracefully
from .guard import (
    IterationGuard,
    SolverDiagnostics,
    SolverStatus,
    collect_solver_statuses,
    record_status,
)
from .profiling import (
    collect_stage_timings,
    collect_store_events,
    record_stage_seconds,
    record_store_event,
    stage,
    timing_active,
)
from .safeops import (
    LOG_FLOOR,
    logsumexp2,
    masked_log2,
    normalized_exp,
    normalized_exp2,
    safe_log,
    safe_log2,
)

__all__ = [
    "LOG_FLOOR",
    "safe_log",
    "safe_log2",
    "masked_log2",
    "logsumexp2",
    "normalized_exp",
    "normalized_exp2",
    "SolverStatus",
    "SolverDiagnostics",
    "IterationGuard",
    "collect_solver_statuses",
    "record_status",
    "GuardedValue",
    "degrade_gracefully",
    "collect_stage_timings",
    "collect_store_events",
    "record_stage_seconds",
    "record_store_event",
    "stage",
    "timing_active",
    "BracketDiagnostics",
    "BracketingError",
    "expand_bracket",
    "guarded_brentq",
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "numpy_step",
    "register_backend",
    "use_backend",
]
