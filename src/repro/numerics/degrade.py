"""Graceful degradation: retry a guarded solve, return best-so-far.

The paper's interesting regimes (``P_d -> 1``, ``P_i -> 1 - P_d``) are
exactly where iterative capacity solvers stall or oscillate. The policy
here is uniform across solvers: try the nominal configuration; on a
non-converged status retry with the solver's own stabilizing
adjustments (damping, tighter smoothing, looser tolerance); if nothing
converges, return the *best attempt* — a finite estimate carrying an
honest non-``converged`` :class:`~repro.numerics.guard.SolverStatus` —
instead of raising deep inside an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Optional, Sequence, Tuple

import numpy as np

from .guard import SolverDiagnostics, SolverStatus, record_status

__all__ = ["GuardedValue", "degrade_gracefully"]


@dataclass(frozen=True)
class GuardedValue:
    """A scalar solver output bundled with its status and diagnostics.

    The minimal shape :func:`degrade_gracefully` needs; richer solver
    results (e.g. :class:`repro.infotheory.BlahutArimotoResult`) carry
    the same ``status`` / ``diagnostics`` fields and work unchanged.
    """

    value: float
    status: SolverStatus
    diagnostics: Optional[SolverDiagnostics] = None

    @property
    def ok(self) -> bool:
        """True only when the solve converged."""
        return self.status is SolverStatus.CONVERGED


def _default_rank(attempt: Any) -> float:
    diag = getattr(attempt, "diagnostics", None)
    if diag is not None and np.isfinite(diag.best_residual):
        return float(diag.best_residual)
    return float("inf")


def degrade_gracefully(
    solve: Callable[..., Any],
    adjustments: Sequence[Mapping[str, Any]] = (),
    *,
    solver: str = "solver",
    accept: Tuple[SolverStatus, ...] = (SolverStatus.CONVERGED,),
    rank: Callable[[Any], float] = _default_rank,
) -> Any:
    """Run *solve*, retrying with *adjustments* until a status in
    *accept*; return the best attempt either way.

    Parameters
    ----------
    solve:
        Callable returning a result object with a ``status`` attribute
        (:class:`SolverStatus`) and, ideally, ``diagnostics``. Called
        first with no arguments, then once per adjustment mapping as
        keyword arguments.
    adjustments:
        Escalating stabilization settings, e.g.
        ``({"damping": 0.5}, {"damping": 0.9, "tol": 1e-8})``.
    solver:
        Name under which the final status is recorded for the
        experiment-runner status collector.
    accept:
        Statuses that stop the retry ladder immediately.
    rank:
        Scores an attempt (lower is better) when *no* attempt reached
        an accepted status; defaults to the diagnostics' best residual.

    Returns
    -------
    The first accepted attempt, or the best-ranked attempt of all
    tried. When the result carries ``diagnostics``, its ``retries``
    field is set to the number of extra attempts made before this one
    was chosen.
    """
    attempts = [solve()]
    for adjust in adjustments:
        if attempts[-1].status in accept:
            break
        attempts.append(solve(**dict(adjust)))

    chosen = None
    for attempt in attempts:
        if attempt.status in accept:
            chosen = attempt
            break
    if chosen is None:
        chosen = min(attempts, key=rank)
    retries = len(attempts) - 1
    diag = getattr(chosen, "diagnostics", None)
    if retries and diag is not None:
        chosen = replace(chosen, diagnostics=replace(diag, retries=retries))
    record_status(solver, chosen.status)
    return chosen
