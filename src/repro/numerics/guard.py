"""Iteration guards: NaN/divergence/stall detection for iterative solvers.

An :class:`IterationGuard` wraps the inner loop of an iterative solver
(Blahut-Arimoto, Dinkelbach, belief propagation, sequential Monte
Carlo). The solver reports a residual each iteration; the guard
classifies the trajectory into a :class:`SolverStatus`, keeps the
best-so-far iterate, and assembles :class:`SolverDiagnostics` — so a
solve that stalls in an extreme channel regime returns an honest
partial answer instead of spinning, NaN-poisoning, or crashing an
experiment campaign hours in.

The module also hosts the *status collector*: experiment code (the
:class:`repro.simulation.runner.ExperimentRunner`) opens a collector
around each trial, guarded solvers call :func:`record_status`, and the
runner surfaces the counts — a stalled solve inside a 10k-replication
sweep becomes visible in the run result rather than silent.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "SolverStatus",
    "SolverDiagnostics",
    "IterationGuard",
    "collect_solver_statuses",
    "record_status",
]


class SolverStatus(str, Enum):
    """Terminal classification of an iterative solve.

    ``converged``
        The stopping criterion (residual <= tol) was met.
    ``max_iter``
        The iteration cap was reached while still making progress.
    ``stalled``
        No new best residual within the stall window — the iteration is
        cycling or flat (oscillation shows up here: an oscillating
        residual never improves its best).
    ``diverged``
        The residual grew far beyond its best value.
    ``aborted``
        A non-finite residual or iterate appeared; the best earlier
        finite iterate is returned instead.
    """

    CONVERGED = "converged"
    MAX_ITER = "max_iter"
    STALLED = "stalled"
    DIVERGED = "diverged"
    ABORTED = "aborted"

    @property
    def ok(self) -> bool:
        """True only for :attr:`CONVERGED`."""
        return self is SolverStatus.CONVERGED


@dataclass(frozen=True)
class SolverDiagnostics:
    """What a guarded solve actually did, attached to its result.

    Attributes
    ----------
    solver:
        Name of the guarded solver (``"blahut_arimoto"``, ...).
    status:
        Terminal :class:`SolverStatus`.
    iterations:
        Iterations executed before termination.
    residual_tail:
        The last few residuals (most recent last) — enough to see a
        stall plateau, an oscillation, or a divergence ramp.
    best_residual:
        Smallest finite residual observed.
    best_iteration:
        Iteration (1-based) at which ``best_residual`` occurred;
        0 when no finite residual was ever seen.
    retries:
        Degradation retries consumed before this attempt was accepted
        (filled in by :func:`repro.numerics.degrade_gracefully`).
    notes:
        Free-form annotations (e.g. which degradation adjustments ran).
    """

    solver: str
    status: SolverStatus
    iterations: int
    residual_tail: Tuple[float, ...]
    best_residual: float
    best_iteration: int
    retries: int = 0
    notes: Tuple[str, ...] = ()

    def describe(self) -> str:
        """One-line human-readable summary."""
        tail = ", ".join(f"{r:.3g}" for r in self.residual_tail)
        return (
            f"{self.solver}: {self.status.value} after "
            f"{self.iterations} iterations (best residual "
            f"{self.best_residual:.3g} @ {self.best_iteration}, "
            f"retries {self.retries}, tail [{tail}])"
        )


class IterationGuard:
    """Watchdog for one iterative solve.

    Call :meth:`update` once per iteration with the current residual
    (and optionally the current iterate); it returns a terminal
    :class:`SolverStatus` as soon as the trajectory is classifiable,
    else ``None``. The best-so-far iterate (lowest finite residual) is
    retained in :attr:`best_value` so callers can return it on any
    non-converged exit.

    Parameters
    ----------
    solver:
        Name used in diagnostics and status recording.
    max_iter:
        Iteration cap; :meth:`update` returns ``max_iter`` at the cap.
    tol:
        Convergence threshold on the residual.
    stall_window:
        Iterations without a new best residual before declaring a
        stall. ``None`` disables stall detection.
    divergence_factor:
        Residual growing beyond ``divergence_factor * best_residual``
        (after the best is established) is a divergence. ``None``
        disables divergence detection.
    tail_length:
        How many trailing residuals the diagnostics keep.
    """

    def __init__(
        self,
        solver: str,
        *,
        max_iter: int,
        tol: float = 0.0,
        stall_window: Optional[int] = 100,
        divergence_factor: Optional[float] = 1e6,
        tail_length: int = 8,
    ) -> None:
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if tol < 0:
            raise ValueError("tol must be non-negative")
        if stall_window is not None and stall_window < 1:
            raise ValueError("stall_window must be >= 1 (or None)")
        if divergence_factor is not None and divergence_factor <= 1:
            raise ValueError("divergence_factor must be > 1 (or None)")
        if tail_length < 1:
            raise ValueError("tail_length must be >= 1")
        self.solver = solver
        self.max_iter = max_iter
        self.tol = tol
        self.stall_window = stall_window
        self.divergence_factor = divergence_factor
        self.iterations = 0
        self.status: Optional[SolverStatus] = None
        self.best_residual = float("inf")
        self.best_iteration = 0
        self.best_value: Any = None
        self._tail: Deque[float] = deque(maxlen=tail_length)

    # ------------------------------------------------------------------
    def update(
        self, residual: float, value: Any = None
    ) -> Optional[SolverStatus]:
        """Record one iteration; return a terminal status or ``None``.

        *residual* is the solver's convergence measure (duality gap,
        parameter delta, unsatisfied-check count...). *value* is the
        current iterate; when the residual is finite and a new best, it
        is retained as :attr:`best_value`.
        """
        self.iterations += 1
        residual = float(residual)
        self._tail.append(residual)
        if not np.isfinite(residual):
            return self._finish(SolverStatus.ABORTED)
        if residual < self.best_residual:
            self.best_residual = residual
            self.best_iteration = self.iterations
            if value is not None:
                self.best_value = value
        if residual <= self.tol:
            if value is not None:
                self.best_value = value
            return self._finish(SolverStatus.CONVERGED)
        if (
            self.divergence_factor is not None
            and np.isfinite(self.best_residual)
            and residual > self.divergence_factor * max(self.best_residual, 1e-30)
        ):
            return self._finish(SolverStatus.DIVERGED)
        if (
            self.stall_window is not None
            and self.iterations - self.best_iteration >= self.stall_window
        ):
            return self._finish(SolverStatus.STALLED)
        if self.iterations >= self.max_iter:
            return self._finish(SolverStatus.MAX_ITER)
        return None

    def abort(self) -> SolverStatus:
        """Force an ``aborted`` status (non-finite iterate detected by
        the caller outside the residual path)."""
        return self._finish(SolverStatus.ABORTED)

    def _finish(self, status: SolverStatus) -> SolverStatus:
        self.status = status
        return status

    # ------------------------------------------------------------------
    def diagnostics(self, *, notes: Tuple[str, ...] = ()) -> SolverDiagnostics:
        """Freeze the guard's observations into diagnostics."""
        status = self.status if self.status is not None else SolverStatus.MAX_ITER
        return SolverDiagnostics(
            solver=self.solver,
            status=status,
            iterations=self.iterations,
            residual_tail=tuple(self._tail),
            best_residual=self.best_residual,
            best_iteration=self.best_iteration,
            notes=notes,
        )


# ----------------------------------------------------------------------
# Status collection: guarded solvers report here; the experiment runner
# aggregates per-trial counts so stalled/aborted solves surface in run
# results instead of vanishing inside a replication.

_COLLECTORS: List[Dict[str, int]] = []


@contextmanager
def collect_solver_statuses() -> Iterator[Dict[str, int]]:
    """Collect ``{"solver:status": count}`` from guarded solvers.

    Nested collectors all receive every recorded status. The yielded
    dict is mutated in place as statuses arrive.
    """
    counts: Dict[str, int] = {}
    _COLLECTORS.append(counts)
    try:
        yield counts
    finally:
        _COLLECTORS.remove(counts)


def record_status(solver: str, status: Union[SolverStatus, str]) -> None:
    """Report a terminal solver status to every active collector.

    A no-op when no collector is open, so guarded solvers can call it
    unconditionally.
    """
    value = status.value if isinstance(status, SolverStatus) else str(status)
    key = f"{solver}:{value}"
    for counts in _COLLECTORS:
        counts[key] = counts.get(key, 0) + 1
