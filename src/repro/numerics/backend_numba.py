"""Optional numba JIT backend for the batched solver kernels.

Registered under the ``repro.kernel_backends`` entry-point group (see
``pyproject.toml``); :func:`load_backend` is the entry point's target.
numba is **not** a dependency of this package — when it is absent the
loader returns ``None`` and the dispatch layer simply never lists a
``"numba"`` backend. Tests and CI steps that exercise this backend
skip cleanly in that case (``pytest.importorskip("numba")``).

The kernel itself is the same divergence primitive as
:func:`repro.numerics.backend.numpy_step`, written as explicit loops
(``prange`` over the channel stack) so numba can fuse and parallelize
them. Results agree with the numpy backend to the usual cross-backend
1e-12 tolerance, not bitwise: summation order differs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .backend import KernelBackend
from .safeops import LOG_FLOOR

__all__ = ["load_backend"]


def load_backend() -> Optional[KernelBackend]:
    """Build the numba backend, or ``None`` when numba is missing.

    Called once by the entry-point loader in
    :mod:`repro.numerics.backend`; compilation is deferred to the first
    kernel invocation (numba's lazy ``njit``), so merely having numba
    installed costs nothing at import time.
    """
    try:
        from numba import njit, prange
    except ImportError:
        return None

    @njit(parallel=True, cache=True)
    def _step(p, w, log_w):  # pragma: no cover - requires numba
        k, nx, ny = w.shape
        d = np.empty((k, nx))
        for c in prange(k):
            q = np.zeros(ny)
            for x in range(nx):
                px = p[c, x]
                if px > 0.0:
                    for y in range(ny):
                        q[y] += px * w[c, x, y]
            log_q = np.empty(ny)
            for y in range(ny):
                qy = q[y]
                if qy < LOG_FLOOR:
                    qy = LOG_FLOOR
                log_q[y] = np.log2(qy)
            for x in range(nx):
                acc = 0.0
                for y in range(ny):
                    wxy = w[c, x, y]
                    if wxy > 0.0:
                        acc += wxy * (log_w[c, x, y] - log_q[y])
                d[c, x] = acc
        return d

    def step(
        p: np.ndarray, w: np.ndarray, log_w: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - requires numba
        return _step(
            np.ascontiguousarray(p),
            np.ascontiguousarray(w),
            np.ascontiguousarray(log_w),
        )

    return KernelBackend(
        name="numba",
        step=step,
        description="numba-JIT parallel loops (optional; requires numba)",
    )
