"""Opt-in wall-clock stage attribution for the hot kernels.

Benchmarks (and the experiment runner's ``collect_timing`` mode) need
to know where a campaign's wall-clock goes: the insertion-drift lattice,
the capacity solvers, or orchestration overhead. This module is the
collector: kernels wrap their hot section in :func:`stage`, callers open
:func:`collect_stage_timings`, and the per-stage totals accumulate into
the yielded mapping.

The design mirrors the solver-status collector in :mod:`.guard`: when
no collector is open, :func:`stage` is a no-op that never reads the
clock, so the instrumentation costs nothing on the default path and the
determinism contract (results are a function of code, seed, and
parameters only) is untouched — timings are observability metadata and
never feed back into computations.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List

__all__ = [
    "collect_stage_timings",
    "collect_store_events",
    "record_stage_seconds",
    "record_store_event",
    "stage",
    "timing_active",
]

_COLLECTORS: List[Dict[str, float]] = []
_STORE_COLLECTORS: List[Dict[str, int]] = []


@contextmanager
def collect_stage_timings() -> Iterator[Dict[str, float]]:
    """Collect ``{stage: seconds}`` from instrumented code.

    Nested collectors all receive every recorded interval. The yielded
    dict is mutated in place as stages complete.
    """
    totals: Dict[str, float] = {}
    _COLLECTORS.append(totals)
    try:
        yield totals
    finally:
        _COLLECTORS.remove(totals)


def timing_active() -> bool:
    """True when at least one timing collector is open."""
    return bool(_COLLECTORS)


def record_stage_seconds(stage_name: str, seconds: float) -> None:
    """Add *seconds* to *stage_name* in every open collector.

    A no-op when no collector is open, so instrumented code can call it
    unconditionally.
    """
    for totals in _COLLECTORS:
        totals[stage_name] = totals.get(stage_name, 0.0) + float(seconds)


@contextmanager
def collect_store_events() -> Iterator[Dict[str, int]]:
    """Collect ``{"fn_id:event": count}`` cache events from the result
    store (:mod:`repro.store`): ``hit``, ``miss``, ``bypass``.

    Same collector discipline as :func:`collect_stage_timings`: nested
    collectors all receive every event, the yielded dict is mutated in
    place, and with no collector open recording is a no-op — cache
    observability never perturbs the computation.
    """
    counts: Dict[str, int] = {}
    _STORE_COLLECTORS.append(counts)
    try:
        yield counts
    finally:
        _STORE_COLLECTORS.remove(counts)


def record_store_event(fn_id: str, event: str) -> None:
    """Report one store cache event to every open collector.

    A no-op when no collector is open, so the memoization layer can
    call it unconditionally.
    """
    key = f"{fn_id}:{event}"
    for counts in _STORE_COLLECTORS:
        counts[key] = counts.get(key, 0) + 1


@contextmanager
def stage(stage_name: str) -> Iterator[None]:
    """Attribute the wall-clock of the enclosed block to *stage_name*.

    Reads the clock only when a collector is open; timings are
    observability output and never influence simulation results.
    """
    if not _COLLECTORS:
        yield
        return
    start = time.perf_counter()  # repro: noqa[DET001] — observability only
    try:
        yield
    finally:
        record_stage_seconds(
            stage_name,
            time.perf_counter() - start,  # repro: noqa[DET001] — observability only
        )
