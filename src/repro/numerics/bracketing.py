"""Guarded root bracketing for the characteristic-equation solvers.

Millen's FSM capacity and Shannon's noiseless characteristic root both
bracket a root by geometric expansion and then call Brent's method.
Near-degenerate channels (vanishing durations, saturated adjacency)
make the expansion run off to its cap; the seed code raised a bare
``RuntimeError("failed to bracket capacity root")`` with nothing to
debug from. Here the expansion and the Brent call both fail as a
:class:`BracketingError` carrying :class:`BracketDiagnostics` — the
interval endpoints, the function values seen, and how many expansions
ran — and successes/failures are reported to the solver-status
collector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np
from scipy import optimize

from .guard import SolverStatus, record_status

__all__ = [
    "BracketDiagnostics",
    "BracketingError",
    "expand_bracket",
    "guarded_brentq",
]


@dataclass(frozen=True)
class BracketDiagnostics:
    """Trace of a bracketing attempt.

    Attributes
    ----------
    solver:
        Name of the bracketing caller (``"fsm_capacity"``, ...).
    lo, hi:
        Final interval endpoints when the attempt stopped.
    f_lo, f_hi:
        Function values at those endpoints.
    expansions:
        Geometric expansion steps taken.
    trail:
        The last few ``(hi, f(hi))`` pairs, most recent last.
    """

    solver: str
    lo: float
    hi: float
    f_lo: float
    f_hi: float
    expansions: int
    trail: Tuple[Tuple[float, float], ...] = ()

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.solver}: bracket [{self.lo:.6g}, {self.hi:.6g}] with "
            f"f = ({self.f_lo:.6g}, {self.f_hi:.6g}) after "
            f"{self.expansions} expansions"
        )


class BracketingError(RuntimeError):
    """Root bracketing or root polishing failed, with diagnostics.

    Subclasses ``RuntimeError`` so pre-existing ``except RuntimeError``
    handlers around the capacity solvers keep working; new code should
    catch this type and inspect :attr:`diagnostics`.
    """

    def __init__(self, message: str, diagnostics: BracketDiagnostics) -> None:
        super().__init__(f"{message} [{diagnostics.describe()}]")
        self.diagnostics = diagnostics


def expand_bracket(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    grow: float = 2.0,
    hi_cap: float,
    solver: str = "bracket",
    tail_length: int = 6,
) -> Tuple[float, float]:
    """Grow ``hi`` geometrically until ``f(hi) <= 0``.

    Assumes ``f`` is (weakly) decreasing with ``f(lo) > 0``, the shape
    of every characteristic equation in this package. Returns the
    bracketing interval ``(lo, hi)``.

    Raises
    ------
    BracketingError
        If ``hi`` exceeds *hi_cap* or ``f(hi)`` turns non-finite before
        a sign change — with the expansion trail attached.
    """
    if grow <= 1.0:
        raise ValueError("grow must be > 1")
    if not hi > lo:
        raise ValueError("need hi > lo")
    f_lo = float(f(lo))
    f_hi = float(f(hi))
    trail = [(float(hi), f_hi)]
    expansions = 0
    # Success requires a *finite* non-positive f(hi): a NaN compares
    # False against 0 and must not be mistaken for a sign change.
    while not (np.isfinite(f_hi) and f_hi <= 0):
        if hi > hi_cap or not np.isfinite(f_hi):
            diagnostics = BracketDiagnostics(
                solver=solver,
                lo=float(lo),
                hi=float(hi),
                f_lo=f_lo,
                f_hi=f_hi,
                expansions=expansions,
                trail=tuple(trail[-tail_length:]),
            )
            record_status(solver, SolverStatus.ABORTED)
            raise BracketingError(
                "failed to bracket root: no sign change before the "
                f"expansion cap {hi_cap:g}",
                diagnostics,
            )
        hi *= grow
        expansions += 1
        f_hi = float(f(hi))
        trail.append((float(hi), f_hi))
    return float(lo), float(hi)


def guarded_brentq(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    xtol: float,
    rtol: float = 8.9e-16,
    solver: str = "brentq",
) -> float:
    """Brent's method with failures translated to :class:`BracketingError`.

    Records ``converged`` / ``aborted`` with the status collector so
    root solves inside experiment replications are visible alongside
    the iterative solvers.
    """
    try:
        root = optimize.brentq(f, lo, hi, xtol=xtol, rtol=rtol)
    except (ValueError, RuntimeError) as exc:
        diagnostics = BracketDiagnostics(
            solver=solver,
            lo=float(lo),
            hi=float(hi),
            f_lo=float(f(lo)),
            f_hi=float(f(hi)),
            expansions=0,
        )
        record_status(solver, SolverStatus.ABORTED)
        raise BracketingError(f"root polishing failed: {exc}", diagnostics) from exc
    record_status(solver, SolverStatus.CONVERGED)
    return float(root)
