"""Memoization layer: ``@cached_solve`` and the active-store registry.

Caching is strictly opt-in. A solve consults the store only when one is
*active*: either a handle installed with :func:`use_store` /
:func:`set_active_store`, or — for whole processes (CLI runs, worker
pools) — the ``REPRO_STORE_DIR`` environment variable. With no active
store every decorated function is a plain pass-through, which is what
keeps the default path (and the test suite, which scrubs the
environment variable) bit-identical to an uncached build.

Every consultation is counted as a **hit** (entry found and decoded),
**miss** (computed and written), or **bypass** (store active but the
call is uncacheable — e.g. a parameter outside the canonical key
vocabulary). Counters aggregate per process (:func:`store_counters`)
and stream into any open :func:`repro.numerics.collect_store_events`
collector, next to the stage timings the profiling module already
gathers.
"""

from __future__ import annotations

import functools
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from ..numerics import record_stage_seconds
from ..numerics.profiling import record_store_event
from .keys import UnsupportedParameterError, canonical_key, code_fingerprint
from .result_store import ResultStore, StoreError
from .serialization import SerializationError

__all__ = [
    "active_store",
    "set_active_store",
    "use_store",
    "resolve_store",
    "cached_solve",
    "cached_batch",
    "record_cache_event",
    "store_counters",
    "reset_store_counters",
]

_ACTIVE: List[Optional[ResultStore]] = []
_ENV_STORES: Dict[str, ResultStore] = {}
_COUNTERS: Dict[str, int] = {}


def active_store() -> Optional[ResultStore]:
    """The store cached solves consult, or ``None`` (caching off).

    Resolution order: the innermost :func:`use_store` /
    :func:`set_active_store` handle (an explicit ``None`` disables
    caching even under the environment variable), then
    ``REPRO_STORE_DIR``.
    """
    if _ACTIVE:
        return _ACTIVE[-1]
    env_dir = os.environ.get("REPRO_STORE_DIR")
    if not env_dir:
        return None
    store = _ENV_STORES.get(env_dir)
    if store is None:
        try:
            store = ResultStore(env_dir)
        except (StoreError, OSError):
            return None  # unusable directory: caching silently off
        _ENV_STORES[env_dir] = store
    return store


def set_active_store(store: Optional[ResultStore]) -> None:
    """Install *store* as the process-wide active store.

    Replaces any previous explicit handle; ``None`` pins caching off
    regardless of ``REPRO_STORE_DIR``. Prefer the scoped
    :func:`use_store` in tests.
    """
    _ACTIVE.clear()
    _ACTIVE.append(store)


@contextmanager
def use_store(store: Optional[ResultStore]) -> Iterator[Optional[ResultStore]]:
    """Scoped activation: cached solves inside the block use *store*."""
    _ACTIVE.append(store)
    try:
        yield store
    finally:
        _ACTIVE.pop()


def resolve_store(directory: Optional[Union[str, Path]] = None) -> ResultStore:
    """Open the store at *directory*, falling back to the environment.

    The CLI's entry point: an explicit ``--dir`` wins, else the
    ``REPRO_STORE_DIR`` store, else a :class:`StoreError` naming both.
    """
    if directory is not None:
        return ResultStore(directory)
    store = active_store()
    if store is None:
        raise StoreError(
            "no store configured: pass --dir or set REPRO_STORE_DIR"
        )
    return store


# ----------------------------------------------------------------------
# counters

def record_cache_event(fn_id: str, event: str) -> None:
    """Count one hit/miss/bypass for *fn_id* (process-wide + collectors)."""
    key = f"{fn_id}:{event}"
    _COUNTERS[key] = _COUNTERS.get(key, 0) + 1
    record_store_event(fn_id, event)


def store_counters() -> Dict[str, int]:
    """Snapshot of the process-wide ``{"fn_id:event": count}`` map."""
    return dict(_COUNTERS)


def reset_store_counters() -> None:
    """Zero the process-wide counters (test isolation)."""
    _COUNTERS.clear()


# ----------------------------------------------------------------------
# the decorator

def cached_solve(
    fn_id: str,
    *,
    instance_attrs: Optional[Sequence[str]] = None,
    on_hit: Optional[Callable[[Any], None]] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Memoize an expensive solve through the active result store.

    Parameters
    ----------
    fn_id:
        Stable identifier for the solver (part of every key and of the
        hit/miss/bypass counter names).
    instance_attrs:
        For methods: names of the attributes on ``self`` that define
        the computation. They replace ``self`` in the cache key, so two
        model instances with equal parameters share entries.
    on_hit:
        Called with the decoded result on every hit. Used by solvers
        that report to the solver-status collector so a warm run
        surfaces the same solver health as the cold run that filled
        the cache.

    The wrapped function is bit-exact pass-through when no store is
    active. Uncacheable calls (parameters outside the canonical key
    vocabulary) and store write failures degrade to plain computation —
    the cache can only ever trade time, never correctness.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        fingerprint: List[str] = []  # lazily computed, cached

        def _fingerprint() -> str:
            if not fingerprint:
                fingerprint.append(code_fingerprint(fn))
            return fingerprint[0]

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            store = active_store()
            if store is None:
                return fn(*args, **kwargs)
            try:
                if instance_attrs is not None:
                    self_obj = args[0]
                    params: Dict[str, Any] = {
                        "self": {
                            name: getattr(self_obj, name)
                            for name in instance_attrs
                        },
                        "args": list(args[1:]),
                        "kwargs": kwargs,
                    }
                else:
                    params = {"args": list(args), "kwargs": kwargs}
                key = canonical_key(
                    fn_id, params, code_fingerprint=_fingerprint()
                )
            except (UnsupportedParameterError, IndexError):
                record_cache_event(fn_id, "bypass")
                return fn(*args, **kwargs)
            found = store.fetch(key)
            if found is not None:
                value, entry = found
                record_cache_event(fn_id, "hit")
                record_stage_seconds(
                    "store:saved_seconds", entry.compute_seconds
                )
                if on_hit is not None:
                    on_hit(value)
                return value
            record_cache_event(fn_id, "miss")
            # Solve cost is provenance for the manifest (wall-time a
            # future hit saves), never an input to any computation.
            t0 = time.perf_counter()  # repro: noqa[DET001]
            result = fn(*args, **kwargs)
            seconds = time.perf_counter() - t0  # repro: noqa[DET001]
            try:
                store.put(
                    key,
                    result,
                    fn_id=fn_id,
                    code_fingerprint=_fingerprint(),
                    compute_seconds=seconds,
                )
            except (OSError, SerializationError, UnsupportedParameterError, StoreError):
                pass  # best-effort write; the computed result stands
            return result

        wrapper.cache_fn_id = fn_id  # type: ignore[attr-defined]
        return wrapper

    return decorate


def cached_batch(
    fn_id: str,
    params_list: Sequence[Dict[str, Any]],
    solve_misses: Callable[[List[int]], Sequence[Any]],
    *,
    fingerprint: str = "",
    on_hit: Optional[Callable[[Any], None]] = None,
) -> List[Any]:
    """Memoize a *batched* solve: per-item store entries, one kernel call.

    The batched sweep counterpart of :func:`cached_solve`. Each item in
    *params_list* gets its own canonical key under *fn_id* (so warm
    sweeps answer point-by-point from the store, and a re-run with two
    new grid points solves exactly those two), but all misses of one
    call are handed to *solve_misses* together — which is what lets the
    sweep run them through a single batched kernel invocation instead
    of N scalar solves.

    Parameters
    ----------
    fn_id:
        Stable identifier (key namespace + counter names). Use a
        distinct id per (computation, numeric path): batched kernels
        may differ from their scalar oracles in the last ulp, so their
        entries must never masquerade as the scalar function's.
    params_list:
        One canonical-key parameter mapping per item. Include
        everything the numeric result depends on — tolerances, block
        lengths, and the kernel backend name.
    solve_misses:
        Called once with the sorted list of indices whose entries were
        not found (skipped entirely when everything hit); must return
        one result per index, in order.
    fingerprint:
        Code fingerprint salt for the keys (pass
        :func:`repro.store.code_fingerprint` of the underlying solve).
    on_hit:
        Called with each decoded result on a hit — status replay, so a
        warm sweep surfaces the same solver health as the cold one.

    Returns the full result list in item order. With no active store
    this is a pass-through: one ``solve_misses(range(n))`` call and no
    counters, bit-identical to the uncached sweep.
    """
    n = len(params_list)
    store = active_store()
    if store is None:
        return list(solve_misses(list(range(n))))
    results: List[Any] = [None] * n
    misses: List[int] = []
    keys: List[Optional[str]] = [None] * n
    for i, params in enumerate(params_list):
        try:
            keys[i] = canonical_key(
                fn_id, params, code_fingerprint=fingerprint
            )
        except UnsupportedParameterError:
            record_cache_event(fn_id, "bypass")
            misses.append(i)
            continue
        found = store.fetch(keys[i])
        if found is not None:
            value, entry = found
            record_cache_event(fn_id, "hit")
            record_stage_seconds("store:saved_seconds", entry.compute_seconds)
            if on_hit is not None:
                on_hit(value)
            results[i] = value
        else:
            record_cache_event(fn_id, "miss")
            misses.append(i)
    if not misses:
        return results
    t0 = time.perf_counter()  # repro: noqa[DET001]
    solved = list(solve_misses(misses))
    seconds = time.perf_counter() - t0  # repro: noqa[DET001]
    if len(solved) != len(misses):
        raise ValueError(
            f"solve_misses returned {len(solved)} results "
            f"for {len(misses)} misses"
        )
    # Attribute the batch's wall-time evenly across its misses — the
    # per-entry compute_seconds is provenance (what a future hit
    # saves), never an input to any computation.
    per_item = seconds / len(misses)
    for i, value in zip(misses, solved):
        results[i] = value
        if keys[i] is None:
            continue
        try:
            store.put(
                keys[i],
                value,
                fn_id=fn_id,
                code_fingerprint=fingerprint,
                compute_seconds=per_item,
            )
        except (OSError, SerializationError, UnsupportedParameterError, StoreError):
            pass  # best-effort write; the computed result stands
    return results
