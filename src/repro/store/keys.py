"""Deterministic cache keys: canonical serialization + code fingerprints.

A store key must be a pure function of *what is being computed*: the
solver identity, its parameters, and the code that implements it.
:func:`canonical_bytes` defines one canonical byte encoding for the
parameter values that appear in this package's solver signatures —
numbers, strings, sequences, mappings, numpy arrays, dataclasses,
enums — with type tags and length prefixes so distinct values can
never collide by concatenation. :func:`canonical_key` hashes that
encoding together with the function id, the per-function
:func:`code_fingerprint` (a source hash, so editing a cached solver
automatically invalidates its entries), and the package version.

Anything outside the canonical vocabulary raises
:class:`UnsupportedParameterError`; the memoization layer treats that
as a *bypass* (compute without caching) rather than guessing a key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import inspect
import textwrap
from typing import Any, Callable, Dict, Optional

import numpy as np

from .._version import PACKAGE_VERSION

__all__ = [
    "UnsupportedParameterError",
    "canonical_bytes",
    "canonical_key",
    "code_fingerprint",
    "callable_fingerprint",
]

#: Bump when the canonical encoding itself changes; part of every key,
#: so an encoding change orphans (rather than mis-reads) old entries.
KEY_SCHEMA_VERSION = 1


class UnsupportedParameterError(TypeError):
    """A parameter value has no canonical byte encoding."""


def _encode(value: Any, out: list) -> None:
    # Enums before scalars: mixin enums (e.g. str-based SolverStatus)
    # must key on their enum identity, not collide with plain strings.
    if isinstance(value, enum.Enum):
        cls = type(value)
        out.append(f"E{cls.__module__}.{cls.__qualname__}:".encode("ascii"))
        _encode(value.value, out)
    elif value is None:
        out.append(b"N;")
    elif isinstance(value, (bool, np.bool_)):
        out.append(b"B1;" if value else b"B0;")
    elif isinstance(value, (int, np.integer)):
        out.append(b"I%d;" % int(value))
    elif isinstance(value, (float, np.floating)):
        v = float(value)
        if np.isnan(v):
            out.append(b"Fnan;")  # one canonical NaN, payload ignored
        else:
            out.append(b"F" + np.float64(v).tobytes() + b";")
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"S%d:" % len(raw))
        out.append(raw)
    elif isinstance(value, bytes):
        out.append(b"Y%d:" % len(value))
        out.append(value)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        head = f"A{arr.dtype.str}{arr.shape}".encode("ascii")
        out.append(head + b":")
        out.append(arr.tobytes())
    elif isinstance(value, (list, tuple)):
        # Lists and tuples encode identically: they are interchangeable
        # spellings of the same parameter sequence.
        out.append(b"L%d:" % len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        items = []
        for k, v in value.items():
            k_out: list = []
            _encode(k, k_out)
            v_out: list = []
            _encode(v, v_out)
            items.append((b"".join(k_out), b"".join(v_out)))
        items.sort()
        out.append(b"D%d:" % len(items))
        for k_bytes, v_bytes in items:
            out.append(k_bytes)
            out.append(v_bytes)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        out.append(f"C{cls.__module__}.{cls.__qualname__}:".encode("ascii"))
        _encode(
            {f.name: getattr(value, f.name) for f in dataclasses.fields(value)},
            out,
        )
    else:
        raise UnsupportedParameterError(
            f"no canonical encoding for {type(value).__name__!r} value "
            f"{value!r}"
        )


def canonical_bytes(value: Any) -> bytes:
    """Canonical, collision-resistant byte encoding of *value*.

    Deterministic across processes and platforms for the supported
    vocabulary (dict ordering is normalized by sorting on encoded
    keys). Raises :class:`UnsupportedParameterError` for anything
    outside it.
    """
    out: list = []
    _encode(value, out)
    return b"".join(out)


def canonical_key(
    fn_id: str,
    params: Any,
    *,
    code_fingerprint: str = "",
) -> str:
    """Content address for one solve: sha256 over the canonical tuple
    ``(key schema, package version, fn_id, code fingerprint, params)``.

    The code fingerprint salts the key so a source edit to the cached
    function orphans all of its stale entries; the package version
    guards against cross-version payload drift.
    """
    payload = canonical_bytes(
        {
            "schema": KEY_SCHEMA_VERSION,
            "package": PACKAGE_VERSION,
            "fn_id": fn_id,
            "code": code_fingerprint,
            "params": params,
        }
    )
    return hashlib.sha256(payload).hexdigest()


def code_fingerprint(fn: Callable[..., Any]) -> str:
    """Short hash of a callable's source code.

    Any textual edit (including comments — conservatively safe)
    changes the fingerprint, which changes every key salted with it.
    Falls back to hashing the compiled bytecode when source is
    unavailable (REPL definitions, frozen imports).
    """
    target = inspect.unwrap(fn)
    try:
        source = textwrap.dedent(inspect.getsource(target))
        raw = source.encode("utf-8")
    except (OSError, TypeError):
        code = getattr(target, "__code__", None)
        if code is None:
            raise UnsupportedParameterError(
                f"cannot fingerprint {fn!r}: no source and no code object"
            )
        raw = code.co_code + repr(code.co_consts).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:16]


def callable_fingerprint(obj: Any) -> Optional[Dict[str, Any]]:
    """Identity-plus-code fingerprint of a trial callable, or ``None``.

    Supports the callables the experiment runner actually dispatches:
    plain functions and picklable dataclass callables (e.g. the
    runner's sweep binding), recursing into callable fields. Returns
    ``None`` for anything else (lambdas defined in closures still
    fingerprint via their code; exotic callables bypass the store).
    """
    if inspect.isfunction(obj) or inspect.ismethod(obj):
        try:
            return {
                "kind": "function",
                "name": f"{obj.__module__}.{obj.__qualname__}",
                "code": code_fingerprint(obj),
            }
        except UnsupportedParameterError:
            return None
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type) and callable(obj):
        cls = type(obj)
        try:
            class_code = code_fingerprint(cls.__call__)
        except (UnsupportedParameterError, AttributeError):
            return None
        fields: Dict[str, Any] = {}
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            if callable(value):
                inner = callable_fingerprint(value)
                if inner is None:
                    return None
                fields[f.name] = inner
            else:
                fields[f.name] = value
        return {
            "kind": "dataclass_callable",
            "name": f"{cls.__module__}.{cls.__qualname__}",
            "code": class_code,
            "fields": fields,
        }
    return None
