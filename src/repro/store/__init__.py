"""Content-addressed result store: cross-run caching with provenance.

Every expensive solve in this package — Blahut-Arimoto capacity
iterations, Dinkelbach timed-DMC solves, finite-block deletion/indel
bounds, Davey-MacKay lattice decodes — is a pure function of its
parameters. This subsystem makes that purity pay: results are stored
on disk under a canonical content address
(:func:`canonical_key` over the solver id, its parameters, a source
fingerprint of the solver, and the package version), so a rerun of a
bounds grid, a sweep, or a whole experiment after touching unrelated
code costs directory lookups instead of solver iterations.

Pieces:

* :mod:`.keys` — canonical parameter hashing and per-function
  :func:`code_fingerprint` (source edits invalidate stale entries
  automatically);
* :mod:`.serialization` — tagged JSON + ``npz`` payload codecs for
  solver result dataclasses and numpy arrays;
* :mod:`.result_store` — :class:`ResultStore`: atomic-rename writes
  (idempotent under concurrent writers, no locks), per-entry
  provenance manifests, ``gc``/``verify``/``stats`` maintenance;
* :mod:`.memo` — :func:`cached_solve` and the active-store registry
  (explicit handles or ``REPRO_STORE_DIR``), with hit/miss/bypass
  counters surfaced through :mod:`repro.numerics.profiling`.

Caching is opt-in and observability-neutral: with no active store the
decorated solvers are bit-exact pass-throughs. The experiment runner
layers the store *on top of* its checkpoint protocol — checkpoints
resume one interrupted run, the store shares finished solves across
runs. The CLI surface is ``repro store {ls,inspect,gc,verify,stats}``;
see ``docs/store.md`` for keying rules, invalidation semantics, and
the GC policy.
"""

from .keys import (
    UnsupportedParameterError,
    callable_fingerprint,
    canonical_bytes,
    canonical_key,
    code_fingerprint,
)
from .memo import (
    active_store,
    cached_batch,
    cached_solve,
    record_cache_event,
    reset_store_counters,
    resolve_store,
    set_active_store,
    store_counters,
    use_store,
)
from .result_store import (
    ResultStore,
    StoreEntry,
    StoreError,
    StoreStats,
    VerifyIssue,
)
from .serialization import SerializationError, decode_value, encode_value

__all__ = [
    "UnsupportedParameterError",
    "callable_fingerprint",
    "canonical_bytes",
    "canonical_key",
    "code_fingerprint",
    "active_store",
    "cached_batch",
    "cached_solve",
    "record_cache_event",
    "reset_store_counters",
    "resolve_store",
    "set_active_store",
    "store_counters",
    "use_store",
    "ResultStore",
    "StoreEntry",
    "StoreError",
    "StoreStats",
    "VerifyIssue",
    "SerializationError",
    "decode_value",
    "encode_value",
]
