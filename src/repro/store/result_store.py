"""Disk-backed, content-addressed artifact store.

Layout (one directory per entry, addressed by its canonical key)::

    <root>/
      store.json                      # format marker
      tmp/                            # staging area for in-flight writes
      objects/<key[:2]>/<key>/
        manifest.json                 # provenance + payload hashes
        payload.json                  # tagged JSON tree
        arrays.npz                    # referenced numpy arrays (optional)

Write protocol: an entry is staged completely under ``tmp/`` and then
moved into place with one ``os.rename``. Readers therefore never see a
partial entry, and concurrent writers need no locks — content
addressing makes the race idempotent: whoever renames first wins, the
loser observes the existing entry and discards its staging directory.
(This is the same atomic-rename discipline the experiment runner's
checkpoints use, extended to directories; it is what makes the store
safe under the runner's ``ProcessPoolExecutor`` workers.)

Corrupt entries (truncated JSON, hash mismatch, missing arrays) are
indistinguishable from misses on the read path — the cache never
poisons a computation — and are reported explicitly by
:meth:`ResultStore.verify`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from .._version import PACKAGE_VERSION
from .serialization import SerializationError, decode_value, encode_value

__all__ = [
    "StoreError",
    "StoreEntry",
    "StoreStats",
    "VerifyIssue",
    "ResultStore",
]

MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.json"
ARRAYS_NAME = "arrays.npz"

#: On-disk layout version, written to ``store.json`` and every manifest.
STORE_FORMAT_VERSION = 1

_STAGING_SEQ = itertools.count()


class StoreError(Exception):
    """Unrecoverable store-level failure (bad root, invalid key)."""


@dataclass(frozen=True)
class StoreEntry:
    """Provenance manifest of one stored artifact."""

    key: str
    fn_id: str
    code_fingerprint: str
    package_version: str
    created_at: float
    compute_seconds: float
    nbytes: int
    path: Path


@dataclass(frozen=True)
class StoreStats:
    """Aggregate store accounting (for ``repro store stats``)."""

    entries: int
    total_bytes: int
    entries_by_fn: Dict[str, int]
    compute_seconds_by_fn: Dict[str, float]

    @property
    def compute_seconds_total(self) -> float:
        """Total recorded solve time — the wall-clock a fully warm
        rerun of everything in the store would save."""
        return sum(self.compute_seconds_by_fn.values())


@dataclass(frozen=True)
class VerifyIssue:
    """One corruption finding from :meth:`ResultStore.verify`."""

    key: str
    problem: str


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _dir_bytes(path: Path) -> int:
    return sum(p.stat().st_size for p in path.iterdir() if p.is_file())


class ResultStore:
    """Content-addressed result store rooted at a directory.

    Parameters
    ----------
    root:
        Store directory; created (with its marker file) if missing.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store root {self.root} is not a directory")
        self.objects_dir = self.root / "objects"
        self._tmp_dir = self.root / "tmp"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self._tmp_dir.mkdir(parents=True, exist_ok=True)
        marker = self.root / "store.json"
        if not marker.exists():
            # Concurrent initializers write identical content; last
            # rename wins and all of them are correct.
            staged = self._tmp_dir / f"store.json.{os.getpid()}"
            staged.write_text(
                json.dumps(
                    {"format": STORE_FORMAT_VERSION, "package": PACKAGE_VERSION}
                ),
                encoding="utf-8",
            )
            os.replace(staged, marker)

    # ------------------------------------------------------------------
    # addressing

    def path_for(self, key: str) -> Path:
        """Entry directory for *key* (which need not exist yet)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise StoreError(f"invalid store key {key!r}")
        return self.objects_dir / key[:2] / key

    def contains(self, key: str) -> bool:
        """Whether a (possibly corrupt) entry exists for *key*."""
        return (self.path_for(key) / MANIFEST_NAME).exists()

    # ------------------------------------------------------------------
    # read path

    def fetch(self, key: str) -> Optional[Tuple[Any, StoreEntry]]:
        """Decode entry *key* as ``(value, manifest)``.

        Returns ``None`` on a miss *or* on any corruption — a damaged
        entry must degrade to a recompute, never to an exception in the
        middle of a solve. A successful read bumps the entry's mtime so
        size-budget GC evicts least-recently-used entries first.
        """
        entry_dir = self.path_for(key)
        try:
            manifest = json.loads(
                (entry_dir / MANIFEST_NAME).read_text(encoding="utf-8")
            )
            payload = json.loads(
                (entry_dir / PAYLOAD_NAME).read_text(encoding="utf-8")
            )
            arrays: Dict[str, np.ndarray] = {}
            arrays_path = entry_dir / ARRAYS_NAME
            if arrays_path.exists():
                with np.load(arrays_path) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            value = decode_value(payload, arrays)
        except (OSError, ValueError, KeyError, SerializationError):
            return None
        try:
            os.utime(entry_dir / MANIFEST_NAME)
        except OSError:
            pass  # read-only stores still serve hits
        return value, self._entry_from_manifest(key, entry_dir, manifest)

    def get(self, key: str, default: Any = None) -> Any:
        """Value for *key*, or *default* on miss/corruption."""
        found = self.fetch(key)
        return default if found is None else found[0]

    # ------------------------------------------------------------------
    # write path

    def put(
        self,
        key: str,
        value: Any,
        *,
        fn_id: str,
        code_fingerprint: str = "",
        compute_seconds: float = 0.0,
        created_at: Optional[float] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Persist *value* under *key*; returns True when this call
        created the entry.

        The entry is staged under ``tmp/`` and published with a single
        ``os.rename``. If another writer publishes the same key first,
        its entry (byte-equivalent by content addressing) is kept and
        this call reports False.
        """
        entry_dir = self.path_for(key)
        if entry_dir.exists():
            return False
        payload, arrays = encode_value(value)
        if created_at is None:
            # Provenance metadata only — never feeds a computation.
            created_at = time.time()  # repro: noqa[DET001]
        staging = self._tmp_dir / f"{key}.{os.getpid()}.{next(_STAGING_SEQ)}"
        staging.mkdir(parents=True)
        try:
            (staging / PAYLOAD_NAME).write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            hashes = {PAYLOAD_NAME: _sha256_file(staging / PAYLOAD_NAME)}
            if arrays:
                with open(staging / ARRAYS_NAME, "wb") as fh:
                    np.savez(fh, **arrays)
                hashes[ARRAYS_NAME] = _sha256_file(staging / ARRAYS_NAME)
            manifest = {
                "format": STORE_FORMAT_VERSION,
                "key": key,
                "fn_id": fn_id,
                "code_fingerprint": code_fingerprint,
                "package_version": PACKAGE_VERSION,
                "created_at": float(created_at),
                "compute_seconds": float(compute_seconds),
                "hashes": hashes,
            }
            if extra:
                manifest["extra"] = extra
            (staging / MANIFEST_NAME).write_text(
                json.dumps(manifest, sort_keys=True, indent=1),
                encoding="utf-8",
            )
            entry_dir.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(staging, entry_dir)
            except OSError:
                if entry_dir.exists():
                    return False  # lost the publish race: idempotent
                raise
            return True
        finally:
            if staging.exists():
                shutil.rmtree(staging, ignore_errors=True)

    def delete(self, key: str) -> bool:
        """Remove entry *key*; returns whether anything was removed."""
        entry_dir = self.path_for(key)
        if not entry_dir.exists():
            return False
        shutil.rmtree(entry_dir)
        return True

    # ------------------------------------------------------------------
    # enumeration / maintenance

    def keys(self) -> List[str]:
        """Sorted keys of all entries (including corrupt ones)."""
        found = []
        for shard in sorted(self.objects_dir.iterdir()):
            if shard.is_dir():
                found.extend(p.name for p in sorted(shard.iterdir()) if p.is_dir())
        return found

    def entries(self) -> Iterator[StoreEntry]:
        """Iterate manifests of readable entries (corrupt ones skipped;
        :meth:`verify` is the tool that reports those)."""
        for key in self.keys():
            entry_dir = self.path_for(key)
            try:
                manifest = json.loads(
                    (entry_dir / MANIFEST_NAME).read_text(encoding="utf-8")
                )
                yield self._entry_from_manifest(key, entry_dir, manifest)
            except (OSError, ValueError):
                continue

    def _entry_from_manifest(
        self, key: str, entry_dir: Path, manifest: Dict[str, Any]
    ) -> StoreEntry:
        return StoreEntry(
            key=key,
            fn_id=str(manifest.get("fn_id", "?")),
            code_fingerprint=str(manifest.get("code_fingerprint", "")),
            package_version=str(manifest.get("package_version", "?")),
            created_at=float(manifest.get("created_at", 0.0)),
            compute_seconds=float(manifest.get("compute_seconds", 0.0)),
            nbytes=_dir_bytes(entry_dir),
            path=entry_dir,
        )

    def stats(self) -> StoreStats:
        """Aggregate accounting over all readable entries."""
        by_fn: Dict[str, int] = {}
        seconds: Dict[str, float] = {}
        total_bytes = 0
        count = 0
        for entry in self.entries():
            count += 1
            total_bytes += entry.nbytes
            by_fn[entry.fn_id] = by_fn.get(entry.fn_id, 0) + 1
            seconds[entry.fn_id] = (
                seconds.get(entry.fn_id, 0.0) + entry.compute_seconds
            )
        return StoreStats(
            entries=count,
            total_bytes=total_bytes,
            entries_by_fn=by_fn,
            compute_seconds_by_fn=seconds,
        )

    def gc(
        self,
        *,
        max_age_seconds: Optional[float] = None,
        max_total_bytes: Optional[int] = None,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> List[str]:
        """Evict entries by age and/or size budget; returns evicted keys.

        Age eviction drops entries whose manifest ``created_at`` is
        older than *max_age_seconds*. Size eviction then removes
        least-recently-*used* entries (reads bump mtime) until the
        store fits *max_total_bytes*. Corrupt entries are always
        evicted — they can never serve a hit.
        """
        if now is None:
            # Maintenance policy, not simulation state.
            now = time.time()  # repro: noqa[DET001]
        evicted: List[str] = []
        readable: Dict[str, StoreEntry] = {e.key: e for e in self.entries()}
        for key in self.keys():
            entry = readable.get(key)
            if entry is None:
                evicted.append(key)  # corrupt: unconditionally collect
            elif (
                max_age_seconds is not None
                and now - entry.created_at > max_age_seconds
            ):
                evicted.append(key)
        if max_total_bytes is not None:
            survivors = [
                e for e in readable.values() if e.key not in set(evicted)
            ]
            total = sum(e.nbytes for e in survivors)
            survivors.sort(
                key=lambda e: (e.path / MANIFEST_NAME).stat().st_mtime
            )
            for entry in survivors:
                if total <= max_total_bytes:
                    break
                evicted.append(entry.key)
                total -= entry.nbytes
        if not dry_run:
            for key in evicted:
                self.delete(key)
        return evicted

    def verify(self) -> List[VerifyIssue]:
        """Re-hash every entry's payload files against its manifest.

        Returns one :class:`VerifyIssue` per problem: unreadable or
        malformed manifests, missing payload files, hash mismatches,
        and payloads that no longer decode.
        """
        issues: List[VerifyIssue] = []
        for key in self.keys():
            entry_dir = self.path_for(key)
            try:
                manifest = json.loads(
                    (entry_dir / MANIFEST_NAME).read_text(encoding="utf-8")
                )
            except (OSError, ValueError) as exc:
                issues.append(VerifyIssue(key, f"unreadable manifest: {exc!r}"))
                continue
            hashes = manifest.get("hashes")
            if not isinstance(hashes, dict) or PAYLOAD_NAME not in hashes:
                issues.append(VerifyIssue(key, "manifest lists no payload hashes"))
                continue
            damaged = False
            for name, expected in sorted(hashes.items()):
                target = entry_dir / name
                if not target.exists():
                    issues.append(VerifyIssue(key, f"missing file {name}"))
                    damaged = True
                elif _sha256_file(target) != expected:
                    issues.append(VerifyIssue(key, f"hash mismatch in {name}"))
                    damaged = True
            if damaged:
                continue
            try:
                payload = json.loads(
                    (entry_dir / PAYLOAD_NAME).read_text(encoding="utf-8")
                )
                arrays: Dict[str, np.ndarray] = {}
                arrays_path = entry_dir / ARRAYS_NAME
                if arrays_path.exists():
                    with np.load(arrays_path) as npz:
                        arrays = {name: npz[name] for name in npz.files}
                decode_value(payload, arrays)
            except (OSError, ValueError, KeyError, SerializationError) as exc:
                issues.append(VerifyIssue(key, f"payload does not decode: {exc!r}"))
        return issues
