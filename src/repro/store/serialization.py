"""Payload codecs: solver results to JSON + npz and back.

A stored value round-trips through two files: ``payload.json`` (a
tagged JSON tree) and ``arrays.npz`` (the numpy arrays the tree refers
to by name). The vocabulary mirrors what the cached solvers return:
scalars, strings, sequences, mappings, numpy arrays, enums, and
(frozen) dataclasses such as ``BlahutArimotoResult`` — dataclasses are
stored by import path and reconstructed field-by-field, restricted to
``repro.*`` classes so a tampered payload cannot name arbitrary
constructors.

Non-finite floats (a non-converged solve reports ``gap = inf``) are
tagged explicitly since JSON has no spelling for them.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import math
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["SerializationError", "encode_value", "decode_value"]

#: Tag slot in encoded JSON objects; plain dicts never use this key.
TAG = "__repro__"


class SerializationError(ValueError):
    """A value cannot be encoded, or a payload cannot be decoded."""


def _encode(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    # Enums first: mixin enums (SolverStatus subclasses str) would
    # otherwise be flattened to their base scalar and lose identity.
    if isinstance(value, enum.Enum):
        cls = type(value)
        return {
            TAG: "enum",
            "cls": f"{cls.__module__}:{cls.__qualname__}",
            "name": value.name,
        }
    if value is None or isinstance(value, (bool, str, int)):
        return value
    if isinstance(value, (np.bool_, np.integer)):
        return value.item()
    if isinstance(value, (float, np.floating)):
        v = float(value)
        if math.isfinite(v):
            return v
        return {TAG: "float", "value": repr(v)}
    if isinstance(value, np.ndarray):
        ref = f"a{len(arrays)}"
        arrays[ref] = value
        return {TAG: "ndarray", "ref": ref}
    if isinstance(value, tuple):
        return {TAG: "tuple", "items": [_encode(v, arrays) for v in value]}
    if isinstance(value, list):
        return [_encode(v, arrays) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            TAG: "dataclass",
            "cls": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: _encode(getattr(value, f.name), arrays)
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and TAG not in value:
            return {k: _encode(v, arrays) for k, v in value.items()}
        return {
            TAG: "dict",
            "items": [
                [_encode(k, arrays), _encode(v, arrays)]
                for k, v in value.items()
            ],
        }
    raise SerializationError(
        f"cannot serialize {type(value).__name__!r} value {value!r}"
    )


def encode_value(value: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Encode *value* into ``(jsonable tree, named arrays)``."""
    arrays: Dict[str, np.ndarray] = {}
    return _encode(value, arrays), arrays


def _resolve_class(spec: str) -> type:
    module_name, _, qualname = spec.partition(":")
    if not (module_name == "repro" or module_name.startswith("repro.")):
        raise SerializationError(
            f"refusing to resolve class {spec!r} outside the repro package"
        )
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise SerializationError(f"cannot resolve class {spec!r}: {exc!r}")
    if not isinstance(obj, type):
        raise SerializationError(f"{spec!r} is not a class")
    return obj


def decode_value(obj: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`encode_value`.

    Raises :class:`SerializationError` on unknown tags, missing array
    refs, or classes outside ``repro.*`` — the store treats any of
    these as a corrupt entry.
    """
    if obj is None or isinstance(obj, (bool, str, int, float)):
        return obj
    if isinstance(obj, list):
        return [decode_value(v, arrays) for v in obj]
    if not isinstance(obj, dict):
        raise SerializationError(f"unexpected payload node {obj!r}")
    tag = obj.get(TAG)
    if tag is None:
        return {k: decode_value(v, arrays) for k, v in obj.items()}
    if tag == "float":
        return float(obj["value"])
    if tag == "ndarray":
        ref = obj["ref"]
        if ref not in arrays:
            raise SerializationError(f"payload references missing array {ref!r}")
        return arrays[ref]
    if tag == "tuple":
        return tuple(decode_value(v, arrays) for v in obj["items"])
    if tag == "enum":
        cls = _resolve_class(obj["cls"])
        try:
            return cls[obj["name"]]
        except KeyError as exc:
            raise SerializationError(f"unknown enum member: {exc!r}")
    if tag == "dataclass":
        cls = _resolve_class(obj["cls"])
        if not dataclasses.is_dataclass(cls):
            raise SerializationError(f"{cls!r} is not a dataclass")
        fields = {
            k: decode_value(v, arrays) for k, v in obj["fields"].items()
        }
        try:
            return cls(**fields)
        except TypeError as exc:
            raise SerializationError(
                f"cannot reconstruct {cls.__name__}: {exc!r}"
            )
    if tag == "dict":
        return {
            decode_value(k, arrays): decode_value(v, arrays)
            for k, v in obj["items"]
        }
    raise SerializationError(f"unknown payload tag {tag!r}")
