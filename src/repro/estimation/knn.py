"""Kraskov (KSG) k-nearest-neighbour mutual-information estimators.

Two estimators, both built on ``scipy.spatial.cKDTree``:

* :func:`ksg_mutual_information` — the KSG "algorithm 1" estimator of
  Kraskov, Stögbauer & Grassberger (Phys. Rev. E 69, 066138; arXiv:
  cond-mat/0305641) for two continuous vectors, using the Chebyshev
  (max-norm) metric in the joint space;
* :func:`mixed_mutual_information` — the discrete/continuous variant
  (Ross, PLoS ONE 9(2):e87357): the input is a discrete symbol, the
  output an arbitrary continuous vector. Neighbour distances are taken
  inside each symbol class; the neighbour *count* at that radius is
  taken over the pooled outputs.

Both estimators break ties with a deterministic jitter drawn from the
caller's RNG stream (:func:`tie_break_jitter`): replays under the same
seed are bit-identical, and purely discrete outputs (a DMC's symbols)
become valid inputs — the jitter turns exact ties into a random local
ordering whose neighbour-count ratios still converge to the density
ratios the estimator needs.

Counting conventions matter at the half-bit level and are pinned by the
property suite (``tests/estimation/test_knn.py``): radii come from the
k-th neighbour *excluding* the query point, and ball counts likewise
exclude the query point. The naive O(n²) reference implementations
(`*_reference`) share the exact arithmetic — including the jitter — so
the tree-accelerated paths are gated by bit-identity, the same
scalar-oracle pattern the vectorized lattice kernels use.

All ``cKDTree`` construction in the repository lives in this module:
lint rule EST001 keeps every other kNN query behind these guarded,
cached entry points.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma

__all__ = [
    "tie_break_jitter",
    "ksg_mutual_information",
    "ksg_mutual_information_reference",
    "mixed_mutual_information",
    "mixed_mi_contributions",
    "mixed_mutual_information_reference",
]

#: Relative amplitude of the tie-breaking jitter. Far below any real
#: signal spacing (symbol alphabets are O(1) apart) yet large enough
#: that float64 uniform draws never collide in practice.
JITTER_AMPLITUDE = 1e-10

_LN2 = float(np.log(2.0))


def _as_sample_matrix(values: np.ndarray, name: str) -> np.ndarray:
    """Coerce *values* to a float ``(n, d)`` matrix, validating shape."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise ValueError(f"{name} must be a non-empty 1-D or 2-D sample array")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite samples")
    return arr


def tie_break_jitter(
    values: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Return *values* plus a deterministic tie-breaking perturbation.

    The perturbation is uniform in ``±JITTER_AMPLITUDE * scale`` where
    ``scale`` is the data's absolute range (floored at 1), drawn from
    *rng* — so the same stream position always produces the same
    jittered coordinates and repeat runs are bit-identical.
    """
    arr = _as_sample_matrix(values, "values")
    scale = max(float(np.max(np.abs(arr))), 1.0)
    return arr + rng.uniform(
        -JITTER_AMPLITUDE, JITTER_AMPLITUDE, size=arr.shape
    ) * scale


def _validate_k(k: int, n: int) -> None:
    if k < 1:
        raise ValueError("k must be >= 1")
    if n <= k + 1:
        raise ValueError(
            f"need more than k+1 = {k + 1} samples, got {n}"
        )


# ----------------------------------------------------------------------
# KSG algorithm 1: continuous-continuous


def ksg_mutual_information(
    x: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 4,
    rng: np.random.Generator,
) -> float:
    """KSG1 estimate of ``I(X; Y)`` in bits from paired samples.

    ``x`` and ``y`` are ``(n,)`` or ``(n, d)`` arrays of paired draws.
    The joint space uses the Chebyshev metric, so the k-th neighbour
    radius factors into per-marginal strict-inequality ball counts
    exactly as KSG1 requires:

        I = psi(k) + psi(n) - < psi(n_x + 1) + psi(n_y + 1) >

    with ``n_x``/``n_y`` the strictly-within-radius marginal counts
    excluding the point itself.
    """
    xj = tie_break_jitter(x, rng)
    yj = tie_break_jitter(y, rng)
    n = xj.shape[0]
    if yj.shape[0] != n:
        raise ValueError("x and y must hold the same number of samples")
    _validate_k(k, n)
    joint = np.hstack([xj, yj])
    tree = cKDTree(joint)
    # k+1 neighbours: the query point itself is always the nearest.
    dist, _ = tree.query(joint, k=k + 1, p=np.inf)
    radius = dist[:, -1]
    # Strict inequality: shrink the radius by one ulp so the marginal
    # balls exclude the k-th joint neighbour (which attains the radius
    # in one of the marginals).
    strict = np.nextafter(radius, 0.0)
    cx = cKDTree(xj).query_ball_point(
        xj, strict, p=np.inf, return_length=True
    )
    cy = cKDTree(yj).query_ball_point(
        yj, strict, p=np.inf, return_length=True
    )
    # cx/cy include the query point: count_excluding_self + 1, which is
    # exactly the "+1" the KSG1 formula asks for.
    value = (
        digamma(k)
        + digamma(n)
        - float(np.mean(digamma(cx) + digamma(cy)))
    )
    return float(value / _LN2)


def ksg_mutual_information_reference(
    x: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 4,
    rng: np.random.Generator,
) -> float:
    """Naive O(n²) KSG1 — the bit-identical correctness oracle.

    Shares the jitter draws and digamma arithmetic with
    :func:`ksg_mutual_information`; only the neighbour search differs
    (full pairwise Chebyshev distance scans instead of a cKDTree).
    """
    xj = tie_break_jitter(x, rng)
    yj = tie_break_jitter(y, rng)
    n = xj.shape[0]
    if yj.shape[0] != n:
        raise ValueError("x and y must hold the same number of samples")
    _validate_k(k, n)
    dx = np.max(np.abs(xj[:, None, :] - xj[None, :, :]), axis=2)
    dy = np.max(np.abs(yj[:, None, :] - yj[None, :, :]), axis=2)
    joint = np.maximum(dx, dy)
    # k-th neighbour excluding self == (k+1)-th smallest including the
    # zero self-distance on the diagonal.
    radius = np.sort(joint, axis=1)[:, k]
    strict = np.nextafter(radius, 0.0)
    cx = np.count_nonzero(dx <= strict[:, None], axis=1)
    cy = np.count_nonzero(dy <= strict[:, None], axis=1)
    value = (
        digamma(k)
        + digamma(n)
        - float(np.mean(digamma(cx) + digamma(cy)))
    )
    return float(value / _LN2)


# ----------------------------------------------------------------------
# Mixed discrete/continuous variant


def _mixed_counts_tree(
    labels: np.ndarray, yj: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-point ``(class size, pooled count at class k-NN radius)``."""
    n = labels.size
    class_size = np.empty(n, dtype=float)
    radius = np.empty(n, dtype=float)
    for symbol in np.unique(labels):
        idx = np.flatnonzero(labels == symbol)
        if idx.size <= k:
            raise ValueError(
                f"symbol {int(symbol)} has {idx.size} samples; the mixed "
                f"estimator needs more than k = {k} per symbol"
            )
        sub = cKDTree(yj[idx])
        dist, _ = sub.query(yj[idx], k=k + 1, p=np.inf)
        radius[idx] = dist[:, -1]
        class_size[idx] = idx.size
    pooled = cKDTree(yj).query_ball_point(
        yj, radius, p=np.inf, return_length=True
    )
    # Exclude the query point itself so the pooled count and the k
    # within-class neighbours share one convention; counting the point
    # on one side only biases the estimate by psi(k) - psi(k+1)
    # (~ -0.36 bits at k = 4).
    return class_size, pooled.astype(float) - 1.0


def _mixed_contributions(
    labels: np.ndarray,
    class_size: np.ndarray,
    pooled: np.ndarray,
    k: int,
) -> np.ndarray:
    n = labels.size
    return (
        digamma(n) + digamma(k) - digamma(class_size) - digamma(pooled)
    ) / _LN2


def _validate_mixed_inputs(
    labels: np.ndarray, y: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    lab = np.asarray(labels)
    if lab.ndim != 1 or lab.size == 0:
        raise ValueError("labels must be a non-empty 1-D integer array")
    if not np.issubdtype(lab.dtype, np.integer):
        raise ValueError("labels must be integers (discrete symbols)")
    arr = _as_sample_matrix(y, "y")
    if arr.shape[0] != lab.size:
        raise ValueError("labels and y must hold the same number of samples")
    return lab.astype(np.int64), arr


def mixed_mi_contributions(
    labels: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 8,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-sample contributions whose mean is the mixed MI estimate.

    The contribution of sample ``i`` is a one-point estimate of
    ``log2 p(y_i | x_i) / p(y_i)`` — so averaging over the samples of
    one symbol estimates the divergence ``D(W(.|x) || q)``, which is
    precisely the Blahut-Arimoto gradient of mutual information with
    respect to that symbol's input probability. The capacity optimizer
    (:mod:`repro.estimation.optimize`) reads its search direction off
    these contributions, paying one estimator evaluation per step.
    """
    lab, arr = _validate_mixed_inputs(labels, y)
    _validate_k(k, lab.size)
    yj = tie_break_jitter(arr, rng)
    class_size, pooled = _mixed_counts_tree(lab, yj, k)
    return _mixed_contributions(lab, class_size, pooled, k)


def mixed_mutual_information(
    labels: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 8,
    rng: np.random.Generator,
) -> float:
    """Mixed discrete/continuous MI estimate ``I(X; Y)`` in bits.

    ``labels`` holds the discrete input symbols, ``y`` the paired
    (possibly multi-dimensional, possibly discrete-with-ties) outputs.
    Every symbol class must contain more than *k* samples.
    """
    return float(
        np.mean(mixed_mi_contributions(labels, y, k=k, rng=rng))
    )


def mixed_mutual_information_reference(
    labels: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 8,
    rng: np.random.Generator,
    return_contributions: bool = False,
) -> "float | np.ndarray":
    """Naive O(n²) mixed estimator — the bit-identical oracle.

    Identical jitter draws and digamma arithmetic to
    :func:`mixed_mutual_information`; neighbour radii and pooled counts
    come from full pairwise Chebyshev scans. The benchmark suite holds
    the cKDTree path to a >= 5x speedup over this scan at n = 4096.
    """
    lab, arr = _validate_mixed_inputs(labels, y)
    _validate_k(k, lab.size)
    yj = tie_break_jitter(arr, rng)
    n = lab.size
    dist = np.max(np.abs(yj[:, None, :] - yj[None, :, :]), axis=2)
    class_size = np.empty(n, dtype=float)
    radius = np.empty(n, dtype=float)
    for symbol in np.unique(lab):
        idx = np.flatnonzero(lab == symbol)
        if idx.size <= k:
            raise ValueError(
                f"symbol {int(symbol)} has {idx.size} samples; the mixed "
                f"estimator needs more than k = {k} per symbol"
            )
        sub = dist[np.ix_(idx, idx)]
        radius[idx] = np.sort(sub, axis=1)[:, k]
        class_size[idx] = idx.size
    pooled = (
        np.count_nonzero(dist <= radius[:, None], axis=1).astype(float) - 1.0
    )
    contributions = _mixed_contributions(lab, class_size, pooled, k)
    if return_contributions:
        return contributions
    return float(np.mean(contributions))
