"""Sample-based capacity estimation: maximize kNN MI over inputs.

Capacity is ``max_p I(p)`` (bits per symbol) or, for channels whose
symbols occupy unequal time, ``max_p I(p) / T(p)`` with
``T(p) = sum_x p(x) tau(x)`` (bits per time unit). When the channel is
only available as a :class:`repro.estimation.samplers.ChannelSampler`,
neither ``I`` nor its gradient is exact — both are estimated from
draws:

* the per-sample KSG contributions
  (:func:`repro.estimation.knn.mixed_mi_contributions`) average, per
  input symbol ``s``, to an estimate of ``D(W(.|s) || q_p)`` — which
  is the Blahut–Arimoto gradient ``dI/dp_s`` up to the constant that
  the simplex projection absorbs;
* the optimizer runs projected stochastic gradient ascent on the
  simplex with a per-symbol probability floor of ``(k + 2) / n`` (every
  symbol must keep more than ``k`` samples or the estimator itself
  becomes undefined), a decaying step, and fresh RNG substreams per
  iteration;
* the loop runs under :class:`repro.numerics.IterationGuard` with the
  Blahut–Arimoto optimality gap ``max_s (g_s - rate * tau_s) / T`` as
  its residual, so noisy plateaus terminate as ``stalled`` rather than
  spinning, and every terminal status lands in the
  :func:`repro.numerics.record_status` collector;
* the *reported* capacity is never the optimizer's running value:
  maximizing over noisy iterates is upward-biased (a max over
  estimates exceeds the estimate at the max), so the final number
  comes from one fresh full-size evaluation at the best iterate, on
  RNG substreams the search never touched.

Results are memoized per ``(sampler, n_samples, seed, k, knobs)``
through :func:`repro.store.cached_batch` — the sampler dataclass is
its own cache fingerprint — so warm replays answer from the store with
zero optimizer iterations while still replaying solver status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..numerics import (
    IterationGuard,
    SolverDiagnostics,
    SolverStatus,
    record_status,
    stage,
)
from ..simulation.rng import RngFactory
from ..store import cached_batch, code_fingerprint
from .knn import mixed_mi_contributions
from .samplers import ChannelSampler

__all__ = [
    "SampleCapacityResult",
    "estimate_sample_capacity",
    "project_to_simplex",
]

#: Solver name in diagnostics and the status collector.
SOLVER_NAME = "sample_capacity"

#: Store namespace for memoized estimates.
ESTIMATE_FN_ID = "estimation.sample_capacity"


@dataclass(frozen=True)
class SampleCapacityResult:
    """Outcome of one sample-based capacity estimation.

    Attributes
    ----------
    capacity:
        Estimated capacity in bits per time unit (equals
        ``bits_per_symbol`` for untimed channels).
    input_distribution:
        The best input distribution found (simplex point with a
        ``(k + 2) / n`` per-symbol floor).
    bits_per_symbol:
        kNN MI estimate at that distribution, from the fresh final
        evaluation.
    mean_time:
        Expected symbol duration under the realized final-evaluation
        symbol counts.
    n_samples:
        Channel uses drawn per estimator evaluation.
    k:
        kNN neighbour order.
    iterations:
        Optimizer iterations executed (0 on a warm store replay).
    status:
        Terminal :class:`repro.numerics.SolverStatus` of the search.
    split_estimates:
        ``(even, odd)`` MI estimates from the deterministic
        even/odd-index split of the final evaluation's contributions —
        their spread is a direct variance read on the estimate.
    half_sample_mi:
        MI re-estimated from the first half of the (shuffled) final
        sample, or ``nan`` when a symbol class would drop to ``<= k``
        samples. ``bits_per_symbol - half_sample_mi`` tracks the
        finite-sample bias trend (kNN MI bias shrinks with ``n``).
    diagnostics:
        Guard trace; notes carry the bias/variance characterization.
    """

    capacity: float
    input_distribution: np.ndarray
    bits_per_symbol: float
    mean_time: float
    n_samples: int
    k: int
    iterations: int
    status: SolverStatus = SolverStatus.CONVERGED
    split_estimates: Tuple[float, float] = (float("nan"), float("nan"))
    half_sample_mi: float = float("nan")
    diagnostics: Optional[SolverDiagnostics] = None

    @property
    def split_spread(self) -> float:
        """Absolute spread of the even/odd split estimates (bits)."""
        return abs(self.split_estimates[0] - self.split_estimates[1])


def project_to_simplex(v: np.ndarray, floor: float = 0.0) -> np.ndarray:
    """Euclidean projection of *v* onto ``{p : p >= floor, sum p = 1}``.

    The standard sort-based simplex projection (Held–Wolfe–Crowder),
    shifted so every coordinate keeps at least *floor* mass. Requires
    ``floor * len(v) <= 1``.
    """
    arr = np.asarray(v, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("v must be a non-empty 1-D array")
    if floor < 0 or floor * arr.size > 1.0 + 1e-12:
        raise ValueError(
            f"floor {floor} infeasible for a {arr.size}-point simplex"
        )
    budget = 1.0 - floor * arr.size
    w = arr - floor
    u = np.sort(w)[::-1]
    css = np.cumsum(u) - budget
    rho = int(np.nonzero(u * np.arange(1, arr.size + 1) > css)[0][-1])
    theta = css[rho] / (rho + 1.0)
    return np.maximum(w - theta, 0.0) + floor


def _allocate_counts(
    p: np.ndarray, n: int, min_count: int
) -> np.ndarray:
    """Deterministic largest-remainder allocation of *n* draws.

    Every symbol receives at least *min_count* draws (the estimator
    needs more than ``k`` samples per class); the remaining budget is
    split proportionally to *p* with stable tie-breaking.
    """
    m = p.size
    budget = n - m * min_count
    if budget < 0:
        raise ValueError(
            f"n_samples={n} cannot give {m} symbols {min_count} draws each"
        )
    target = p / p.sum() * budget
    base = np.floor(target).astype(np.int64)
    remainder = target - base
    leftover = budget - int(base.sum())
    order = np.argsort(-remainder, kind="stable")
    base[order[:leftover]] += 1
    return base + min_count


def _draw_and_score(
    sampler: ChannelSampler,
    counts: np.ndarray,
    k: int,
    factory: RngFactory,
    tag: str,
    *,
    shuffle: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """One estimator evaluation: draw per-symbol samples, score them.

    Returns ``(x, contributions)``. All randomness comes from named
    substreams under *tag*, so every evaluation is replayable in
    isolation and the final evaluation never shares a stream with the
    search iterations.
    """
    x = np.repeat(np.arange(counts.size), counts)
    y = sampler.sample(x, factory.fresh(f"{tag}/sample"))
    if shuffle:
        perm = factory.fresh(f"{tag}/permute").permutation(x.size)
        x, y = x[perm], y[perm]
    xi = mixed_mi_contributions(
        x, y, k=k, rng=factory.fresh(f"{tag}/jitter")
    )
    return x, xi


def _symbol_means(
    x: np.ndarray, xi: np.ndarray, m: int
) -> np.ndarray:
    """Per-symbol means of the contributions — the gradient estimate."""
    sums = np.bincount(x, weights=xi, minlength=m)
    counts = np.bincount(x, minlength=m)
    return sums / np.maximum(counts, 1)


def _solve_sample_capacity(
    sampler: ChannelSampler,
    n_samples: int,
    seed: int,
    k: int,
    max_iter: int,
    tol: float,
    step_size: float,
    stall_window: int,
) -> SampleCapacityResult:
    m = sampler.num_symbols
    tau = np.asarray(sampler.symbol_durations(), dtype=float)
    if tau.shape != (m,) or np.any(tau <= 0) or not np.all(np.isfinite(tau)):
        raise ValueError("sampler durations must be positive and finite")
    min_count = k + 2
    if n_samples < 2 * m * min_count:
        raise ValueError(
            f"n_samples={n_samples} too small: need at least "
            f"{2 * m * min_count} for {m} symbols at k={k}"
        )
    floor = min_count / float(n_samples)
    factory = RngFactory(seed)
    p = np.full(m, 1.0 / m)
    guard = IterationGuard(
        SOLVER_NAME,
        max_iter=max_iter,
        tol=tol,
        stall_window=stall_window,
    )
    status: Optional[SolverStatus] = None
    with stage("estimation:optimize"):
        t = 0
        while status is None:
            counts = _allocate_counts(p, n_samples, min_count)
            x, xi = _draw_and_score(
                sampler, counts, k, factory, f"estimation/iter/{t}"
            )
            g = _symbol_means(x, xi, m)
            p_hat = counts / float(n_samples)
            mean_time = float(p_hat @ tau)
            rate = float(p_hat @ g) / mean_time
            grad = (g - rate * tau) / mean_time
            # Blahut–Arimoto optimality gap, per time unit: zero iff no
            # symbol's divergence-per-second beats the current rate.
            residual = max(0.0, float(np.max(grad)))
            status = guard.update(residual, value=p.copy())
            step = step_size / (1.0 + 0.1 * t)
            p = project_to_simplex(p + step * grad, floor)
            t += 1
    p_best = guard.best_value if guard.best_value is not None else p
    p_best = project_to_simplex(np.asarray(p_best, dtype=float), floor)

    # Fresh full-size evaluation at the chosen distribution: the
    # search's running values are an upward-biased max over noise and
    # are never reported.
    final_counts = _allocate_counts(p_best, n_samples, min_count)
    x, xi = _draw_and_score(
        sampler, final_counts, k, factory, "estimation/final", shuffle=True
    )
    info = float(np.mean(xi))
    mean_time = float((final_counts / float(n_samples)) @ tau)
    capacity = info / mean_time

    # Bias/variance characterization on deterministic subsample splits.
    split_even = float(np.mean(xi[0::2]))
    split_odd = float(np.mean(xi[1::2]))
    half = x.size // 2
    half_counts = np.bincount(x[:half], minlength=m)
    if np.all(half_counts > k):
        half_xi = mixed_mi_contributions(
            x[:half],
            sampler.sample(x[:half], factory.fresh("estimation/half/sample")),
            k=k,
            rng=factory.fresh("estimation/half/jitter"),
        )
        half_mi = float(np.mean(half_xi))
        half_note = f"half_sample_mi={half_mi:.6f}"
    else:
        half_mi = float("nan")
        half_note = "half_sample_mi=skipped_small_class"
    notes = (
        f"split_even={split_even:.6f}",
        f"split_odd={split_odd:.6f}",
        f"split_spread={abs(split_even - split_odd):.6f}",
        half_note,
        f"final_mi={info:.6f}",
    )
    record_status(SOLVER_NAME, status)
    return SampleCapacityResult(
        capacity=float(capacity),
        input_distribution=p_best,
        bits_per_symbol=info,
        mean_time=mean_time,
        n_samples=int(n_samples),
        k=int(k),
        iterations=guard.iterations,
        status=status,
        split_estimates=(split_even, split_odd),
        half_sample_mi=half_mi,
        diagnostics=guard.diagnostics(notes=notes),
    )


def _replay_sample_status(result: SampleCapacityResult) -> None:
    """Surface the stored terminal status on a warm store hit."""
    record_status(SOLVER_NAME, result.status)


def estimate_sample_capacity(
    sampler: ChannelSampler,
    *,
    n_samples: int = 4096,
    seed: int = 0,
    k: int = 8,
    max_iter: int = 40,
    tol: float = 5e-3,
    step_size: float = 0.25,
    stall_window: int = 12,
) -> SampleCapacityResult:
    """Estimate channel capacity from samples alone.

    Runs projected stochastic gradient ascent of the mixed KSG MI
    estimate over input distributions (see the module docstring for
    the full recipe). Deterministic: the same ``(sampler, n_samples,
    seed, k, knobs)`` always returns a bit-identical result, and when
    a result store is active the whole solve memoizes on exactly that
    tuple — a warm call replays from the store with zero optimizer
    iterations.

    Parameters
    ----------
    sampler:
        The channel, as a :class:`ChannelSampler` dataclass.
    n_samples:
        Channel uses per estimator evaluation. Must cover at least
        ``2 * num_symbols * (k + 2)`` draws; the kNN bias at the
        default ``k`` is ~0.01 bits at 4096 samples on the E17
        cross-validation channels.
    seed:
        Root seed of the :class:`repro.simulation.RngFactory` whose
        named substreams drive sampling, tie-break jitter, and the
        final-evaluation shuffle.
    k:
        Neighbour order of the mixed KSG estimator.
    max_iter, tol, step_size, stall_window:
        Search knobs: iteration cap, optimality-gap tolerance,
        initial step (decayed as ``1 / (1 + 0.1 t)``), and the guard's
        stall window.
    """
    params = {
        "sampler": sampler,
        "n_samples": int(n_samples),
        "seed": int(seed),
        "k": int(k),
        "max_iter": int(max_iter),
        "tol": float(tol),
        "step_size": float(step_size),
        "stall_window": int(stall_window),
    }

    def _solve(miss_indices: Sequence[int]) -> List[SampleCapacityResult]:
        return [
            _solve_sample_capacity(
                sampler,
                int(n_samples),
                int(seed),
                int(k),
                int(max_iter),
                float(tol),
                float(step_size),
                int(stall_window),
            )
            for _ in miss_indices
        ]

    (result,) = cached_batch(
        ESTIMATE_FN_ID,
        [params],
        _solve,
        fingerprint=code_fingerprint(_solve_sample_capacity),
        on_hit=_replay_sample_status,
    )
    return result
