"""Sample-based capacity estimation (Kraskov kNN mutual information).

The matrix-based estimators (`repro.infotheory`, `repro.timing`) need
an enumerable channel; this package prices channels we can only *draw
from*. :mod:`repro.estimation.knn` hosts the KSG mutual-information
estimators (continuous KSG1 and the discrete/continuous mixed variant)
on ``scipy.spatial.cKDTree`` with deterministic tie-breaking jitter;
:mod:`repro.estimation.samplers` adapts the repository's channel
models to the :class:`ChannelSampler` draw protocol; and
:mod:`repro.estimation.optimize` maximizes the estimated MI over input
distributions — projected stochastic gradient on the simplex under an
:class:`repro.numerics.IterationGuard` — to produce capacity numbers
for channels Blahut–Arimoto cannot touch (experiment E17).

All ``cKDTree`` usage in the repository lives inside this package
(lint rule EST001), so every kNN query flows through the guarded,
cached entry points.
"""

from .knn import (
    ksg_mutual_information,
    ksg_mutual_information_reference,
    mixed_mi_contributions,
    mixed_mutual_information,
    mixed_mutual_information_reference,
    tie_break_jitter,
)
from .optimize import (
    SampleCapacityResult,
    estimate_sample_capacity,
    project_to_simplex,
)
from .samplers import (
    ChannelSampler,
    DMCSampler,
    PacketGapSampler,
    SchedulerTimingSampler,
    TimedDMCSampler,
    bsc_sampler,
    mary_sampler,
)

__all__ = [
    "ksg_mutual_information",
    "ksg_mutual_information_reference",
    "mixed_mi_contributions",
    "mixed_mutual_information",
    "mixed_mutual_information_reference",
    "tie_break_jitter",
    "SampleCapacityResult",
    "estimate_sample_capacity",
    "project_to_simplex",
    "ChannelSampler",
    "DMCSampler",
    "PacketGapSampler",
    "SchedulerTimingSampler",
    "TimedDMCSampler",
    "bsc_sampler",
    "mary_sampler",
]
