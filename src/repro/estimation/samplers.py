"""Channel samplers: turning models into ``(x, y)`` sample sources.

The kNN capacity estimator (:mod:`repro.estimation.optimize`) never
sees a transition matrix — it sees draws. A :class:`ChannelSampler` is
the contract between the two worlds: given an array of input symbols
and an RNG, produce the channel's observable output for each symbol.
Adapters here wrap the repository's existing channel models:

* :class:`DMCSampler` / :class:`TimedDMCSampler` — enumerable DMCs
  (optionally with per-input symbol durations, the
  :func:`repro.timing.timed_dmc_capacity` setting), used by experiment
  E17 to cross-validate the sample path against Blahut–Arimoto ground
  truth;
* :class:`SchedulerTimingSampler` — the §3.1 uniprocessor
  burst-length timing channel of
  :func:`repro.os_model.simulate_timing_channel`: the output is the
  preemption-stretched gap the receiver observes, a channel with a
  countably infinite output alphabet that no enumerable estimator in
  the repo can touch;
* :class:`PacketGapSampler` — the network packet-timing channel of
  :func:`repro.network.transmit_flow`: outputs are receiver-side
  inter-arrival gaps, with lost packets surfacing as merged gaps.

Samplers are frozen dataclasses built from plain tuples, so they feed
directly into :func:`repro.store.canonical_key` — the sampler value
*is* the cache fingerprint of the channel being estimated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.events import ChannelEvent
from ..infotheory.probability import validate_probability
from ..network.packet_channel import PacketFlowConfig, transmit_flow
from ..os_model.timing_channel import TimingChannelConfig

try:  # Python 3.9 compatibility: Protocol with runtime_checkable
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - 3.9+ always has these
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls


__all__ = [
    "ChannelSampler",
    "DMCSampler",
    "TimedDMCSampler",
    "SchedulerTimingSampler",
    "PacketGapSampler",
    "bsc_sampler",
    "mary_sampler",
]


@runtime_checkable
class ChannelSampler(Protocol):
    """One memoryless use of a channel, as a sample source.

    Implementations must be deterministic functions of ``(symbols,
    rng)`` — all randomness comes from the generator the caller hands
    in, so the estimation pipeline replays bit-identically from a seed.
    Implementations are frozen dataclasses: their field values identify
    the channel for caching (:func:`repro.store.canonical_key`).
    """

    @property
    def num_symbols(self) -> int:
        """Size of the input alphabet."""
        ...  # pragma: no cover - protocol stub

    def symbol_durations(self) -> np.ndarray:
        """Expected channel-occupation time of each input symbol.

        All ones for untimed channels; the capacity optimizer then
        maximizes plain MI. Anything non-uniform turns the objective
        into bits per time unit, ``I(p) / sum_x p(x) tau(x)``.
        """
        ...  # pragma: no cover - protocol stub

    def sample(
        self, symbols: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Channel output for each input symbol, shape ``(n,)`` float."""
        ...  # pragma: no cover - protocol stub


def _coerce_rows(transition: Sequence[Sequence[float]]) -> Tuple[Tuple[float, ...], ...]:
    rows = tuple(tuple(float(v) for v in row) for row in transition)
    if not rows or any(len(row) != len(rows[0]) for row in rows):
        raise ValueError("transition must be a non-empty rectangular matrix")
    for row in rows:
        if any(not np.isfinite(v) or v < 0 for v in row):
            raise ValueError("transition entries must be finite and >= 0")
        if abs(sum(row) - 1.0) > 1e-9:
            raise ValueError("transition rows must sum to 1")
    return rows


@dataclass(frozen=True)
class DMCSampler:
    """Draws from an enumerable DMC ``P(y|x)`` — the ground-truth rig.

    The output is the discrete received symbol (as a float; the
    estimator's tie-breaking jitter handles the repeated values). Used
    to cross-validate the sample-based pipeline against Blahut–Arimoto
    on the very same matrix.
    """

    transition: Tuple[Tuple[float, ...], ...]

    def __init__(self, transition: Sequence[Sequence[float]]) -> None:
        object.__setattr__(self, "transition", _coerce_rows(transition))

    @property
    def num_symbols(self) -> int:
        return len(self.transition)

    def transition_matrix(self) -> np.ndarray:
        """The ``(nx, ny)`` row-stochastic matrix as an array."""
        return np.asarray(self.transition, dtype=float)

    def symbol_durations(self) -> np.ndarray:
        return np.ones(self.num_symbols)

    def sample(
        self, symbols: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        w = self.transition_matrix()
        cdf = np.cumsum(w, axis=1)
        u = rng.random(symbols.size)
        # Inverse-CDF draw per symbol: one searchsorted per row class.
        out = np.empty(symbols.size, dtype=float)
        for s in range(self.num_symbols):
            mask = symbols == s
            if np.any(mask):
                out[mask] = np.searchsorted(cdf[s], u[mask], side="right")
        return np.minimum(out, w.shape[1] - 1)


@dataclass(frozen=True)
class TimedDMCSampler:
    """A :class:`DMCSampler` whose inputs occupy the channel unequally.

    The durations turn the estimation objective into bits per time
    unit — the :func:`repro.timing.timed_dmc_capacity` fractional
    program, solved here from samples instead of the matrix.
    """

    transition: Tuple[Tuple[float, ...], ...]
    durations: Tuple[float, ...]

    def __init__(
        self,
        transition: Sequence[Sequence[float]],
        durations: Sequence[float],
    ) -> None:
        rows = _coerce_rows(transition)
        taus = tuple(float(t) for t in durations)
        if len(taus) != len(rows):
            raise ValueError("durations must match the input alphabet")
        if any(not np.isfinite(t) or t <= 0 for t in taus):
            raise ValueError("durations must be positive and finite")
        object.__setattr__(self, "transition", rows)
        object.__setattr__(self, "durations", taus)

    @property
    def num_symbols(self) -> int:
        return len(self.transition)

    def transition_matrix(self) -> np.ndarray:
        return np.asarray(self.transition, dtype=float)

    def symbol_durations(self) -> np.ndarray:
        return np.asarray(self.durations, dtype=float)

    def sample(
        self, symbols: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return DMCSampler(self.transition).sample(symbols, rng)


@dataclass(frozen=True)
class SchedulerTimingSampler:
    """The uniprocessor burst-length timing channel, §3.1 substrate.

    Input symbol ``s`` holds the CPU for ``burst_durations[s]`` quanta;
    the observable is the gap the receiver counts, stretched by a
    negative-binomial number of stolen quanta (probability
    ``preempt_prob`` per quantum) — the exact noise process of
    :func:`repro.os_model.simulate_timing_channel`, exposed symbol by
    symbol. The output alphabet is countably infinite, so this channel
    has no transition matrix to hand Blahut–Arimoto: the kNN path is
    the first estimator in the repo that can price it.

    ``symbol_durations`` accounts time the way the simulator's quanta
    counter does: the *expected* stretched gap ``hold / (1 - q)`` plus
    the receiver's own sampling quantum.
    """

    burst_durations: Tuple[int, ...]
    preempt_prob: float = 0.0

    def __init__(
        self, burst_durations: Sequence[int], preempt_prob: float = 0.0
    ) -> None:
        # Reuse the simulator's config validation so sampler and
        # simulator can never disagree about what is a legal channel.
        config = TimingChannelConfig(burst_durations, preempt_prob)
        object.__setattr__(self, "burst_durations", config.durations)
        object.__setattr__(self, "preempt_prob", config.preempt_prob)
        self.__post_init__()

    def __post_init__(self) -> None:
        validate_probability(self.preempt_prob, "preempt_prob")

    @property
    def num_symbols(self) -> int:
        return len(self.burst_durations)

    def symbol_durations(self) -> np.ndarray:
        holds = np.asarray(self.burst_durations, dtype=float)
        return holds / (1.0 - self.preempt_prob) + 1.0

    def sample(
        self, symbols: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        holds = np.asarray(self.burst_durations, dtype=np.int64)[symbols]
        if self.preempt_prob:
            stretch = rng.negative_binomial(holds, 1.0 - self.preempt_prob)
        else:
            stretch = np.zeros_like(holds)
        return (holds + stretch).astype(float)


@dataclass(frozen=True)
class PacketGapSampler:
    """The network packet-timing channel, receiver's-eye view.

    Sends the requested symbols as one flow through
    :func:`repro.network.transmit_flow` and reads back, for each sent
    symbol, the inter-arrival gap the receiver attributes to it. A
    lost packet merges gaps: the deleted symbol (and any run of
    deleted predecessors) maps to the long merged gap that absorbed
    it — which is exactly the observable the receiver has.

    Duplicates inject extra gaps whose position in the arrival order
    cannot be attributed to a sent symbol without ground truth, so the
    per-symbol alignment is only exact for ``duplicate_prob == 0``
    (the same caveat experiment E13 records for its event labels).
    Keep duplicates off for capacity estimation.
    """

    gap_durations: Tuple[float, ...]
    loss_prob: float = 0.0
    jitter_std: float = 0.0

    def __init__(
        self,
        gap_durations: Sequence[float],
        loss_prob: float = 0.0,
        jitter_std: float = 0.0,
    ) -> None:
        config = PacketFlowConfig(
            gap_durations, loss_prob=loss_prob, jitter_std=jitter_std
        )
        object.__setattr__(self, "gap_durations", config.gap_durations)
        object.__setattr__(self, "loss_prob", config.loss_prob)
        object.__setattr__(self, "jitter_std", config.jitter_std)
        self.__post_init__()

    def __post_init__(self) -> None:
        validate_probability(self.loss_prob, "loss_prob")

    @property
    def num_symbols(self) -> int:
        return len(self.gap_durations)

    def flow_config(self) -> PacketFlowConfig:
        """The equivalent :class:`repro.network.PacketFlowConfig`."""
        return PacketFlowConfig(
            self.gap_durations,
            loss_prob=self.loss_prob,
            duplicate_prob=0.0,
            jitter_std=self.jitter_std,
        )

    def symbol_durations(self) -> np.ndarray:
        return np.asarray(self.gap_durations, dtype=float)

    def sample(
        self, symbols: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        record = transmit_flow(symbols, self.flow_config(), rng)
        events = record.events[: symbols.size]
        gaps = record.observed_gaps
        out = np.empty(symbols.size, dtype=float)
        pending = []  # deleted symbols awaiting their merged gap
        obs = 0
        for k in range(symbols.size):
            if events[k] == int(ChannelEvent.DELETION):
                pending.append(k)
                continue
            gap = float(gaps[obs])
            obs += 1
            out[k] = gap
            for j in pending:
                out[j] = gap
            pending.clear()
        if pending:
            # Trailing deletions: the flow simply ends early; the
            # receiver's best observable is the final gap (0 when the
            # whole flow vanished).
            tail = float(gaps[-1]) if gaps.size else 0.0
            for j in pending:
                out[j] = tail
        return out


def bsc_sampler(crossover: float) -> DMCSampler:
    """Binary symmetric channel sampler with the given crossover."""
    p = validate_probability(crossover, "crossover")
    return DMCSampler([[1.0 - p, p], [p, 1.0 - p]])


def mary_sampler(num_symbols: int, error_prob: float = 0.0) -> DMCSampler:
    """M-ary symmetric channel: correct w.p. ``1 - e``, else uniform.

    With ``error_prob == 0`` this is the noiseless M-ary channel whose
    capacity ``log2 M`` anchors the estimator property suite.
    """
    if num_symbols < 2:
        raise ValueError("need at least 2 symbols")
    e = validate_probability(error_prob, "error_prob")
    off = e / (num_symbols - 1)
    rows = [
        [1.0 - e if i == j else off for j in range(num_symbols)]
        for i in range(num_symbols)
    ]
    return DMCSampler(rows)
