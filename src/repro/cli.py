"""Command-line interface.

::

    repro-covert list                    # list experiments
    repro-covert run E3 [--seed 7]       # run one experiment
    repro-covert run all                 # run every experiment
    repro-covert estimate --pd 0.1 --pi 0.05 --bits 4
    repro-covert bounds --pd 0.1 --pi 0.05 --bits 4
    repro-covert faults list             # named fault scenarios
    repro-covert faults run bursty_loss  # stress one scenario
    repro-covert lint                    # invariant linter (repro.analysis)
    repro-covert lint --rule PROB001 --format json
    repro-covert store ls                # content-addressed result store
    repro-covert store gc --max-age-days 30 --max-bytes 100000000

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.estimation import CapacityEstimator
from .core.events import ChannelParameters
from .core.theorems import THEOREMS, capacity_bracket
from .experiments.registry import EXPERIMENTS, run_all, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-covert",
        description=(
            "Reproduction of 'Capacity Estimation of Non-Synchronous "
            "Covert Channels' (Wang & Lee, ICDCS 2005)"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run an experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id (E1..E9) or 'all'")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for Monte-Carlo replications (experiments "
        "that accept it; results are bit-identical to --workers 1)",
    )
    run_p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="output_format",
        help="result output format (default: text tables)",
    )

    est_p = sub.add_parser("estimate", help="paper-recipe capacity estimate")
    est_p.add_argument("--pd", type=float, required=True, help="deletion prob")
    est_p.add_argument("--pi", type=float, default=0.0, help="insertion prob")
    est_p.add_argument("--bits", type=int, default=1, help="bits per symbol")
    est_p.add_argument(
        "--physical",
        type=float,
        default=None,
        help="traditional physical capacity to correct (optional)",
    )

    bounds_p = sub.add_parser("bounds", help="Theorem 4/5 capacity bracket")
    bounds_p.add_argument("--pd", type=float, required=True)
    bounds_p.add_argument("--pi", type=float, default=0.0)
    bounds_p.add_argument("--bits", type=int, default=1)

    sub.add_parser("theorems", help="print the paper's theorem statements")

    faults_p = sub.add_parser(
        "faults", help="fault-injection scenarios (repro.faults)"
    )
    faults_sub = faults_p.add_subparsers(dest="faults_command")
    faults_sub.add_parser("list", help="list registered fault scenarios")
    faults_run_p = faults_sub.add_parser(
        "run", help="run the hardened counter protocol under one scenario"
    )
    faults_run_p.add_argument("scenario", help="scenario name (see 'faults list')")
    faults_run_p.add_argument("--pd", type=float, default=0.1)
    faults_run_p.add_argument("--pi", type=float, default=0.05)
    faults_run_p.add_argument("--bits", type=int, default=3)
    faults_run_p.add_argument("--symbols", type=int, default=25_000)
    faults_run_p.add_argument("--seed", type=int, default=0)

    lint_p = sub.add_parser(
        "lint", help="run the repro.analysis invariant linter"
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the whole project, "
        "including registry/API completeness checks)",
    )
    lint_p.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule id (repeatable; e.g. --rule PROB001)",
    )
    lint_p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="output_format",
        help="findings output format (default: text)",
    )

    store_p = sub.add_parser(
        "store", help="content-addressed result store (repro.store)"
    )
    store_sub = store_p.add_subparsers(dest="store_command")
    store_ls_p = store_sub.add_parser("ls", help="list stored entries")
    store_inspect_p = store_sub.add_parser(
        "inspect", help="print one entry's provenance manifest"
    )
    store_inspect_p.add_argument(
        "key", help="entry key (a unique prefix suffices)"
    )
    store_gc_p = store_sub.add_parser(
        "gc", help="evict entries by age and/or size budget"
    )
    store_gc_p.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="evict entries created more than this many days ago",
    )
    store_gc_p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict least-recently-used entries until the store fits",
    )
    store_gc_p.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    store_verify_p = store_sub.add_parser(
        "verify", help="re-hash every payload against its manifest"
    )
    store_stats_p = store_sub.add_parser(
        "stats", help="entry counts, bytes, and recorded solve time"
    )
    for p in (
        store_ls_p, store_inspect_p, store_gc_p, store_verify_p, store_stats_p
    ):
        p.add_argument(
            "--dir",
            default=None,
            dest="store_dir",
            help="store directory (default: the REPRO_STORE_DIR store)",
        )

    report_p = sub.add_parser(
        "report", help="run all experiments and write a results file"
    )
    report_p.add_argument("--output", default="experiment_results.txt")
    report_p.add_argument("--seed", type=int, default=0)

    fig_p = sub.add_parser(
        "figures", help="render the paper's figures and curves as text"
    )
    fig_p.add_argument(
        "number", nargs="?", type=int, default=None,
        help="figure number 1-5 (default: all, plus the curves)",
    )
    return parser


def _cmd_list() -> int:
    for key in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[key].__module__ or "").rsplit(".", 1)[-1]
        print(f"{key}: {doc}")
    return 0


def _cmd_run(
    experiment: str, seed: int, workers: int = 1, output_format: str = "text"
) -> int:
    if experiment.lower() == "all":
        results = run_all(seed=seed, workers=workers)
    else:
        results = [
            run_experiment(
                experiment,
                **_runner_kwargs(experiment, seed=seed, workers=workers),
            )
        ]
    failures = sum(0 if result.passed else 1 for result in results)
    if output_format == "json":
        import json

        print(json.dumps([r.to_dict() for r in results], indent=2))
    else:
        for result in results:
            print(result.summary())
            print()
    return 1 if failures else 0


def _runner_kwargs(experiment: str, **kwargs) -> dict:
    """Keep only the kwargs the experiment's ``run`` signature accepts
    (``seed``/``workers`` are meaningless to the deterministic tables)."""
    runner = EXPERIMENTS[experiment.upper()]
    names = runner.__code__.co_varnames[
        : runner.__code__.co_argcount + runner.__code__.co_kwonlyargcount
    ]
    return {k: v for k, v in kwargs.items() if k in names}


def _cmd_estimate(pd: float, pi: float, bits: int, physical: Optional[float]) -> int:
    params = ChannelParameters.from_rates(deletion=pd, insertion=pi)
    estimator = CapacityEstimator(bits, physical_capacity=physical)
    print(estimator.estimate(params).summary())
    return 0


def _cmd_bounds(pd: float, pi: float, bits: int) -> int:
    lower, upper = capacity_bracket(bits, pd, pi)
    print(f"Theorem 5 lower bound : {lower:.6f} bits/sender-slot")
    print(f"Theorem 4 upper bound : {upper:.6f} bits/use")
    print(f"bracket width         : {upper - lower:.6f}")
    return 0


def _cmd_report(output: str, seed: int) -> int:
    """Run every experiment and write the tables to *output*."""
    results = run_all(seed=seed)
    lines = [
        "Experiment results — 'Capacity Estimation of Non-Synchronous "
        "Covert Channels' reproduction",
        f"(seed {seed}; regenerate with: repro-covert report --seed {seed})",
        "",
    ]
    failures = 0
    for result in results:
        lines.append(result.summary())
        lines.append("")
        failures += 0 if result.passed else 1
    lines.append(
        f"{len(results) - failures}/{len(results)} experiments passed."
    )
    with open(output, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines))
    print(f"wrote {output} ({len(results)} experiments, "
          f"{failures} failures)")
    return 1 if failures else 0


def _cmd_figures(number: Optional[int]) -> int:
    from .experiments.figures import (
        FIGURES,
        convergence_figure,
        rate_figure,
        render_figure,
    )

    if number is not None:
        print(render_figure(number))
        return 0
    for k in sorted(FIGURES):
        print(render_figure(k))
        print()
    print(convergence_figure())
    print()
    print(rate_figure())
    return 0


def _cmd_faults_list() -> int:
    from .faults.scenarios import list_scenarios

    for scenario in list_scenarios():
        print(f"{scenario.name}: {scenario.description}")
    return 0


def _cmd_faults_run(
    scenario: str, pd: float, pi: float, bits: int, symbols: int, seed: int
) -> int:
    from .faults.injector import run_under_faults
    from .faults.scenarios import get_scenario
    from .simulation.rng import make_rng
    from .sync.feedback import CounterProtocol

    params = ChannelParameters.from_rates(deletion=pd, insertion=pi)
    injector = get_scenario(scenario).build(params, seed=seed)
    rng = make_rng(seed)
    message = rng.integers(0, 2**bits, symbols)
    fm = run_under_faults(
        CounterProtocol(params, bits_per_symbol=bits), message, rng, injector
    )
    print(f"scenario           : {scenario}")
    print(f"completed          : {fm.completed}")
    print(f"degraded           : {fm.run.degraded}")
    print(f"empirical P_d      : {fm.empirical_params.deletion:.4f}")
    print(f"empirical P_i      : {fm.empirical_params.insertion:.4f}")
    print(f"rate (bits/use)    : {fm.information_rate_per_use:.4f}")
    print(f"bound N(1-P̂_d)     : {fm.empirical_erasure_bound:.4f}")
    print(f"within bound       : {fm.within_bound}")
    if fm.fault_counts:
        print("fault counts       :")
        for name in sorted(fm.fault_counts):
            print(f"  {name}: {fm.fault_counts[name]}")
    return 0 if (fm.completed and fm.within_bound) else 1


def _cmd_lint(
    paths: List[str], rules: Optional[List[str]], output_format: str
) -> int:
    from .analysis import (
        UnknownRuleError,
        format_json,
        format_text,
        lint_paths,
        lint_project,
    )

    try:
        if paths:
            findings = lint_paths(paths, rule_ids=rules)
        else:
            findings = lint_project(rule_ids=rules)
    except UnknownRuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if output_format == "json":
        print(format_json(findings))
    else:
        print(format_text(findings))
    return 1 if findings else 0


def _open_store(store_dir: Optional[str]):
    """Resolve the CLI's target store or exit with a clear message."""
    from .store import StoreError, resolve_store

    try:
        return resolve_store(store_dir)
    except (StoreError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_store_ls(store_dir: Optional[str]) -> int:
    store = _open_store(store_dir)
    if store is None:
        return 2
    entries = list(store.entries())
    if not entries:
        print(f"store {store.root}: empty")
        return 0
    for entry in entries:
        print(
            f"{entry.key[:16]}  {entry.fn_id:<24} "
            f"{entry.nbytes:>8d} B  {entry.compute_seconds:8.3f} s"
        )
    print(f"{len(entries)} entries in {store.root}")
    return 0


def _cmd_store_inspect(store_dir: Optional[str], key: str) -> int:
    import json

    store = _open_store(store_dir)
    if store is None:
        return 2
    matches = [k for k in store.keys() if k.startswith(key)]
    if not matches:
        print(f"error: no entry matches {key!r}", file=sys.stderr)
        return 2
    if len(matches) > 1:
        print(
            f"error: {key!r} is ambiguous ({len(matches)} entries); "
            "use a longer prefix",
            file=sys.stderr,
        )
        return 2
    manifest_path = store.path_for(matches[0]) / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: unreadable manifest for {matches[0]}: {exc!r}",
              file=sys.stderr)
        return 2
    print(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def _cmd_store_gc(
    store_dir: Optional[str],
    max_age_days: Optional[float],
    max_bytes: Optional[int],
    dry_run: bool,
) -> int:
    store = _open_store(store_dir)
    if store is None:
        return 2
    evicted = store.gc(
        max_age_seconds=(
            None if max_age_days is None else max_age_days * 86_400.0
        ),
        max_total_bytes=max_bytes,
        dry_run=dry_run,
    )
    verb = "would evict" if dry_run else "evicted"
    print(f"{verb} {len(evicted)} entries from {store.root}")
    for key in evicted:
        print(f"  {key}")
    return 0


def _cmd_store_verify(store_dir: Optional[str]) -> int:
    store = _open_store(store_dir)
    if store is None:
        return 2
    issues = store.verify()
    if not issues:
        print(f"store {store.root}: all entries verify")
        return 0
    for issue in issues:
        print(f"{issue.key[:16]}  {issue.problem}")
    print(f"{len(issues)} problems in {store.root}")
    return 1


def _cmd_store_stats(store_dir: Optional[str]) -> int:
    store = _open_store(store_dir)
    if store is None:
        return 2
    stats = store.stats()
    print(f"store      : {store.root}")
    print(f"entries    : {stats.entries}")
    print(f"total bytes: {stats.total_bytes}")
    print(f"solve time : {stats.compute_seconds_total:.3f} s recorded")
    for fn_id in sorted(stats.entries_by_fn):
        print(
            f"  {fn_id:<24} {stats.entries_by_fn[fn_id]:>5d} entries  "
            f"{stats.compute_seconds_by_fn[fn_id]:10.3f} s"
        )
    return 0


def _cmd_theorems() -> int:
    for number in sorted(THEOREMS):
        t = THEOREMS[number]
        print(f"Theorem {t.number} ({t.title}):")
        print(f"  {t.statement}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiment, args.seed, args.workers, args.output_format
        )
    if args.command == "estimate":
        return _cmd_estimate(args.pd, args.pi, args.bits, args.physical)
    if args.command == "bounds":
        return _cmd_bounds(args.pd, args.pi, args.bits)
    if args.command == "theorems":
        return _cmd_theorems()
    if args.command == "faults":
        if args.faults_command == "list":
            return _cmd_faults_list()
        if args.faults_command == "run":
            return _cmd_faults_run(
                args.scenario, args.pd, args.pi, args.bits, args.symbols, args.seed
            )
        print("usage: repro-covert faults {list,run} ...")
        return 2
    if args.command == "store":
        if args.store_command == "ls":
            return _cmd_store_ls(args.store_dir)
        if args.store_command == "inspect":
            return _cmd_store_inspect(args.store_dir, args.key)
        if args.store_command == "gc":
            return _cmd_store_gc(
                args.store_dir, args.max_age_days, args.max_bytes,
                args.dry_run,
            )
        if args.store_command == "verify":
            return _cmd_store_verify(args.store_dir)
        if args.store_command == "stats":
            return _cmd_store_stats(args.store_dir)
        print("usage: repro-covert store {ls,inspect,gc,verify,stats} ...")
        return 2
    if args.command == "lint":
        return _cmd_lint(args.paths, args.rules, args.output_format)
    if args.command == "report":
        return _cmd_report(args.output, args.seed)
    if args.command == "figures":
        return _cmd_figures(args.number)
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
