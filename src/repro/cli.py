"""Command-line interface.

::

    repro-covert list                    # list experiments
    repro-covert run E3 [--seed 7]       # run one experiment
    repro-covert run E4 --budget 30      # cap Monte-Carlo wall-clock
    repro-covert run all                 # run every experiment
    repro-covert estimate --pd 0.1 --pi 0.05 --bits 4
    repro-covert estimate --sampler bsc --pd 0.1 --samples 4096
    repro-covert bounds --pd 0.1 --pi 0.05 --bits 4
    repro-covert faults list             # named fault scenarios
    repro-covert faults run bursty_loss  # stress one scenario
    repro-covert lint                    # invariant linter (repro.analysis)
    repro-covert lint --rule PROB001 --format json
    repro-covert lint --graph            # + whole-program effect analysis
    repro-covert graph calls <function>  # resolved call edges
    repro-covert graph effects <function>  # transitive effect set
    repro-covert graph why <function> clock  # call-chain witness
    repro-covert store ls                # content-addressed result store
    repro-covert store gc --max-age-days 30 --max-bytes 100000000
    repro-covert service run --scenario chaos   # fault-injected load test
    repro-covert service stats           # breaker/shed/retry counters
    repro-covert service replay --n 500  # determinism check (two passes)

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.estimation import CapacityEstimator
from .core.events import ChannelParameters
from .core.theorems import THEOREMS, capacity_bracket
from .experiments.registry import EXPERIMENTS, run_all, run_experiment
from .service.query import SAMPLER_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-covert",
        description=(
            "Reproduction of 'Capacity Estimation of Non-Synchronous "
            "Covert Channels' (Wang & Lee, ICDCS 2005)"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run an experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id (E1..E9) or 'all'")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for Monte-Carlo replications (experiments "
        "that accept it; results are bit-identical to --workers 1)",
    )
    run_p.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for Monte-Carlo replication phases; an "
        "exhausted budget checkpoints completed work and stops early "
        "(experiments that accept it)",
    )
    run_p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="output_format",
        help="result output format (default: text tables)",
    )

    est_p = sub.add_parser(
        "estimate",
        help="capacity estimate: paper recipe, or kNN sampling "
        "with --sampler",
    )
    est_p.add_argument(
        "--pd",
        type=float,
        required=True,
        help="deletion prob (with --sampler: the channel's noise knob)",
    )
    est_p.add_argument("--pi", type=float, default=0.0, help="insertion prob")
    est_p.add_argument("--bits", type=int, default=1, help="bits per symbol")
    est_p.add_argument(
        "--physical",
        type=float,
        default=None,
        help="traditional physical capacity to correct (optional)",
    )
    est_p.add_argument(
        "--sampler",
        choices=list(SAMPLER_NAMES),
        default=None,
        help="estimate from samples via the Kraskov kNN pipeline "
        "(repro.estimation) instead of the closed-form recipe",
    )
    est_p.add_argument(
        "--samples",
        type=int,
        default=4096,
        help="channel uses per kNN estimator evaluation",
    )
    est_p.add_argument(
        "--seed", type=int, default=0, help="kNN estimation RNG seed"
    )

    bounds_p = sub.add_parser("bounds", help="Theorem 4/5 capacity bracket")
    bounds_p.add_argument("--pd", type=float, required=True)
    bounds_p.add_argument("--pi", type=float, default=0.0)
    bounds_p.add_argument("--bits", type=int, default=1)

    sub.add_parser("theorems", help="print the paper's theorem statements")

    faults_p = sub.add_parser(
        "faults", help="fault-injection scenarios (repro.faults)"
    )
    faults_sub = faults_p.add_subparsers(dest="faults_command")
    faults_sub.add_parser("list", help="list registered fault scenarios")
    faults_run_p = faults_sub.add_parser(
        "run", help="run the hardened counter protocol under one scenario"
    )
    faults_run_p.add_argument("scenario", help="scenario name (see 'faults list')")
    faults_run_p.add_argument("--pd", type=float, default=0.1)
    faults_run_p.add_argument("--pi", type=float, default=0.05)
    faults_run_p.add_argument("--bits", type=int, default=3)
    faults_run_p.add_argument("--symbols", type=int, default=25_000)
    faults_run_p.add_argument("--seed", type=int, default=0)

    lint_p = sub.add_parser(
        "lint", help="run the repro.analysis invariant linter"
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the whole project, "
        "including registry/API completeness checks)",
    )
    lint_p.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule id (repeatable; e.g. --rule PROB001)",
    )
    lint_p.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        dest="output_format",
        help="findings output format (default: text)",
    )
    lint_p.add_argument(
        "--graph",
        action="store_true",
        help="also run the whole-program GRAPH rules (cache purity, "
        "pool picklability, transitive clock reachability); project "
        "mode only",
    )

    graph_p = sub.add_parser(
        "graph",
        help="whole-program call-graph and effect analysis "
        "(repro.analysis.graph)",
    )
    graph_sub = graph_p.add_subparsers(dest="graph_command")
    graph_calls_p = graph_sub.add_parser(
        "calls", help="resolved call edges of one function"
    )
    graph_calls_p.add_argument(
        "function",
        help="fully qualified name, or an unambiguous suffix "
        "(e.g. ExperimentRunner._run_parallel)",
    )
    graph_effects_p = graph_sub.add_parser(
        "effects", help="direct and transitive effect set of a function"
    )
    graph_effects_p.add_argument("function")
    graph_why_p = graph_sub.add_parser(
        "why",
        help="call-chain witness: how a function reaches an effect",
    )
    graph_why_p.add_argument("function")
    graph_why_p.add_argument(
        "effect",
        help="effect to explain: rng, clock, filesystem, env, network, "
        "global_mutation, stdout, unknown",
    )

    store_p = sub.add_parser(
        "store", help="content-addressed result store (repro.store)"
    )
    store_sub = store_p.add_subparsers(dest="store_command")
    store_ls_p = store_sub.add_parser("ls", help="list stored entries")
    store_inspect_p = store_sub.add_parser(
        "inspect", help="print one entry's provenance manifest"
    )
    store_inspect_p.add_argument(
        "key", help="entry key (a unique prefix suffices)"
    )
    store_gc_p = store_sub.add_parser(
        "gc", help="evict entries by age and/or size budget"
    )
    store_gc_p.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="evict entries created more than this many days ago",
    )
    store_gc_p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict least-recently-used entries until the store fits",
    )
    store_gc_p.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    store_verify_p = store_sub.add_parser(
        "verify", help="re-hash every payload against its manifest"
    )
    store_stats_p = store_sub.add_parser(
        "stats", help="entry counts, bytes, and recorded solve time"
    )
    for p in (
        store_ls_p, store_inspect_p, store_gc_p, store_verify_p, store_stats_p
    ):
        p.add_argument(
            "--dir",
            default=None,
            dest="store_dir",
            help="store directory (default: the REPRO_STORE_DIR store)",
        )

    service_p = sub.add_parser(
        "service", help="resilient capacity-query service (repro.service)"
    )
    service_sub = service_p.add_subparsers(dest="service_command")

    def _add_service_knobs(p: argparse.ArgumentParser, n_default: int) -> None:
        p.add_argument(
            "--n", type=int, default=n_default, dest="n_queries",
            help=f"trace length (default: {n_default})",
        )
        p.add_argument(
            "--scenario", default="none",
            help="fault scenario (see 'service scenarios'; default: none)",
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--workers", type=int, default=2,
            help="worker processes in the supervised pool",
        )
        p.add_argument(
            "--concurrency", type=int, default=256,
            help="concurrent client submissions",
        )
        p.add_argument(
            "--queue-limit", type=int, default=128,
            help="admission-control queue bound (shed ladder engages "
            "as the queue fills)",
        )
        p.add_argument("--batch-size", type=int, default=32)
        p.add_argument(
            "--deadline", type=float, default=5.0,
            help="per-query deadline in seconds (default: 5.0)",
        )

    service_run_p = service_sub.add_parser(
        "run",
        help="fault-injected load test: every query must terminate in "
        "exactly one status",
    )
    _add_service_knobs(service_run_p, 10_000)
    service_run_p.add_argument(
        "--format", choices=["text", "json"], default="text",
        dest="output_format",
    )
    service_run_p.add_argument(
        "--output", default=None,
        help="also write the JSON report to this file",
    )
    service_stats_p = service_sub.add_parser(
        "stats",
        help="serve a short trace and print the observability snapshot "
        "(breaker, shed, retry, store counters)",
    )
    _add_service_knobs(service_stats_p, 500)
    service_stats_p.add_argument(
        "--format", choices=["text", "json"], default="text",
        dest="output_format",
    )
    service_replay_p = service_sub.add_parser(
        "replay",
        help="serve the same deterministic trace twice and verify the "
        "answers are identical",
    )
    _add_service_knobs(service_replay_p, 500)
    service_sub.add_parser(
        "scenarios", help="list the named service fault scenarios"
    )

    report_p = sub.add_parser(
        "report", help="run all experiments and write a results file"
    )
    report_p.add_argument("--output", default="experiment_results.txt")
    report_p.add_argument("--seed", type=int, default=0)

    fig_p = sub.add_parser(
        "figures", help="render the paper's figures and curves as text"
    )
    fig_p.add_argument(
        "number", nargs="?", type=int, default=None,
        help="figure number 1-5 (default: all, plus the curves)",
    )
    return parser


def _cmd_list() -> int:
    for key in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[key].__module__ or "").rsplit(".", 1)[-1]
        print(f"{key}: {doc}")
    return 0


def _cmd_run(
    experiment: str,
    seed: int,
    workers: int = 1,
    output_format: str = "text",
    budget: Optional[float] = None,
) -> int:
    if experiment.lower() == "all":
        results = run_all(seed=seed, workers=workers)
    else:
        results = [
            run_experiment(
                experiment,
                **_runner_kwargs(
                    experiment, seed=seed, workers=workers, budget=budget
                ),
            )
        ]
    failures = sum(0 if result.passed else 1 for result in results)
    if output_format == "json":
        import json

        print(json.dumps([r.to_dict() for r in results], indent=2))
    else:
        for result in results:
            print(result.summary())
            print()
    return 1 if failures else 0


def _runner_kwargs(experiment: str, **kwargs) -> dict:
    """Keep only the kwargs the experiment's ``run`` signature accepts
    (``seed``/``workers`` are meaningless to the deterministic tables)."""
    runner = EXPERIMENTS[experiment.upper()]
    names = runner.__code__.co_varnames[
        : runner.__code__.co_argcount + runner.__code__.co_kwonlyargcount
    ]
    return {k: v for k, v in kwargs.items() if k in names}


def _cmd_estimate(pd: float, pi: float, bits: int, physical: Optional[float]) -> int:
    params = ChannelParameters.from_rates(deletion=pd, insertion=pi)
    estimator = CapacityEstimator(bits, physical_capacity=physical)
    print(estimator.estimate(params).summary())
    return 0


def _cmd_estimate_sample(
    sampler: str, noise: float, bits: int, samples: int, seed: int
) -> int:
    """Sample-based estimate through the same front door the service
    uses: normalize (reject bad input with the service's reasons),
    build the named reference sampler, run the kNN pipeline."""
    from .estimation import estimate_sample_capacity
    from .service.query import MalformedQueryError, normalize_query
    from .service.workers import SAMPLE_CAPACITY_K, reference_sampler

    try:
        query = normalize_query(
            {
                "kind": "sample_capacity",
                "sampler": sampler,
                "deletion": noise,
                "insertion": 0.0,
                "bits_per_symbol": bits,
                "n_samples": samples,
            }
        )
    except MalformedQueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = estimate_sample_capacity(
        reference_sampler(query),
        n_samples=query.n_samples,
        seed=seed,
        k=SAMPLE_CAPACITY_K,
    )
    print("Sample-based capacity estimate (Kraskov kNN)")
    print(f"  sampler                : {sampler} (noise {noise})")
    print(f"  samples / neighbours   : {result.n_samples} / k={result.k}")
    print(f"  capacity               : {result.capacity:.6f} bits/time-unit")
    print(f"  MI at optimum          : {result.bits_per_symbol:.6f} bits/symbol")
    print(f"  mean symbol time       : {result.mean_time:.6f}")
    dist = ", ".join(f"{p:.4f}" for p in result.input_distribution)
    print(f"  input distribution     : [{dist}]")
    print(
        f"  optimizer              : {result.status.value} "
        f"after {result.iterations} iterations"
    )
    if result.diagnostics is not None:
        for note in result.diagnostics.notes:
            print(f"  note                   : {note}")
    return 0


def _cmd_bounds(pd: float, pi: float, bits: int) -> int:
    lower, upper = capacity_bracket(bits, pd, pi)
    print(f"Theorem 5 lower bound : {lower:.6f} bits/sender-slot")
    print(f"Theorem 4 upper bound : {upper:.6f} bits/use")
    print(f"bracket width         : {upper - lower:.6f}")
    return 0


def _cmd_report(output: str, seed: int) -> int:
    """Run every experiment and write the tables to *output*."""
    results = run_all(seed=seed)
    lines = [
        "Experiment results — 'Capacity Estimation of Non-Synchronous "
        "Covert Channels' reproduction",
        f"(seed {seed}; regenerate with: repro-covert report --seed {seed})",
        "",
    ]
    failures = 0
    for result in results:
        lines.append(result.summary())
        lines.append("")
        failures += 0 if result.passed else 1
    lines.append(
        f"{len(results) - failures}/{len(results)} experiments passed."
    )
    with open(output, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines))
    print(f"wrote {output} ({len(results)} experiments, "
          f"{failures} failures)")
    return 1 if failures else 0


def _cmd_figures(number: Optional[int]) -> int:
    from .experiments.figures import (
        FIGURES,
        convergence_figure,
        rate_figure,
        render_figure,
    )

    if number is not None:
        print(render_figure(number))
        return 0
    for k in sorted(FIGURES):
        print(render_figure(k))
        print()
    print(convergence_figure())
    print()
    print(rate_figure())
    return 0


def _cmd_faults_list() -> int:
    from .faults.scenarios import list_scenarios

    for scenario in list_scenarios():
        print(f"{scenario.name}: {scenario.description}")
    return 0


def _cmd_faults_run(
    scenario: str, pd: float, pi: float, bits: int, symbols: int, seed: int
) -> int:
    from .faults.injector import run_under_faults
    from .faults.scenarios import get_scenario
    from .simulation.rng import make_rng
    from .sync.feedback import CounterProtocol

    params = ChannelParameters.from_rates(deletion=pd, insertion=pi)
    injector = get_scenario(scenario).build(params, seed=seed)
    rng = make_rng(seed)
    message = rng.integers(0, 2**bits, symbols)
    fm = run_under_faults(
        CounterProtocol(params, bits_per_symbol=bits), message, rng, injector
    )
    print(f"scenario           : {scenario}")
    print(f"completed          : {fm.completed}")
    print(f"degraded           : {fm.run.degraded}")
    print(f"empirical P_d      : {fm.empirical_params.deletion:.4f}")
    print(f"empirical P_i      : {fm.empirical_params.insertion:.4f}")
    print(f"rate (bits/use)    : {fm.information_rate_per_use:.4f}")
    print(f"bound N(1-P̂_d)     : {fm.empirical_erasure_bound:.4f}")
    print(f"within bound       : {fm.within_bound}")
    if fm.fault_counts:
        print("fault counts       :")
        for name in sorted(fm.fault_counts):
            print(f"  {name}: {fm.fault_counts[name]}")
    return 0 if (fm.completed and fm.within_bound) else 1


def _cmd_lint(
    paths: List[str],
    rules: Optional[List[str]],
    output_format: str,
    graph: bool = False,
) -> int:
    from .analysis import (
        UnknownRuleError,
        format_json,
        format_sarif,
        format_text,
        get_rules,
        lint_paths,
        lint_project,
    )

    if graph and paths:
        print(
            "error: --graph analyzes the whole project; do not pass paths",
            file=sys.stderr,
        )
        return 2
    try:
        if paths:
            findings = lint_paths(paths, rule_ids=rules)
        else:
            findings = lint_project(rule_ids=rules, graph=graph)
    except UnknownRuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if output_format == "json":
        print(format_json(findings))
    elif output_format == "sarif":
        print(format_sarif(findings, rules=get_rules(rules)))
    else:
        print(format_text(findings))
    return 1 if findings else 0


def _graph_analysis():
    """Analyze the current project for the ``graph`` subcommands, or
    ``None`` after printing an error (no project root found)."""
    from .analysis import find_project_root
    from .analysis.graph import analyze_source_root

    root = find_project_root()
    if root is None:
        print(
            "error: cannot locate the project root (a directory "
            "containing src/repro)",
            file=sys.stderr,
        )
        return None
    return analyze_source_root(root / "src")


def _graph_resolve_function(analysis, name: str) -> Optional[str]:
    """Resolve *name* (qname or unambiguous suffix) or print why not."""
    functions = analysis.graph.functions
    if name in functions:
        return name
    matches = sorted(q for q in functions if q.endswith("." + name))
    if len(matches) == 1:
        return matches[0]
    if not matches:
        print(f"error: no function named {name!r}", file=sys.stderr)
    else:
        print(
            f"error: {name!r} is ambiguous; candidates:", file=sys.stderr
        )
        for q in matches[:10]:
            print(f"  {q}", file=sys.stderr)
    return None


def _cmd_graph_calls(name: str) -> int:
    analysis = _graph_analysis()
    if analysis is None:
        return 2
    qname = _graph_resolve_function(analysis, name)
    if qname is None:
        return 2
    graph = analysis.graph
    node = graph.functions[qname]
    path = graph.modules[node.info.module].path
    print(f"{qname} ({path}:{node.info.line})")
    if node.callees:
        print("  calls:")
        for callee, line in sorted(set(node.callees)):
            print(f"    {callee} (line {line})")
    if node.external_calls:
        print("  external:")
        for target, line in sorted(set(node.external_calls)):
            print(f"    {target} (line {line})")
    if node.unresolved:
        print("  unresolved:")
        for call in node.unresolved:
            print(f"    {'.'.join(call.parts)}(...) (line {call.line})")
    callers = graph.callers_of(qname)
    if callers:
        print("  called by:")
        for caller in callers:
            print(f"    {caller}")
    return 0


def _cmd_graph_effects(name: str) -> int:
    analysis = _graph_analysis()
    if analysis is None:
        return 2
    qname = _graph_resolve_function(analysis, name)
    if qname is None:
        return 2
    graph = analysis.graph
    node = graph.functions[qname]
    transitive = analysis.closure.get(qname, frozenset())
    rendered = (
        ", ".join(sorted(e.value for e in transitive))
        if transitive
        else "none (transitively pure)"
    )
    print(f"{qname}: {rendered}")
    if node.info.effects:
        print("  direct origins:")
        for origin in node.info.effects:
            waived = " [waived]" if origin.waived else ""
            print(
                f"    line {origin.line}: {origin.effect.value} — "
                f"{origin.detail}{waived}"
            )
    if node.cached_fn_id is not None:
        print(f"  cached_solve target (fn_id={node.cached_fn_id!r})")
    return 0


def _cmd_graph_why(name: str, effect_tag: str) -> int:
    from .analysis.graph import Effect, format_witness, witness_chain
    from .analysis.graph.lattice import effect_from_tag

    analysis = _graph_analysis()
    if analysis is None:
        return 2
    qname = _graph_resolve_function(analysis, name)
    if qname is None:
        return 2
    try:
        effect = effect_from_tag(effect_tag.lower())
    except KeyError:
        print(
            f"error: unknown effect {effect_tag!r}; one of: "
            + ", ".join(sorted(e.value for e in Effect)),
            file=sys.stderr,
        )
        return 2
    steps = witness_chain(analysis.graph, qname, effect, analysis.closure)
    if steps is None:
        print(
            f"{qname} does not transitively reach {effect.value} "
            "(unwaived origins only)"
        )
        return 1
    print(format_witness(steps, analysis.graph))
    return 0


def _open_store(store_dir: Optional[str]):
    """Resolve the CLI's target store or exit with a clear message."""
    from .store import StoreError, resolve_store

    try:
        return resolve_store(store_dir)
    except (StoreError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_store_ls(store_dir: Optional[str]) -> int:
    store = _open_store(store_dir)
    if store is None:
        return 2
    entries = list(store.entries())
    if not entries:
        print(f"store {store.root}: empty")
        return 0
    for entry in entries:
        print(
            f"{entry.key[:16]}  {entry.fn_id:<24} "
            f"{entry.nbytes:>8d} B  {entry.compute_seconds:8.3f} s"
        )
    print(f"{len(entries)} entries in {store.root}")
    return 0


def _cmd_store_inspect(store_dir: Optional[str], key: str) -> int:
    import json

    store = _open_store(store_dir)
    if store is None:
        return 2
    matches = [k for k in store.keys() if k.startswith(key)]
    if not matches:
        print(f"error: no entry matches {key!r}", file=sys.stderr)
        return 2
    if len(matches) > 1:
        print(
            f"error: {key!r} is ambiguous ({len(matches)} entries); "
            "use a longer prefix",
            file=sys.stderr,
        )
        return 2
    manifest_path = store.path_for(matches[0]) / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: unreadable manifest for {matches[0]}: {exc!r}",
              file=sys.stderr)
        return 2
    print(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def _cmd_store_gc(
    store_dir: Optional[str],
    max_age_days: Optional[float],
    max_bytes: Optional[int],
    dry_run: bool,
) -> int:
    store = _open_store(store_dir)
    if store is None:
        return 2
    evicted = store.gc(
        max_age_seconds=(
            None if max_age_days is None else max_age_days * 86_400.0
        ),
        max_total_bytes=max_bytes,
        dry_run=dry_run,
    )
    verb = "would evict" if dry_run else "evicted"
    print(f"{verb} {len(evicted)} entries from {store.root}")
    for key in evicted:
        print(f"  {key}")
    return 0


def _cmd_store_verify(store_dir: Optional[str]) -> int:
    store = _open_store(store_dir)
    if store is None:
        return 2
    issues = store.verify()
    if not issues:
        print(f"store {store.root}: all entries verify")
        return 0
    for issue in issues:
        print(f"{issue.key[:16]}  {issue.problem}")
    print(f"{len(issues)} problems in {store.root}")
    return 1


def _cmd_store_stats(store_dir: Optional[str]) -> int:
    store = _open_store(store_dir)
    if store is None:
        return 2
    stats = store.stats()
    print(f"store      : {store.root}")
    print(f"entries    : {stats.entries}")
    print(f"total bytes: {stats.total_bytes}")
    print(f"solve time : {stats.compute_seconds_total:.3f} s recorded")
    for fn_id in sorted(stats.entries_by_fn):
        print(
            f"  {fn_id:<24} {stats.entries_by_fn[fn_id]:>5d} entries  "
            f"{stats.compute_seconds_by_fn[fn_id]:10.3f} s"
        )
    return 0


def _service_load_kwargs(args: argparse.Namespace) -> dict:
    return dict(
        n_queries=args.n_queries,
        seed=args.seed,
        scenario=args.scenario,
        workers=args.workers,
        concurrency=args.concurrency,
        queue_limit=args.queue_limit,
        batch_size=args.batch_size,
        deadline_seconds=args.deadline,
    )


def _print_service_report(report) -> None:
    print(f"scenario          : {report.scenario}")
    print(f"queries           : {report.n_queries}")
    print(f"lost              : {report.lost}")
    print(
        f"elapsed           : {report.elapsed_seconds:.3f} s "
        f"({report.throughput_qps:.1f} q/s)"
    )
    print(
        f"latency p50 / p99 : {report.latency_p50_seconds:.4f} / "
        f"{report.latency_p99_seconds:.4f} s"
    )
    if report.deadline_seconds is not None:
        verdict = "ok" if report.deadline_p99_ok else "MISSED"
        print(
            f"deadline p99      : {verdict} "
            f"(deadline {report.deadline_seconds:g} s)"
        )
    print(f"pool restarts     : {report.pool_restarts}")
    print("statuses          :")
    for status in sorted(report.status_counts):
        print(f"  {status:<9} {report.status_counts[status]}")


def _print_service_stats(stats: dict) -> None:
    print(f"submitted         : {stats.get('submitted', 0)}")
    print(
        f"batches           : {stats.get('batches', 0)} "
        f"(+{stats.get('fallback_batches', 0)} fell back to the shed "
        "ladder)"
    )
    print(f"retries           : {stats.get('retries', 0)}")
    print(f"queue depth peak  : {stats.get('queue_depth_peak', 0)}")
    print(f"pool restarts     : {stats.get('pool_restarts', 0)}")
    lat = stats.get("latency_seconds", {})
    print(
        f"latency p50 / p99 : {lat.get('p50', 0.0):.4f} / "
        f"{lat.get('p99', 0.0):.4f} s"
    )
    breaker = stats.get("breaker", {})
    print(f"breaker state     : {breaker.get('state', '?')}")
    transitions = breaker.get("transitions", {})
    for name in sorted(transitions):
        print(f"  {name:<22} {transitions[name]}")
    shed = stats.get("shed_levels", {})
    if shed:
        print("shed levels       :")
        for name in sorted(shed):
            print(f"  {name:<12} {shed[name]}")
    counts = stats.get("status_counts", {})
    print("statuses          :")
    for status in sorted(counts):
        print(f"  {status:<9} {counts[status]}")
    events = stats.get("store_events", {})
    if events:
        print("store events      :")
        for name in sorted(events):
            print(f"  {name}: {events[name]}")


def _cmd_service_run(args: argparse.Namespace) -> int:
    import json

    from .service import run_load_test

    report = run_load_test(**_service_load_kwargs(args))
    payload = report.to_dict()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.output}", file=sys.stderr)
    if args.output_format == "json":
        print(json.dumps(payload, indent=2))
    else:
        _print_service_report(report)
    return 0 if (report.lost == 0 and report.deadline_p99_ok) else 1


def _cmd_service_stats(args: argparse.Namespace) -> int:
    import json

    from .service import run_load_test

    report = run_load_test(**_service_load_kwargs(args))
    if args.output_format == "json":
        print(json.dumps(report.stats, indent=2))
    else:
        _print_service_stats(report.stats)
    return 0 if report.lost == 0 else 1


def _cmd_service_replay(args: argparse.Namespace) -> int:
    """Serve one deterministic trace twice; identical answers required.

    Statuses may differ between passes (timeouts and shedding are
    timing-dependent by design) — what must never differ is the *value*
    any query resolves to when both passes produce one.
    """
    from .faults import get_service_scenario
    from .service import QueryStatus, generate_trace, serve_queries

    plan = get_service_scenario(args.scenario)
    trace = generate_trace(
        args.n_queries,
        seed=args.seed,
        malformed_rate=plan.malformed_rate,
        deadline_seconds=args.deadline,
    )

    def serve_once():
        results, _ = serve_queries(
            trace,
            concurrency=args.concurrency,
            root_seed=args.seed,
            workers=args.workers,
            batch_size=args.batch_size,
            fault_plan=plan if plan.injects_faults else None,
        )
        answered = (QueryStatus.OK, QueryStatus.CACHED)
        return {
            r.query_id: r.value for r in results if r.status in answered
        }

    first = serve_once()
    second = serve_once()
    common = sorted(set(first) & set(second))
    mismatches = [
        qid for qid in common if first[qid] != second[qid]
    ]
    print(
        f"replay: {len(trace)} queries, {len(common)} answered in both "
        f"passes, {len(mismatches)} value mismatches"
    )
    for qid in mismatches[:10]:
        print(f"  {qid}: {first[qid]!r} != {second[qid]!r}")
    return 1 if mismatches else 0


def _cmd_service_scenarios() -> int:
    from .faults import SERVICE_SCENARIOS

    for name in sorted(SERVICE_SCENARIOS):
        plan = SERVICE_SCENARIOS[name]
        knobs = []
        if plan.worker_crash_prob:
            knobs.append(f"crash {plan.worker_crash_prob:g}")
        if plan.slow_prob:
            knobs.append(
                f"slow {plan.slow_prob:g}x{plan.slow_seconds:g}s"
            )
        if plan.transient_error_prob:
            knobs.append(f"transient {plan.transient_error_prob:g}")
        if plan.malformed_rate:
            knobs.append(f"malformed {plan.malformed_rate:g}")
        print(f"{name}: {', '.join(knobs) if knobs else 'no faults'}")
    return 0


def _cmd_theorems() -> int:
    for number in sorted(THEOREMS):
        t = THEOREMS[number]
        print(f"Theorem {t.number} ({t.title}):")
        print(f"  {t.statement}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiment,
            args.seed,
            args.workers,
            args.output_format,
            args.budget,
        )
    if args.command == "estimate":
        if args.sampler is not None:
            return _cmd_estimate_sample(
                args.sampler, args.pd, args.bits, args.samples, args.seed
            )
        return _cmd_estimate(args.pd, args.pi, args.bits, args.physical)
    if args.command == "bounds":
        return _cmd_bounds(args.pd, args.pi, args.bits)
    if args.command == "theorems":
        return _cmd_theorems()
    if args.command == "faults":
        if args.faults_command == "list":
            return _cmd_faults_list()
        if args.faults_command == "run":
            return _cmd_faults_run(
                args.scenario, args.pd, args.pi, args.bits, args.symbols, args.seed
            )
        print("usage: repro-covert faults {list,run} ...")
        return 2
    if args.command == "store":
        if args.store_command == "ls":
            return _cmd_store_ls(args.store_dir)
        if args.store_command == "inspect":
            return _cmd_store_inspect(args.store_dir, args.key)
        if args.store_command == "gc":
            return _cmd_store_gc(
                args.store_dir, args.max_age_days, args.max_bytes,
                args.dry_run,
            )
        if args.store_command == "verify":
            return _cmd_store_verify(args.store_dir)
        if args.store_command == "stats":
            return _cmd_store_stats(args.store_dir)
        print("usage: repro-covert store {ls,inspect,gc,verify,stats} ...")
        return 2
    if args.command == "service":
        if args.service_command == "run":
            return _cmd_service_run(args)
        if args.service_command == "stats":
            return _cmd_service_stats(args)
        if args.service_command == "replay":
            return _cmd_service_replay(args)
        if args.service_command == "scenarios":
            return _cmd_service_scenarios()
        print("usage: repro-covert service {run,stats,replay,scenarios} ...")
        return 2
    if args.command == "lint":
        return _cmd_lint(
            args.paths, args.rules, args.output_format, args.graph
        )
    if args.command == "graph":
        if args.graph_command == "calls":
            return _cmd_graph_calls(args.function)
        if args.graph_command == "effects":
            return _cmd_graph_effects(args.function)
        if args.graph_command == "why":
            return _cmd_graph_why(args.function, args.effect)
        print("usage: repro-covert graph {calls,effects,why} ...")
        return 2
    if args.command == "report":
        return _cmd_report(args.output, args.seed)
    if args.command == "figures":
        return _cmd_figures(args.number)
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
