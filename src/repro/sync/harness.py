"""Measurement harness for synchronization protocols.

Runs a protocol, measures the empirical rates in both time bases, the
empirical substitution statistics of the converted channel, and packages
everything next to the corresponding theoretical bounds so experiments
E2/E3 can assert "simulation matches theorem" in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.capacity import (
    converted_capacity,
    erasure_upper_bound,
    feedback_lower_bound,
    feedback_lower_bound_exact,
)
from ..simulation.mutual_information import plugin_mutual_information
from .protocols import ProtocolRun, SynchronizationProtocol

__all__ = [
    "ProtocolMeasurement",
    "measure_protocol",
    "substitution_error_capacity",
]


@dataclass(frozen=True)
class ProtocolMeasurement:
    """Side-by-side empirical and theoretical rates for one run.

    Attributes
    ----------
    run:
        The raw protocol run record.
    empirical_substitution_rate:
        Fraction of delivered positions that differ from the message —
        the converted channel's measured error rate (expected:
        ``alpha * P_i / (1 - P_d)``).
    empirical_information_per_slot:
        Converted-channel capacity at the *measured* substitution rate,
        scaled to bits per sender slot — the rate a capacity-achieving
        code over the converted channel would realize on this run.
    empirical_mi_per_symbol:
        Plug-in mutual information between message and delivered
        symbols, bits per delivered symbol (consistency check against
        the converted-channel model).
    theoretical_lower_paper:
        The paper's Theorem 5 bound (eq. 2).
    theoretical_lower_exact:
        The exact protocol rate with the received-position insertion
        fraction (see DESIGN.md reconstruction notes).
    theoretical_upper:
        Theorem 4 bound ``N (1 - P_d)``.
    """

    run: ProtocolRun
    empirical_substitution_rate: float
    empirical_information_per_slot: float
    empirical_mi_per_symbol: float
    theoretical_lower_paper: float
    theoretical_lower_exact: float
    theoretical_upper: float

    @property
    def throughput_per_slot(self) -> float:
        return self.run.throughput_per_slot

    @property
    def throughput_per_use(self) -> float:
        return self.run.throughput_per_use


def substitution_error_capacity(bits_per_symbol: int, error_rate: float) -> float:
    """Converted-channel capacity at a measured raw error rate.

    The measured error rate already excludes accidental matches, so we
    invert the ``alpha`` scaling before reusing
    :func:`repro.core.capacity.converted_capacity` (which expects the
    insertion probability, not the error probability).
    """
    m = 2**bits_per_symbol
    alpha = (m - 1) / m
    equivalent_insertion = min(1.0, error_rate / alpha)
    return converted_capacity(bits_per_symbol, equivalent_insertion)


def measure_protocol(
    protocol: SynchronizationProtocol,
    message: np.ndarray,
    rng: np.random.Generator,
    *,
    max_uses: Optional[int] = None,
) -> ProtocolMeasurement:
    """Execute *protocol* on *message* and compare against theory."""
    run = protocol.run(message, rng, max_uses=max_uses)
    n = protocol.bits_per_symbol
    p = protocol.params

    sub_rate = run.symbol_error_rate
    info_per_symbol = substitution_error_capacity(n, sub_rate)
    info_per_slot = run.information_rate_per_slot(info_per_symbol)

    delivered = run.delivered
    if delivered.size >= 2:
        mi = plugin_mutual_information(
            run.message[: delivered.size],
            delivered,
            nx=protocol.alphabet_size,
            ny=protocol.alphabet_size,
        )
    else:
        mi = 0.0

    if p.insertion < 1.0:
        lower_paper = feedback_lower_bound(n, p.deletion, p.insertion)
        lower_exact = feedback_lower_bound_exact(n, p.deletion, p.insertion)
    else:  # degenerate: nothing the sender offers is ever consumed
        lower_paper = lower_exact = 0.0

    return ProtocolMeasurement(
        run=run,
        empirical_substitution_rate=sub_rate,
        empirical_information_per_slot=info_per_slot,
        empirical_mi_per_symbol=mi,
        theoretical_lower_paper=lower_paper,
        theoretical_lower_exact=lower_exact,
        theoretical_upper=erasure_upper_bound(n, p.deletion),
    )
