"""Feedback-based synchronization protocols (paper Section 4.2.1).

Two constructive protocols, both assuming a *perfect* feedback path from
receiver to sender (Figure 3a):

* :class:`ResendProtocol` — Theorem 3. The receiver acknowledges each
  symbol; the sender resends until acknowledged. Over a deletion channel
  this removes all drop-outs and achieves the erasure capacity
  ``N (1 - p_d)`` exactly.
* :class:`CounterProtocol` — Theorem 5 / Appendix A. Both sides keep
  symbol counters. When the receiver's count lags, the sender waits
  (a deletion happened); when it leads, the sender *skips* as many
  message symbols as were inserted, so message positions stay aligned
  and the channel is converted into a synchronous M-ary symmetric DMC
  (Figure 5) whose errors are exactly the inserted symbols.

Both protocols are event-driven simulations of Definition 1: each
channel use is a deletion, insertion, or transmission, and the perfect
feedback assumption means the sender knows the receiver's counter before
every sender slot.

**Fault hardening.** Both protocols also survive the fault regimes of
:mod:`repro.faults`: when a fault injector is active
(:func:`repro.core.events.active_fault_injector`), :class:`ResendProtocol`
switches to an event-driven sender with a timeout/retry/backoff
:class:`~repro.sync.protocols.RetryPolicy`, and :class:`CounterProtocol`
runs periodic *resynchronization epochs* that detect and repair counter
desync instead of silently producing misaligned output. Without an
injector the original perfect-feedback semantics — and the exact RNG
consumption — are preserved bit-for-bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.events import (
    ChannelEvent,
    ChannelParameters,
    active_fault_injector,
    sample_events,
)
from ..infotheory.probability import is_zero
from .protocols import ProtocolRun, RetryPolicy, SynchronizationProtocol

__all__ = ["ResendProtocol", "CounterProtocol"]


class _BufferedEventSource:
    """Pull events one at a time, drawing through ``sample_events`` in
    blocks so fault hooks see the same block-structured access pattern
    as the unhardened protocols."""

    def __init__(
        self, params: ChannelParameters, rng: np.random.Generator, block: int = 256
    ) -> None:
        self._params = params
        self._rng = rng
        self._block = block
        self._buf = np.empty(0, dtype=np.int64)
        self._next = 0

    def next_event(self) -> int:
        if self._next >= self._buf.shape[0]:
            self._buf = sample_events(self._params, self._block, self._rng)
            self._next = 0
        ev = int(self._buf[self._next])
        self._next += 1
        return ev


class ResendProtocol(SynchronizationProtocol):
    """Resend-until-acknowledged over a deletion channel (Theorem 3).

    Requires ``P_i = 0``: with no insertions the receiver's count can
    never lead the sender's, so acknowledgments alone suffice. Every
    channel use consumes a sender slot; a fraction ``1 - p_d`` of the
    uses deliver a fresh symbol, so the achieved rate converges to
    ``N (1 - p_d)`` bits per use — the erasure capacity of eq. (1).
    """

    def __init__(
        self,
        params: ChannelParameters,
        *,
        bits_per_symbol: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if not is_zero(params.insertion):
            raise ValueError(
                "ResendProtocol handles deletions only; use CounterProtocol "
                "for channels with insertions"
            )
        super().__init__(params, bits_per_symbol=bits_per_symbol)
        self.retry_policy = retry_policy

    def run(
        self,
        message: np.ndarray,
        rng: np.random.Generator,
        *,
        max_uses: Optional[int] = None,
    ) -> ProtocolRun:
        msg = self._validate_message(message)
        injector = active_fault_injector()
        if injector is not None or self.retry_policy is not None:
            return self._run_event_driven(msg, rng, max_uses, injector)
        p_d = self.params.deletion
        uses = 0
        delivered_count = 0
        deletions = 0
        # Vectorized: for each message symbol the number of uses until
        # delivery is geometric with success probability 1 - p_d.
        remaining = msg.size
        while remaining > 0:
            if max_uses is not None and uses >= max_uses:
                break
            budget = None if max_uses is None else max_uses - uses
            if p_d >= 1.0:
                # Nothing ever gets through; burn the budget (if any).
                if budget is None:
                    raise ValueError(
                        "deletion probability 1 never delivers; pass max_uses"
                    )
                uses += budget
                deletions += budget
                break
            attempts = rng.geometric(1.0 - p_d, size=min(remaining, 4096))
            for a in attempts:
                a = int(a)
                if budget is not None and uses + a > max_uses:
                    # Partial attempt: all uses up to the budget are
                    # failed resends.
                    spent = max_uses - uses
                    uses += spent
                    deletions += spent
                    remaining = 0
                    break
                uses += a
                deletions += a - 1
                delivered_count += 1
                remaining -= 1
                if remaining == 0:
                    break
            if max_uses is not None and uses >= max_uses:
                break

        delivered = msg[:delivered_count].copy()
        return ProtocolRun(
            message=msg,
            delivered=delivered,
            channel_uses=uses,
            sender_slots=uses,  # every use consumes sender time (no insertions)
            deletions=deletions,
            insertions=0,
            transmissions=delivered_count,
            bits_per_symbol=self.bits_per_symbol,
        )

    def _run_event_driven(
        self,
        msg: np.ndarray,
        rng: np.random.Generator,
        max_uses: Optional[int],
        injector,
    ) -> ProtocolRun:
        """Fault-tolerant sender: per-event simulation with timeouts.

        Used whenever a fault injector is active or a
        :class:`RetryPolicy` was supplied. Each send is one channel use;
        after a send whose acknowledgment does not come back intact the
        sender waits out a (backed-off) timeout and retries, abandoning
        the symbol once ``max_retries`` is exhausted — the receiver
        then holds only a guess for that position, which is exactly an
        erasure turned substitution. Spurious arrivals injected by the
        fault model carry no valid sequence tag and are discarded by
        the receiver (a channel use, but no sender slot).
        """
        from ..faults.models import AckOutcome  # deferred: avoids cycle

        policy = self.retry_policy or RetryPolicy()
        source = _BufferedEventSource(self.params, rng)
        delivered = np.empty(msg.size, dtype=np.int64)
        pos = 0
        uses = 0
        deletions = insertions = transmissions = 0
        duplicates = abandoned = retries = 0
        waited_slots = 0
        budget_hit = False

        while pos < msg.size and not budget_hit:
            failures = 0
            while True:
                if max_uses is not None and uses >= max_uses:
                    budget_hit = True
                    break
                ev = source.next_event()
                uses += 1
                if ev == ChannelEvent.INSERTION:
                    # Spurious symbol: receiver discards it; the sender's
                    # attempt is still pending, so this use costs nothing
                    # but channel time.
                    insertions += 1
                    continue
                if ev == ChannelEvent.DELETION:
                    deletions += 1
                    outcome = None  # nothing arrived, nothing to ack
                else:  # TRANSMISSION / SUBSTITUTION both deliver a copy
                    transmissions += 1
                    outcome = (
                        injector.ack_outcome()
                        if injector is not None
                        else AckOutcome.DELIVERED
                    )
                    if outcome == AckOutcome.DELIVERED:
                        delivered[pos] = msg[pos]
                        pos += 1
                        break
                    if outcome == AckOutcome.DELAYED:
                        # The ack arrives after the timeout: the sender
                        # has already launched one duplicate by then,
                        # which the receiver discards.
                        waited_slots += policy.timeout_after(failures)
                        if max_uses is None or uses < max_uses:
                            dup = source.next_event()
                            uses += 1
                            if dup == ChannelEvent.DELETION:
                                deletions += 1
                            elif dup == ChannelEvent.INSERTION:
                                insertions += 1
                            else:
                                transmissions += 1
                                duplicates += 1
                        delivered[pos] = msg[pos]
                        pos += 1
                        break
                    # LOST or CORRUPTED: delivered but unacknowledged —
                    # the resend below is a duplicate the receiver will
                    # discard via its sequence tag.
                    duplicates += 1
                # Attempt failed (deletion, or ack lost/corrupted).
                waited_slots += policy.timeout_after(failures)
                failures += 1
                retries += 1
                if policy.max_retries is not None and failures > policy.max_retries:
                    # Give up: signal a skip with the next symbol's
                    # sequence tag; the receiver records its best guess.
                    delivered[pos] = (
                        injector.abandon_guess(self.alphabet_size)
                        if injector is not None
                        else int(rng.integers(0, self.alphabet_size))
                    )
                    pos += 1
                    abandoned += 1
                    break

        fault_counts = {
            "retries": retries,
            "duplicates": duplicates,
            "symbols_abandoned": abandoned,
            "timeout_slots_waited": waited_slots,
        }
        if injector is not None:
            fault_counts.update(injector.log.snapshot())
        return ProtocolRun(
            message=msg,
            delivered=delivered[:pos].copy(),
            channel_uses=uses,
            sender_slots=uses - insertions,
            deletions=deletions,
            insertions=insertions,
            transmissions=transmissions,
            bits_per_symbol=self.bits_per_symbol,
            degraded=abandoned > 0 or budget_hit,
            fault_counts=fault_counts,
        )


class CounterProtocol(SynchronizationProtocol):
    """The Appendix-A counter protocol (Theorem 5).

    Event-by-event semantics:

    * **deletion** — the symbol the sender offered is lost. At its next
      slot the sender sees the receiver's counter lagging and resends;
      the use is a wasted sender slot.
    * **insertion** — the receiver reads a spurious, uniformly random
      symbol and counts it. The sender sees its counter lead and skips
      one message symbol, so the inserted symbol *replaces* the skipped
      one at the same message position. No sender slot is consumed.
    * **transmission** — the message symbol at the receiver's current
      position is delivered intact.

    The result is a synchronous stream ``delivered`` with
    ``delivered[k] = message[k]`` except at insertion positions, where
    it is uniform — the converted M-ary symmetric channel of Figure 5.

    **Desync hardening.** The alignment above silently assumes the two
    counters agree. Under the ``desync`` fault of :mod:`repro.faults`
    the receiver's counter drifts by ±1, after which the sender's
    wait/skip decisions are computed against a stale belief and every
    delivered symbol is *misaligned* — silently wrong output, the worst
    failure mode for a capacity measurement. The hardened protocol runs
    a **resynchronization epoch** every ``resync_interval`` channel
    uses: both sides exchange their full counters over a robust
    (repeated) feedback round costing ``resync_cost_slots`` sender
    slots, the sender adopts the receiver's count, and alignment is
    restored. Detection and recovery are accounted in
    ``fault_counts`` (``desyncs_injected``, ``desyncs_recovered``,
    ``resync_epochs``, ``misaligned_deliveries``) and flip the run's
    ``degraded`` flag. Without an active injector the original
    perfect-feedback behaviour is preserved exactly.

    Parameters
    ----------
    resync_interval:
        Channel uses between resynchronization epochs. ``None`` picks
        512 when desync faults are active and disables epochs
        otherwise.
    resync_cost_slots:
        Sender slots one epoch costs (the repeated counter exchange).
    """

    def __init__(
        self,
        params: ChannelParameters,
        *,
        bits_per_symbol: int = 1,
        resync_interval: Optional[int] = None,
        resync_cost_slots: int = 4,
    ) -> None:
        if resync_interval is not None and resync_interval < 1:
            raise ValueError("resync_interval must be >= 1")
        if resync_cost_slots < 0:
            raise ValueError("resync_cost_slots must be non-negative")
        super().__init__(params, bits_per_symbol=bits_per_symbol)
        self.resync_interval = resync_interval
        self.resync_cost_slots = resync_cost_slots

    _DEFAULT_RESYNC_INTERVAL = 512

    def run(
        self,
        message: np.ndarray,
        rng: np.random.Generator,
        *,
        max_uses: Optional[int] = None,
    ) -> ProtocolRun:
        msg = self._validate_message(message)
        p = self.params
        injector = active_fault_injector()
        desync_active = (
            injector is not None and injector.feedback.desync_prob > 0.0
        )
        resync_interval = self.resync_interval
        if resync_interval is None and desync_active:
            resync_interval = self._DEFAULT_RESYNC_INTERVAL

        delivered = np.empty(msg.size, dtype=np.int64)
        pos = 0  # next message position to be fixed at the receiver
        uses = 0
        sender_slots = 0
        deletions = 0
        insertions = 0
        transmissions = 0
        offset = 0  # sender's counter belief minus the receiver's truth
        since_resync = 0
        desyncs_recovered = 0
        resync_epochs = 0
        misaligned = 0
        while pos < msg.size:
            if max_uses is not None and uses >= max_uses:
                break
            block = 2048 if max_uses is None else min(2048, max_uses - uses)
            events = sample_events(p, block, rng)
            inserted_syms = rng.integers(0, self.alphabet_size, size=block)
            for k in range(block):
                if pos >= msg.size:
                    break
                ev = int(events[k])
                uses += 1
                if desync_active:
                    offset += injector.desync()
                aligned = offset == 0
                if ev == ChannelEvent.DELETION:
                    deletions += 1
                    sender_slots += 1
                elif ev == ChannelEvent.INSERTION:
                    insertions += 1
                    delivered[pos] = inserted_syms[k]
                    pos += 1
                else:  # TRANSMISSION (substitutions excluded by base class)
                    transmissions += 1
                    sender_slots += 1
                    if aligned:
                        delivered[pos] = msg[pos]
                    else:
                        # The sender is reading from a stale position:
                        # the receiver stores a symbol from the wrong
                        # message index — silently wrong alignment.
                        src = min(max(pos + offset, 0), msg.size - 1)
                        delivered[pos] = msg[src]
                        misaligned += 1
                    pos += 1
                if resync_interval is not None:
                    since_resync += 1
                    if since_resync >= resync_interval:
                        since_resync = 0
                        resync_epochs += 1
                        uses += self.resync_cost_slots
                        sender_slots += self.resync_cost_slots
                        if offset != 0:
                            offset = 0
                            desyncs_recovered += 1
                            if injector is not None:
                                injector.log.record("desyncs_recovered")
                        if injector is not None:
                            injector.log.record("resync_epochs")

        fault_counts = {}
        if resync_interval is not None or desync_active:
            fault_counts = {
                "resync_epochs": resync_epochs,
                "desyncs_recovered": desyncs_recovered,
                "misaligned_deliveries": misaligned,
            }
            if injector is not None:
                fault_counts.setdefault(
                    "desyncs_injected", injector.log.get("desyncs_injected")
                )
        return ProtocolRun(
            message=msg,
            delivered=delivered[:pos].copy(),
            channel_uses=uses,
            sender_slots=sender_slots,
            deletions=deletions,
            insertions=insertions,
            transmissions=transmissions,
            bits_per_symbol=self.bits_per_symbol,
            degraded=desyncs_recovered > 0 or misaligned > 0,
            fault_counts=fault_counts,
        )
