"""Feedback-based synchronization protocols (paper Section 4.2.1).

Two constructive protocols, both assuming a *perfect* feedback path from
receiver to sender (Figure 3a):

* :class:`ResendProtocol` — Theorem 3. The receiver acknowledges each
  symbol; the sender resends until acknowledged. Over a deletion channel
  this removes all drop-outs and achieves the erasure capacity
  ``N (1 - p_d)`` exactly.
* :class:`CounterProtocol` — Theorem 5 / Appendix A. Both sides keep
  symbol counters. When the receiver's count lags, the sender waits
  (a deletion happened); when it leads, the sender *skips* as many
  message symbols as were inserted, so message positions stay aligned
  and the channel is converted into a synchronous M-ary symmetric DMC
  (Figure 5) whose errors are exactly the inserted symbols.

Both protocols are event-driven simulations of Definition 1: each
channel use is a deletion, insertion, or transmission, and the perfect
feedback assumption means the sender knows the receiver's counter before
every sender slot.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.events import ChannelEvent, ChannelParameters, sample_events
from .protocols import ProtocolRun, SynchronizationProtocol

__all__ = ["ResendProtocol", "CounterProtocol"]


class ResendProtocol(SynchronizationProtocol):
    """Resend-until-acknowledged over a deletion channel (Theorem 3).

    Requires ``P_i = 0``: with no insertions the receiver's count can
    never lead the sender's, so acknowledgments alone suffice. Every
    channel use consumes a sender slot; a fraction ``1 - p_d`` of the
    uses deliver a fresh symbol, so the achieved rate converges to
    ``N (1 - p_d)`` bits per use — the erasure capacity of eq. (1).
    """

    def __init__(self, params: ChannelParameters, *, bits_per_symbol: int = 1) -> None:
        if params.insertion != 0.0:
            raise ValueError(
                "ResendProtocol handles deletions only; use CounterProtocol "
                "for channels with insertions"
            )
        super().__init__(params, bits_per_symbol=bits_per_symbol)

    def run(
        self,
        message: np.ndarray,
        rng: np.random.Generator,
        *,
        max_uses: Optional[int] = None,
    ) -> ProtocolRun:
        msg = self._validate_message(message)
        p_d = self.params.deletion
        uses = 0
        delivered_count = 0
        deletions = 0
        # Vectorized: for each message symbol the number of uses until
        # delivery is geometric with success probability 1 - p_d.
        remaining = msg.size
        while remaining > 0:
            if max_uses is not None and uses >= max_uses:
                break
            budget = None if max_uses is None else max_uses - uses
            if p_d >= 1.0:
                # Nothing ever gets through; burn the budget (if any).
                if budget is None:
                    raise ValueError(
                        "deletion probability 1 never delivers; pass max_uses"
                    )
                uses += budget
                deletions += budget
                break
            attempts = rng.geometric(1.0 - p_d, size=min(remaining, 4096))
            for a in attempts:
                a = int(a)
                if budget is not None and uses + a > max_uses:
                    # Partial attempt: all uses up to the budget are
                    # failed resends.
                    spent = max_uses - uses
                    uses += spent
                    deletions += spent
                    remaining = 0
                    break
                uses += a
                deletions += a - 1
                delivered_count += 1
                remaining -= 1
                if remaining == 0:
                    break
            if max_uses is not None and uses >= max_uses:
                break

        delivered = msg[:delivered_count].copy()
        return ProtocolRun(
            message=msg,
            delivered=delivered,
            channel_uses=uses,
            sender_slots=uses,  # every use consumes sender time (no insertions)
            deletions=deletions,
            insertions=0,
            transmissions=delivered_count,
            bits_per_symbol=self.bits_per_symbol,
        )


class CounterProtocol(SynchronizationProtocol):
    """The Appendix-A counter protocol (Theorem 5).

    Event-by-event semantics:

    * **deletion** — the symbol the sender offered is lost. At its next
      slot the sender sees the receiver's counter lagging and resends;
      the use is a wasted sender slot.
    * **insertion** — the receiver reads a spurious, uniformly random
      symbol and counts it. The sender sees its counter lead and skips
      one message symbol, so the inserted symbol *replaces* the skipped
      one at the same message position. No sender slot is consumed.
    * **transmission** — the message symbol at the receiver's current
      position is delivered intact.

    The result is a synchronous stream ``delivered`` with
    ``delivered[k] = message[k]`` except at insertion positions, where
    it is uniform — the converted M-ary symmetric channel of Figure 5.
    """

    def run(
        self,
        message: np.ndarray,
        rng: np.random.Generator,
        *,
        max_uses: Optional[int] = None,
    ) -> ProtocolRun:
        msg = self._validate_message(message)
        p = self.params
        delivered = np.empty(msg.size, dtype=np.int64)
        pos = 0  # next message position to be fixed at the receiver
        uses = 0
        sender_slots = 0
        deletions = 0
        insertions = 0
        transmissions = 0
        while pos < msg.size:
            if max_uses is not None and uses >= max_uses:
                break
            block = 2048 if max_uses is None else min(2048, max_uses - uses)
            events = sample_events(p, block, rng)
            inserted_syms = rng.integers(0, self.alphabet_size, size=block)
            for k in range(block):
                if pos >= msg.size:
                    break
                ev = int(events[k])
                uses += 1
                if ev == ChannelEvent.DELETION:
                    deletions += 1
                    sender_slots += 1
                elif ev == ChannelEvent.INSERTION:
                    insertions += 1
                    delivered[pos] = inserted_syms[k]
                    pos += 1
                else:  # TRANSMISSION (substitutions excluded by base class)
                    transmissions += 1
                    sender_slots += 1
                    delivered[pos] = msg[pos]
                    pos += 1

        return ProtocolRun(
            message=msg,
            delivered=delivered[:pos].copy(),
            channel_uses=uses,
            sender_slots=sender_slots,
            deletions=deletions,
            insertions=insertions,
            transmissions=transmissions,
            bits_per_symbol=self.bits_per_symbol,
        )
