"""The two-synchronization-variable handshake of Figure 1.

The sender toggles an ``S-R`` variable after writing a symbol; the
receiver polls it, reads the symbol when it changes, then toggles an
``R-S`` variable to acknowledge; the sender polls that before writing
the next symbol. Given *any* interleaving of sender and receiver
operations (covert channels give the parties no control over when they
run — paper §3.1), the handshake guarantees no symbol is ever lost or
duplicated, at the cost of wasted waiting slots whenever a party is
scheduled before its partner has made progress.

:class:`HandshakeSimulator` executes the mechanism under a random
interleaving and reports both correctness and the wasted-slot overhead —
the "time wasted for waiting" that the paper's non-synchronous capacity
estimation accounts for and the traditional synchronous model ignores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["SyncVariable", "HandshakeResult", "HandshakeSimulator"]


class SyncVariable:
    """A shared toggle bit with read/write counters.

    Models the "make a change on the variable" primitive of Figure 1:
    parties signal by flipping the bit and detect signals by comparing
    against the last value they saw.
    """

    def __init__(self, initial: int = 0) -> None:
        if initial not in (0, 1):
            raise ValueError("initial value must be 0 or 1")
        self._value = initial
        self.writes = 0
        self.reads = 0

    @property
    def value(self) -> int:
        return self._value

    def toggle(self) -> int:
        """Flip the bit (the 'make a change' operation)."""
        self._value ^= 1
        self.writes += 1
        return self._value

    def read(self) -> int:
        self.reads += 1
        return self._value


@dataclass(frozen=True)
class HandshakeResult:
    """Outcome of a Figure-1 handshake run.

    Attributes
    ----------
    delivered:
        Symbols the receiver extracted, in order.
    sender_ops:
        Number of scheduling opportunities the sender got.
    receiver_ops:
        Number of scheduling opportunities the receiver got.
    sender_waits:
        Sender opportunities wasted because the previous symbol was not
        yet acknowledged.
    receiver_waits:
        Receiver opportunities wasted because no new symbol had arrived.
    """

    delivered: np.ndarray
    sender_ops: int
    receiver_ops: int
    sender_waits: int
    receiver_waits: int

    @property
    def total_ops(self) -> int:
        return self.sender_ops + self.receiver_ops

    @property
    def useful_ops(self) -> int:
        return self.total_ops - self.sender_waits - self.receiver_waits

    @property
    def wasted_fraction(self) -> float:
        """Fraction of scheduling opportunities spent waiting — the
        synchronization overhead the synchronous model ignores."""
        return (
            (self.sender_waits + self.receiver_waits) / self.total_ops
            if self.total_ops
            else 0.0
        )

    def symbols_per_op(self, bits_per_symbol: int = 1) -> float:
        """Throughput in bits per scheduling opportunity."""
        if self.total_ops == 0:
            return 0.0
        return bits_per_symbol * len(self.delivered) / self.total_ops


class HandshakeSimulator:
    """Run the Figure-1 mechanism under a random schedule.

    Parameters
    ----------
    sender_prob:
        Probability that any given scheduling opportunity goes to the
        sender (the rest go to the receiver); models an oblivious
        uniprocessor scheduler alternating the two processes at random.
    """

    def __init__(self, sender_prob: float = 0.5) -> None:
        if not 0.0 < sender_prob < 1.0:
            raise ValueError("sender_prob must be in (0, 1)")
        self.sender_prob = sender_prob

    def run(
        self,
        message: np.ndarray,
        rng: np.random.Generator,
        *,
        max_ops: Optional[int] = None,
    ) -> HandshakeResult:
        """Deliver *message* through the handshake; never loses symbols."""
        msg = np.asarray(message, dtype=np.int64)
        if msg.ndim != 1:
            raise ValueError("message must be 1-D")

        data_register = 0  # the covert storage location
        s_to_r = SyncVariable()  # sender -> receiver "symbol ready"
        r_to_s = SyncVariable()  # receiver -> sender "symbol consumed"
        sender_seen_ack = r_to_s.value
        receiver_seen_ready = s_to_r.value

        delivered: List[int] = []
        send_pos = 0
        sender_ops = receiver_ops = 0
        sender_waits = receiver_waits = 0
        ops = 0
        limit = max_ops if max_ops is not None else 64 * (msg.size + 1) + 1000

        while len(delivered) < msg.size and ops < limit:
            ops += 1
            if rng.random() < self.sender_prob:
                sender_ops += 1
                if send_pos < msg.size and r_to_s.read() == sender_seen_ack:
                    # Previous symbol acknowledged: write the next one.
                    data_register = int(msg[send_pos])
                    send_pos += 1
                    s_to_r.toggle()
                    # Expect the ack bit to flip before sending again.
                    sender_seen_ack ^= 1
                else:
                    sender_waits += 1
            else:
                receiver_ops += 1
                if s_to_r.read() != receiver_seen_ready:
                    # New symbol ready: consume it and acknowledge.
                    delivered.append(data_register)
                    receiver_seen_ready ^= 1
                    r_to_s.toggle()
                else:
                    receiver_waits += 1

        return HandshakeResult(
            delivered=np.asarray(delivered, dtype=np.int64),
            sender_ops=sender_ops,
            receiver_ops=receiver_ops,
            sender_waits=sender_waits,
            receiver_waits=receiver_waits,
        )
