"""Protocol interfaces and run records.

A *synchronization protocol* turns a non-synchronous deletion-insertion
channel into something usable: it decides, at each sender opportunity,
whether to send a new symbol, resend, skip, or wait. Protocols in this
package are driven by the channel's event stream (Definition 1) and
report a :class:`ProtocolRun` with everything needed to measure the
achieved information rate in the paper's two time bases:

* **per channel use** — every event (deletion, insertion, transmission)
  counts one tick;
* **per sender slot** — only events that consume sender time (deletions
  and transmissions) count, matching eq. (2)'s
  ``(1 - P_d)/(1 - P_i)`` coefficient.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.events import ChannelParameters
from ..infotheory.probability import is_zero

__all__ = ["ProtocolRun", "RetryPolicy", "SynchronizationProtocol"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff policy for feedback-driven senders.

    Under a faulty feedback path an acknowledgment may never arrive, so
    a hardened sender waits ``ack_timeout_slots`` after each attempt,
    multiplies the wait by ``backoff`` after every consecutive failure
    (capped at ``max_timeout_slots``), and abandons the symbol after
    ``max_retries`` failed attempts (``None`` = retry forever, the
    paper's implicit policy). Waiting burns latency, not channel uses;
    runs account it under ``fault_counts["timeout_slots_waited"]``.
    """

    ack_timeout_slots: int = 1
    max_retries: Optional[int] = None
    backoff: float = 1.0
    max_timeout_slots: int = 1024

    def __post_init__(self) -> None:
        if self.ack_timeout_slots < 1:
            raise ValueError("ack_timeout_slots must be >= 1")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries must be None or >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_timeout_slots < self.ack_timeout_slots:
            raise ValueError("max_timeout_slots must be >= ack_timeout_slots")

    def timeout_after(self, consecutive_failures: int) -> int:
        """Wait (in slots) after the given number of failed attempts."""
        wait = self.ack_timeout_slots * self.backoff**consecutive_failures
        return int(min(self.max_timeout_slots, wait))


@dataclass(frozen=True)
class ProtocolRun:
    """Ground-truth record of one protocol execution.

    Attributes
    ----------
    message:
        Message symbols the sender wanted to convey, in order.
    delivered:
        The receiver's final symbol stream, aligned with message
        positions (``delivered[k]`` is the receiver's belief about
        ``message[k]``).
    channel_uses:
        Total number of channel uses consumed.
    sender_slots:
        Channel uses that consumed sender time (deletions +
        transmissions). ``channel_uses - sender_slots`` equals the
        number of insertions.
    deletions, insertions, transmissions:
        Event counts observed during the run.
    bits_per_symbol:
        Symbol width ``N``.
    degraded:
        True when the protocol fell back to a degraded mode during the
        run — it abandoned symbols after retry exhaustion, recovered
        from counter desynchronization, or ran out of budget while
        faults were active. A degraded run is still *honest*: the
        record reflects what actually happened on the wire.
    fault_counts:
        Per-run fault accounting (e.g. ``acks_lost``,
        ``desyncs_recovered``, ``resync_epochs``,
        ``symbols_abandoned``). Empty for fault-free runs.
    """

    message: np.ndarray
    delivered: np.ndarray
    channel_uses: int
    sender_slots: int
    deletions: int
    insertions: int
    transmissions: int
    bits_per_symbol: int
    degraded: bool = False
    fault_counts: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.channel_uses < 0 or self.sender_slots < 0:
            raise ValueError("counts must be non-negative")
        if self.sender_slots > self.channel_uses:
            raise ValueError("sender_slots cannot exceed channel_uses")

    def fault_count(self, name: str) -> int:
        """Occurrences of fault *name* during the run (0 if absent)."""
        return self.fault_counts.get(name, 0)

    @property
    def symbols_delivered(self) -> int:
        return int(self.delivered.shape[0])

    @property
    def symbol_errors(self) -> int:
        """Positions where the receiver's belief differs from the message."""
        n = self.symbols_delivered
        return int(np.count_nonzero(self.delivered != self.message[:n]))

    @property
    def symbol_error_rate(self) -> float:
        n = self.symbols_delivered
        return self.symbol_errors / n if n else 0.0

    @property
    def throughput_per_use(self) -> float:
        """Raw symbol throughput x N, bits per channel use."""
        if self.channel_uses == 0:
            return 0.0
        return self.bits_per_symbol * self.symbols_delivered / self.channel_uses

    @property
    def throughput_per_slot(self) -> float:
        """Raw symbol throughput x N, bits per sender slot."""
        if self.sender_slots == 0:
            return 0.0
        return self.bits_per_symbol * self.symbols_delivered / self.sender_slots

    def information_rate_per_slot(self, per_symbol_information: float) -> float:
        """Scale a per-symbol information content (e.g. ``C_conv`` at the
        measured substitution rate) into bits per sender slot."""
        if self.sender_slots == 0:
            return 0.0
        return per_symbol_information * self.symbols_delivered / self.sender_slots


class SynchronizationProtocol(abc.ABC):
    """Base class for protocols executed against Definition-1 channels.

    Subclasses implement :meth:`run`, consuming channel randomness from
    the supplied generator so that runs are reproducible.
    """

    def __init__(self, params: ChannelParameters, *, bits_per_symbol: int = 1) -> None:
        if bits_per_symbol < 1:
            raise ValueError("bits_per_symbol must be >= 1")
        if not is_zero(params.substitution):
            raise ValueError(
                "synchronization analysis assumes a noiseless data channel "
                "(paper section 4.2); set substitution=0"
            )
        self.params = params
        self.bits_per_symbol = bits_per_symbol
        self.alphabet_size = 2**bits_per_symbol

    @abc.abstractmethod
    def run(
        self,
        message: np.ndarray,
        rng: np.random.Generator,
        *,
        max_uses: Optional[int] = None,
    ) -> ProtocolRun:
        """Execute the protocol until the message is exhausted (or
        *max_uses* channel uses elapse) and return the run record."""

    def _validate_message(self, message: np.ndarray) -> np.ndarray:
        msg = np.asarray(message, dtype=np.int64)
        if msg.ndim != 1:
            raise ValueError("message must be a 1-D array of symbols")
        if msg.size and (msg.min() < 0 or msg.max() >= self.alphabet_size):
            raise ValueError("message symbol out of alphabet range")
        return msg
