"""Counter protocol over a noisy (substituting) data path.

Companion to :mod:`repro.core.noisy`: the same Appendix-A counter
protocol, but transmitted symbols may be corrupted (substitution
probability ``P_s``, uniform over the other symbols). Deletion/
insertion bookkeeping is unchanged — the counters never inspect symbol
*values* — so the protocol composes with noise for free, and the run's
empirical substitution rate matches
:func:`repro.core.noisy.noisy_converted_error_probability`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.events import ChannelEvent, ChannelParameters, sample_events
from .protocols import ProtocolRun, SynchronizationProtocol

__all__ = ["NoisyCounterProtocol"]


class NoisyCounterProtocol(SynchronizationProtocol):
    """Appendix-A counter protocol tolerating substitution noise."""

    def __init__(
        self, params: ChannelParameters, *, bits_per_symbol: int = 1
    ) -> None:
        # Bypass the noiseless restriction of the base class: store the
        # parameters directly after validating the rest.
        if bits_per_symbol < 1:
            raise ValueError("bits_per_symbol must be >= 1")
        self.params = params
        self.bits_per_symbol = bits_per_symbol
        self.alphabet_size = 2**bits_per_symbol

    def run(
        self,
        message: np.ndarray,
        rng: np.random.Generator,
        *,
        max_uses: Optional[int] = None,
    ) -> ProtocolRun:
        msg = self._validate_message(message)
        p = self.params
        delivered = np.empty(msg.size, dtype=np.int64)
        pos = 0
        uses = 0
        sender_slots = 0
        deletions = insertions = transmissions = 0
        a = self.alphabet_size
        while pos < msg.size:
            if max_uses is not None and uses >= max_uses:
                break
            block = 2048 if max_uses is None else min(2048, max_uses - uses)
            events = sample_events(p, block, rng)
            inserted = rng.integers(0, a, size=block)
            offsets = (
                rng.integers(1, a, size=block)
                if a > 1
                else np.zeros(block, dtype=np.int64)
            )
            for k in range(block):
                if pos >= msg.size:
                    break
                ev = int(events[k])
                uses += 1
                if ev == ChannelEvent.DELETION:
                    deletions += 1
                    sender_slots += 1
                elif ev == ChannelEvent.INSERTION:
                    insertions += 1
                    delivered[pos] = inserted[k]
                    pos += 1
                elif ev == ChannelEvent.TRANSMISSION:
                    transmissions += 1
                    sender_slots += 1
                    delivered[pos] = msg[pos]
                    pos += 1
                else:  # SUBSTITUTION: delivered but corrupted
                    transmissions += 1
                    sender_slots += 1
                    delivered[pos] = (msg[pos] + offsets[k]) % a
                    pos += 1

        return ProtocolRun(
            message=msg,
            delivered=delivered[:pos].copy(),
            channel_uses=uses,
            sender_slots=sender_slots,
            deletions=deletions,
            insertions=insertions,
            transmissions=transmissions,
            bits_per_symbol=self.bits_per_symbol,
        )
