"""An adaptive covert transmitter: estimate, then synchronize.

End-to-end composition of the library's pieces into the workflow a
real covert-channel *user* (or red-team evaluator) would follow:

1. **probe** — send pilot frames of known bits through the channel;
2. **estimate** — maximum-likelihood fit of ``(P_i, P_d)`` from the
   pilots (:mod:`repro.coding.identification`);
3. **transmit** — run the Theorem-5 counter protocol sized by the
   estimates, with feedback;
4. **account** — report the achieved information rate *including* the
   pilot overhead, next to the oracle rate (true parameters known in
   advance) and the theoretical bounds.

The pilot cost is a one-time term, so the effective rate approaches
the oracle rate as the payload grows — quantified by
:meth:`AdaptiveCovertSession.overhead_fraction`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..coding.forward_backward import DriftChannelModel
from ..coding.identification import ChannelEstimate, estimate_channel_parameters
from ..core.capacity import feedback_lower_bound_exact
from ..core.events import ChannelParameters
from ..infotheory.probability import is_zero
from .feedback import CounterProtocol
from .harness import ProtocolMeasurement, measure_protocol

__all__ = ["AdaptiveCovertSession", "run_adaptive_session"]


@dataclass(frozen=True)
class AdaptiveCovertSession:
    """Outcome of one probe-estimate-transmit session.

    Attributes
    ----------
    estimate:
        The ML channel estimate from the pilot phase.
    measurement:
        The transmit-phase protocol measurement.
    pilot_uses:
        Channel uses spent on pilots.
    payload_uses:
        Channel uses spent on the payload transfer.
    true_params:
        The actual channel parameters (for reporting).
    """

    estimate: ChannelEstimate
    measurement: ProtocolMeasurement
    pilot_uses: int
    payload_uses: int
    true_params: ChannelParameters

    @property
    def overhead_fraction(self) -> float:
        """Share of total channel uses burnt on estimation."""
        total = self.pilot_uses + self.payload_uses
        return self.pilot_uses / total if total else 0.0

    @property
    def effective_rate(self) -> float:
        """Information rate amortized over pilots + payload, bits/use."""
        total = self.pilot_uses + self.payload_uses
        if total == 0:
            return 0.0
        info = (
            self.measurement.empirical_information_per_slot
            * self.measurement.run.sender_slots
        )
        return info / total

    @property
    def oracle_rate(self) -> float:
        """Theorem-5 exact rate with the true parameters known for
        free, bits per sender slot."""
        p = self.true_params
        if p.insertion >= 1.0:
            return 0.0
        return feedback_lower_bound_exact(1, p.deletion, p.insertion)

    def summary(self) -> str:
        e = self.estimate
        p = self.true_params
        return "\n".join(
            [
                "Adaptive covert session",
                f"  true channel        : P_i={p.insertion:.4f} P_d={p.deletion:.4f}",
                f"  estimated           : P_i={e.insertion_prob:.4f} "
                f"P_d={e.deletion_prob:.4f}",
                f"  pilot overhead      : {self.overhead_fraction:.2%} of uses",
                f"  effective rate      : {self.effective_rate:.4f} bits/use",
                f"  oracle rate (Thm 5) : {self.oracle_rate:.4f} bits/slot",
            ]
        )


def run_adaptive_session(
    true_params: ChannelParameters,
    rng: np.random.Generator,
    *,
    pilot_frames: int = 3,
    pilot_length: int = 150,
    payload_symbols: int = 30_000,
    grid=(0.01, 0.04, 0.1),
) -> AdaptiveCovertSession:
    """Execute the probe-estimate-transmit workflow.

    The pilot phase uses the bit-level drift channel (the receiver has
    no synchronization yet); the transmit phase then runs the counter
    protocol with feedback. Both consume the same underlying channel
    statistics.
    """
    if not is_zero(true_params.substitution):
        raise ValueError("adaptive session assumes a noiseless data path")
    channel = DriftChannelModel(
        insertion_prob=true_params.insertion,
        deletion_prob=true_params.deletion,
        max_drift=64,
    )
    pilots, received = [], []
    pilot_uses = 0
    for _ in range(pilot_frames):
        bits = rng.integers(0, 2, pilot_length)
        y, events = channel.transmit(bits, rng)
        pilots.append(bits)
        received.append(y)
        pilot_uses += int(events.size)
    estimate = estimate_channel_parameters(pilots, received, grid=grid)

    # Size the protocol with the *estimated* parameters (they determine
    # nothing structural for the counter protocol itself, but a real
    # deployment would pick block/coding parameters from them; here
    # they flow into the reported bounds).
    protocol = CounterProtocol(true_params, bits_per_symbol=1)
    message = rng.integers(0, 2, payload_symbols)
    measurement = measure_protocol(protocol, message, rng)
    return AdaptiveCovertSession(
        estimate=estimate,
        measurement=measurement,
        pilot_uses=pilot_uses,
        payload_uses=measurement.run.channel_uses,
        true_params=true_params,
    )
