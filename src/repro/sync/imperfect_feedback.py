"""Synchronization with an *imperfect* feedback path.

The paper's Theorems 2-5 assume the feedback path is perfect — "this
simplifies the analysis, and is also a requirement for deriving the
maximum information rate" (§4.2). This module quantifies what that
assumption is worth: the classic **alternating-bit protocol** run over
a forward deletion channel whose *acknowledgments are also lost*, with
probability ``q`` each.

With lossy acks the sender sometimes resends a symbol the receiver
already has; the alternating (sequence) bit lets the receiver discard
the duplicates, so delivery stays reliable — but every duplicate burns
a sender slot. The achieved rate has a clean closed form:

    per delivered symbol the expected number of forward uses is the
    expected number of (transmission attempt) trials until a round
    succeeds *and* its ack survives, i.e. 1 / ((1 - p_d)(1 - q))
    forward uses for the last successful round, plus the duplicate
    resends caused by lost acks of *successful* rounds...

Summing the geometric rounds exactly:

    R(p_d, q) = N * (1 - p_d) * (1 - q)     bits per channel use,

because each channel use is an independent trial that concludes a
symbol's delivery-and-acknowledgment with probability
``(1 - p_d)(1 - q)``. Setting ``q = 0`` recovers Theorem 3 exactly, so
the feedback imperfection enters as a *multiplicative* ``(1 - q)``
penalty — the ablation reported in experiment E10.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.events import ChannelParameters
from ..infotheory.probability import is_zero
from .protocols import ProtocolRun, SynchronizationProtocol

__all__ = [
    "AlternatingBitProtocol",
    "lossy_feedback_capacity",
    "BlockAckProtocol",
    "block_ack_rate",
]


def lossy_feedback_capacity(
    bits_per_symbol: int, deletion_prob: float, ack_loss_prob: float
) -> float:
    """Closed-form rate of the alternating-bit protocol, bits per use.

    ``N (1 - p_d)(1 - q)`` — the Theorem-3 capacity scaled by the ack
    survival probability. A *lower* bound on the lossy-feedback channel
    capacity (smarter block-ack schemes can amortize the ack loss), and
    exactly what :class:`AlternatingBitProtocol` achieves.
    """
    if bits_per_symbol < 1:
        raise ValueError("bits_per_symbol must be >= 1")
    if not 0.0 <= deletion_prob <= 1.0:
        raise ValueError("deletion_prob must be in [0, 1]")
    if not 0.0 <= ack_loss_prob <= 1.0:
        raise ValueError("ack_loss_prob must be in [0, 1]")
    return bits_per_symbol * (1.0 - deletion_prob) * (1.0 - ack_loss_prob)


class AlternatingBitProtocol(SynchronizationProtocol):
    """Resend-until-acknowledged with lossy acknowledgments.

    Per channel use the sender transmits the current symbol tagged with
    its alternating bit; the symbol survives the forward channel with
    probability ``1 - p_d``; if delivered, the receiver acks, and the
    ack survives the feedback path with probability ``1 - q``. The
    sender advances only on a received ack; duplicates (delivered but
    un-acked) are discarded by the receiver via the alternating bit.

    Parameters
    ----------
    params:
        Forward channel parameters; must have ``P_i = 0`` (insertions
        would need the counter protocol's skip logic — see
        :class:`repro.sync.feedback.CounterProtocol`).
    ack_loss_prob:
        Probability an acknowledgment is lost on the feedback path.
    """

    def __init__(
        self,
        params: ChannelParameters,
        *,
        bits_per_symbol: int = 1,
        ack_loss_prob: float = 0.0,
    ) -> None:
        if not is_zero(params.insertion):
            raise ValueError(
                "AlternatingBitProtocol handles deletion channels only"
            )
        if not 0.0 <= ack_loss_prob < 1.0:
            raise ValueError("ack_loss_prob must be in [0, 1)")
        super().__init__(params, bits_per_symbol=bits_per_symbol)
        self.ack_loss_prob = ack_loss_prob

    def run(
        self,
        message: np.ndarray,
        rng: np.random.Generator,
        *,
        max_uses: Optional[int] = None,
    ) -> ProtocolRun:
        msg = self._validate_message(message)
        p_d = self.params.deletion
        q = self.ack_loss_prob
        success = (1.0 - p_d) * (1.0 - q)
        uses = 0
        delivered_count = 0
        deletions = 0
        duplicates = 0
        remaining = msg.size
        if success <= 0.0 and remaining > 0:
            if max_uses is None:
                raise ValueError(
                    "protocol can never advance (p_d = 1); pass max_uses"
                )
        while remaining > 0:
            if max_uses is not None and uses >= max_uses:
                break
            if success <= 0.0:
                spent = max_uses - uses
                uses += spent
                deletions += spent  # at best: everything lost
                break
            # Per-symbol round count: geometric in the joint success.
            batch = min(remaining, 4096)
            rounds = rng.geometric(success, size=batch)
            for r in rounds:
                r = int(r)
                if max_uses is not None and uses + r > max_uses:
                    spent = max_uses - uses
                    uses += spent
                    remaining = 0
                    break
                uses += r
                # Of the r - 1 failed rounds, each failed by deletion
                # w.p. p_d / (1 - success') ... classify for the record:
                # failure = deletion OR (delivered AND ack lost).
                fail_del = 0
                if r > 1:
                    p_fail_del = p_d / (p_d + (1 - p_d) * q) if (p_d + (1 - p_d) * q) > 0 else 0.0
                    fail_del = int(rng.binomial(r - 1, p_fail_del))
                deletions += fail_del
                duplicates += (r - 1) - fail_del
                delivered_count += 1
                remaining -= 1
                if remaining == 0:
                    break
            if max_uses is not None and uses >= max_uses:
                break

        delivered = msg[:delivered_count].copy()
        return ProtocolRun(
            message=msg,
            delivered=delivered,
            channel_uses=uses,
            sender_slots=uses,
            deletions=deletions,
            insertions=0,
            # Duplicates physically arrive but carry no new information;
            # they are counted as transmissions in the event ledger.
            transmissions=delivered_count + duplicates,
            bits_per_symbol=self.bits_per_symbol,
        )


def block_ack_rate(
    bits_per_symbol: int,
    deletion_prob: float,
    ack_loss_prob: float,
    block_size: int,
) -> float:
    """Expected rate of :class:`BlockAckProtocol`, bits per channel use.

    Per round the sender transmits its ``B``-symbol window once
    (``B`` uses); each symbol survives independently with probability
    ``1 - p_d``; a single cumulative acknowledgment then survives with
    probability ``1 - q``, and on ack loss the *whole* round's progress
    is retransmitted (the sender cannot tell what arrived). The renewal
    rate is therefore

        R = N (1 - p_d) (1 - q)' ... exactly:
        R = N * B (1 - p_d) (1 - q) / B = N (1 - p_d) (1 - q)

    for the naive full-retransmit variant — no gain. The implemented
    protocol instead repeats the *ack* ``r`` times per round (acks are
    tiny; repeating them costs no forward channel uses), so the
    effective ack loss is ``q**r`` and

        R(B, r) = N (1 - p_d) (1 - q**r).

    With ``r`` chosen ~ ``log B`` the penalty vanishes — quantifying
    that the paper's perfect-feedback assumption is an engineering
    limit, not a physical requirement. ``block_size`` sets ``r``:
    ``r = 1 + floor(log2(block_size))``.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    base = lossy_feedback_capacity(bits_per_symbol, deletion_prob, 0.0)
    repeats = 1 + int(np.floor(np.log2(block_size)))
    return base * (1.0 - ack_loss_prob**repeats)


class BlockAckProtocol(SynchronizationProtocol):
    """Selective-repeat window protocol with repeated cumulative acks.

    Each round the sender transmits every not-yet-acknowledged symbol
    in its ``block_size`` window (one channel use each); the receiver
    returns a cumulative bitmap acknowledgment, repeated
    ``1 + floor(log2(block_size))`` times on the (cheap) feedback path
    so the round's feedback is lost only with probability ``q**r``.
    Lost acks cost a full re-round of the still-pending symbols.

    As ``block_size`` grows the achieved rate approaches the Theorem-3
    capacity ``N (1 - p_d)`` even over a lossy feedback path — the
    amortization result experiment E10 contrasts with the
    alternating-bit protocol's unamortized ``(1 - q)`` penalty.
    """

    def __init__(
        self,
        params: ChannelParameters,
        *,
        bits_per_symbol: int = 1,
        ack_loss_prob: float = 0.0,
        block_size: int = 16,
    ) -> None:
        if not is_zero(params.insertion):
            raise ValueError("BlockAckProtocol handles deletion channels only")
        if not 0.0 <= ack_loss_prob < 1.0:
            raise ValueError("ack_loss_prob must be in [0, 1)")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        super().__init__(params, bits_per_symbol=bits_per_symbol)
        self.ack_loss_prob = ack_loss_prob
        self.block_size = block_size
        self.ack_repeats = 1 + int(np.floor(np.log2(block_size)))

    def run(
        self,
        message: np.ndarray,
        rng: np.random.Generator,
        *,
        max_uses: Optional[int] = None,
    ) -> ProtocolRun:
        msg = self._validate_message(message)
        p_d = self.params.deletion
        q_round = self.ack_loss_prob**self.ack_repeats
        uses = 0
        deletions = 0
        transmissions = 0
        delivered_count = 0
        pos = 0
        budget_hit = False
        while pos < msg.size and not budget_hit:
            window = min(self.block_size, msg.size - pos)
            pending = np.ones(window, dtype=bool)
            # Receiver-side knowledge accumulates across rounds even if
            # acks are lost (the data arrived; only the sender is
            # uncertain). Rounds repeat until the sender *knows* all
            # arrived.
            received_mask = np.zeros(window, dtype=bool)
            while pending.any():
                n_pending = int(pending.sum())
                if max_uses is not None and uses + n_pending > max_uses:
                    budget_hit = True
                    break
                uses += n_pending
                survived = rng.random(n_pending) >= p_d
                deletions += n_pending - int(survived.sum())
                transmissions += int(survived.sum())
                idx = np.nonzero(pending)[0]
                received_mask[idx[survived]] = True
                # Cumulative ack round (repeated on the feedback path).
                if rng.random() >= q_round:
                    pending = ~received_mask
            if budget_hit:
                break
            delivered_count += window
            pos += window

        delivered = msg[:delivered_count].copy()
        return ProtocolRun(
            message=msg,
            delivered=delivered,
            channel_uses=uses,
            sender_slots=uses,
            deletions=deletions,
            insertions=0,
            transmissions=transmissions,
            bits_per_symbol=self.bits_per_symbol,
        )
