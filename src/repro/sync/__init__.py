"""Synchronization mechanisms for non-synchronous covert channels.

Feedback protocols (Theorems 3 and 5), the Figure-1 two-variable
handshake, common-event-source synchronization (Figures 3-4), and a
measurement harness comparing achieved rates against the paper's bounds.
"""

from .common_event import (
    CommonEventConfig,
    CommonEventRun,
    common_event_rate,
    compare_with_feedback,
    induced_parameters,
    simulate_common_event_channel,
)
from .adaptive import AdaptiveCovertSession, run_adaptive_session
from .feedback import CounterProtocol, ResendProtocol
from .imperfect_feedback import (
    AlternatingBitProtocol,
    BlockAckProtocol,
    block_ack_rate,
    lossy_feedback_capacity,
)
from .noisy import NoisyCounterProtocol
from .harness import (
    ProtocolMeasurement,
    measure_protocol,
    substitution_error_capacity,
)
from .protocols import ProtocolRun, RetryPolicy, SynchronizationProtocol
from .variables import HandshakeResult, HandshakeSimulator, SyncVariable

__all__ = [
    "AdaptiveCovertSession",
    "run_adaptive_session",
    "CommonEventConfig",
    "CommonEventRun",
    "common_event_rate",
    "compare_with_feedback",
    "induced_parameters",
    "simulate_common_event_channel",
    "CounterProtocol",
    "ResendProtocol",
    "AlternatingBitProtocol",
    "BlockAckProtocol",
    "block_ack_rate",
    "lossy_feedback_capacity",
    "NoisyCounterProtocol",
    "ProtocolMeasurement",
    "measure_protocol",
    "substitution_error_capacity",
    "ProtocolRun",
    "RetryPolicy",
    "SynchronizationProtocol",
    "HandshakeResult",
    "HandshakeSimulator",
    "SyncVariable",
]
