"""Synchronization via a common event source (Figures 3b and 4).

Instead of a feedback path, both parties observe a shared event source
``E`` (e.g. a self-incrementing counter or coarse clock) and use its
ticks to schedule their operations: the sender writes the shared
resource on each tick, the receiver samples it on each tick. If both
parties actually ran on every tick the channel would be synchronous; in
a covert setting each party *misses* ticks with some probability
(scheduler interference — paper §3.1), and without feedback nothing
corrects the resulting drop-outs and re-reads:

* sender writes, receiver misses, sender writes again → the first
  symbol is overwritten: a **deletion**;
* sender misses, receiver samples → the receiver re-reads the stale
  value: an **insertion**.

:func:`simulate_common_event_channel` measures the induced
``(P_d, P_i)``; :func:`compare_with_feedback` then quantifies the
paper's Section 4.2.2 claim that exploiting ``E`` can never beat a
feedback path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.capacity import (
    converted_capacity,
    converted_insertion_fraction,
    erasure_upper_bound,
)
from ..core.events import ChannelParameters

__all__ = [
    "CommonEventConfig",
    "CommonEventRun",
    "simulate_common_event_channel",
    "induced_parameters",
    "common_event_rate",
    "compare_with_feedback",
]


@dataclass(frozen=True)
class CommonEventConfig:
    """Tick-miss probabilities for the two parties.

    Attributes
    ----------
    sender_miss:
        Probability the sender fails to act on a tick (it was not
        scheduled in time).
    receiver_miss:
        Probability the receiver fails to sample on a tick.
    """

    sender_miss: float
    receiver_miss: float

    def __post_init__(self) -> None:
        for name in ("sender_miss", "receiver_miss"):
            v = getattr(self, name)
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {v}")


@dataclass(frozen=True)
class CommonEventRun:
    """Trace of a common-event-synchronized transfer.

    ``delivered[k]`` is what the receiver's k-th sample position holds,
    aligned against the message (stale re-reads replace the symbol that
    was overwritten or never written). Event counts mirror Definition 1.
    """

    message: np.ndarray
    delivered: np.ndarray
    ticks: int
    deletions: int
    insertions: int
    transmissions: int
    bits_per_symbol: int

    @property
    def receiver_samples(self) -> int:
        return self.insertions + self.transmissions


def simulate_common_event_channel(
    message: np.ndarray,
    config: CommonEventConfig,
    rng: np.random.Generator,
    *,
    bits_per_symbol: int = 1,
) -> CommonEventRun:
    """Drive a register channel with tick-based (open-loop) scheduling.

    Each tick the sender writes the next message symbol with probability
    ``1 - sender_miss`` and the receiver samples with probability
    ``1 - receiver_miss``. Classification per tick pair:

    * write followed by sample → transmission;
    * write, no sample → the value sits in the register; if the sender
      writes again before any sample, the old value is deleted;
    * no write, sample → the receiver re-reads the stale register
      (insertion), except before the first ever write (counted as an
      insertion of the register's initial value).
    """
    msg = np.asarray(message, dtype=np.int64)
    if msg.ndim != 1:
        raise ValueError("message must be 1-D")
    alphabet = 2**bits_per_symbol
    if msg.size and (msg.min() < 0 or msg.max() >= alphabet):
        raise ValueError("message symbol out of range")

    register = 0
    pending = False  # a written symbol not yet sampled
    delivered: List[int] = []
    deletions = insertions = transmissions = 0
    pos = 0
    ticks = 0
    # Cap runtime: expected ticks per symbol is 1/(1-sender_miss).
    max_ticks = 64 * (msg.size + 1) + 1000
    while pos < msg.size and ticks < max_ticks:
        ticks += 1
        sender_acts = rng.random() >= config.sender_miss
        receiver_acts = rng.random() >= config.receiver_miss
        if sender_acts:
            if pending:
                # Overwrite before the receiver sampled: deletion of the
                # previously written symbol.
                deletions += 1
                delivered.append(-1)  # placeholder, fixed below
            register = int(msg[pos])
            pos += 1
            pending = True
        if receiver_acts:
            if pending:
                transmissions += 1
                delivered.append(register)
                pending = False
            else:
                # Stale re-read: spurious symbol from the receiver's
                # point of view.
                insertions += 1
                delivered.append(register)

    # Positions marked -1 were deleted symbols the receiver never saw;
    # drop them from the delivered stream (the receiver has no sample
    # there) — they survive only in the deletion count.
    out = np.asarray([d for d in delivered if d >= 0], dtype=np.int64)
    return CommonEventRun(
        message=msg,
        delivered=out,
        ticks=ticks,
        deletions=deletions,
        insertions=insertions,
        transmissions=transmissions,
        bits_per_symbol=bits_per_symbol,
    )


def induced_parameters(run: CommonEventRun) -> ChannelParameters:
    """Definition-1 parameters induced by the tick-miss process."""
    total = run.deletions + run.insertions + run.transmissions
    if total == 0:
        raise ValueError("empty run")
    return ChannelParameters(
        deletion=run.deletions / total,
        insertion=run.insertions / total,
        transmission=run.transmissions / total,
    )


def common_event_rate(run: CommonEventRun) -> float:
    """Achievable information rate of the open-loop scheme, bits/tick.

    Without feedback the parties cannot re-align, so the receiver must
    treat its sample stream as a deletion-insertion channel. We credit
    it with the *erasure-equipped* rate of the induced channel — i.e.
    the Theorem-1 upper bound scaled by the converted-channel loss at
    the induced insertion fraction — which over-credits the open-loop
    scheme and therefore makes the Section 4.2.2 comparison
    conservative.
    """
    params = induced_parameters(run)
    if run.ticks == 0:
        return 0.0
    q = converted_insertion_fraction(params.deletion, params.insertion)
    per_symbol = converted_capacity(run.bits_per_symbol, q)
    return per_symbol * run.receiver_samples / run.ticks


def compare_with_feedback(
    run: CommonEventRun,
) -> dict:
    """Section 4.2.2 comparison: common events never beat feedback.

    Returns the open-loop rate, the feedback (Theorem 4) upper bound on
    the *same* induced channel, and their ratio (<= 1 when the claim
    holds).
    """
    params = induced_parameters(run)
    open_loop = common_event_rate(run)
    feedback_upper = erasure_upper_bound(run.bits_per_symbol, params.deletion)
    return {
        "open_loop_rate": open_loop,
        "feedback_upper_bound": feedback_upper,
        "ratio": open_loop / feedback_upper if feedback_upper > 0 else 0.0,
        "induced_deletion": params.deletion,
        "induced_insertion": params.insertion,
    }
