"""Worker-tier solve functions: module-level, picklable, fault-aware.

:func:`solve_query_batch` is the only code the service ships across the
process boundary. It is deliberately dumb: re-derive the batch's RNG
substream from ``(seed, batch_id, attempt)``, roll the fault plan's
dice (chaos testing), then solve each query with the core capacity
functions. All statefulness — retries, breakers, caching, deadlines —
stays in the parent; a worker that dies mid-batch loses nothing that
cannot be recomputed bit-identically from the payload.

``block_bound`` queries are the one kind with cross-query structure:
a batch's block_bound queries are grouped and solved by a *single*
batched Blahut-Arimoto kernel invocation
(:func:`repro.bounds.indel_block_bound_sweep`), so the worker pays one
table build plus one vectorized solver loop for the whole group instead
of one solve per query.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..bounds.indel import indel_block_bound_sweep
from ..core.capacity import erasure_upper_bound
from ..core.estimation import CapacityEstimator
from ..core.events import ChannelParameters
from ..core.theorems import capacity_bracket
from ..estimation import (
    SchedulerTimingSampler,
    bsc_sampler,
    estimate_sample_capacity,
    mary_sampler,
)
from ..estimation.samplers import ChannelSampler
from ..faults.service_faults import ServiceFaultPlan, apply_worker_faults
from ..simulation.rng import RngFactory
from .query import CapacityQuery

__all__ = [
    "BLOCK_BOUND_LENGTH",
    "BLOCK_BOUND_MAX_EXTRA",
    "SAMPLE_CAPACITY_SEED",
    "SAMPLE_CAPACITY_K",
    "SCHEDULER_BURSTS",
    "reference_sampler",
    "solve_query",
    "solve_query_batch",
]

#: Finite-block parameters for ``block_bound`` queries. Fixed (not
#: client-tunable) so every query of the kind shares one table shape —
#: the property that lets a whole group ride one batched kernel call —
#: and small enough that a single solve stays comfortably inside a
#: query deadline.
BLOCK_BOUND_LENGTH = 6
BLOCK_BOUND_MAX_EXTRA = 3

#: ``sample_capacity`` knobs are fixed server-side (not client-tunable)
#: so the answer is a pure function of the query's semantic fields —
#: the property the semantic-key cache requires — and so repeat runs
#: are bit-identical.
SAMPLE_CAPACITY_SEED = 0
SAMPLE_CAPACITY_K = 8

#: Burst-length alphabet of the ``"scheduler"`` reference sampler (the
#: §3.1 uniprocessor timing channel priced by experiment E17).
SCHEDULER_BURSTS = (1, 2, 4)


def reference_sampler(query: CapacityQuery) -> ChannelSampler:
    """Build the reference sampler a ``sample_capacity`` query names.

    The query's ``deletion`` field carries the one noise knob each
    reference channel has; normalization guarantees it is in ``[0, 1)``
    and that the alphabet-shape constraints hold.
    """
    if query.sampler == "bsc":
        return bsc_sampler(query.deletion)
    if query.sampler == "mary":
        return mary_sampler(2**query.bits_per_symbol, query.deletion)
    if query.sampler == "scheduler":
        return SchedulerTimingSampler(SCHEDULER_BURSTS, query.deletion)
    raise ValueError(f"unknown sampler {query.sampler!r}")


def _block_bound_values(
    points: List[Tuple[float, float]],
) -> List[Dict[str, float]]:
    """Solve a group of ``(P_d, P_i)`` block_bound points at once.

    One :func:`repro.bounds.indel_block_bound_sweep` call — one stacked
    table build, one batched kernel invocation. The backend is pinned
    to ``"numpy"`` because service answers are cached under
    semantic-only keys (:func:`repro.service.query.query_key`): the
    stored value must not depend on which backend happened to be
    configured in the worker's environment.
    """
    bounds = indel_block_bound_sweep(
        points,
        block_length=BLOCK_BOUND_LENGTH,
        max_extra=BLOCK_BOUND_MAX_EXTRA,
        backend="numpy",
    )
    return [
        {"lower": bound.lower_bound, "upper": bound.erasure_upper}
        for bound in bounds
    ]


def solve_query(query: CapacityQuery) -> Dict[str, float]:
    """Solve one validated query at full fidelity.

    ``estimate`` runs the §4.3 estimator (corrected capacity plus the
    Theorem-5 feedback lower bound), ``bounds`` the Theorem 4/5
    bracket, ``erasure`` the Theorem-1 bound alone, ``block_bound``
    the no-feedback finite-block bracket (a one-point batch), and
    ``sample_capacity`` the kNN sample-based estimate on the named
    reference sampler (fixed seed and neighbour order, so the answer
    is deterministic and cacheable under the semantic key; memoized
    through :mod:`repro.store` whenever the worker has an active
    store). Raises ``ValueError`` for an unknown kind — which
    normalization makes unreachable through the service front door.
    """
    n = query.bits_per_symbol
    if query.kind == "estimate":
        params = ChannelParameters(
            deletion=query.deletion,
            insertion=query.insertion,
            transmission=max(0.0, 1.0 - query.deletion - query.insertion),
        )
        report = CapacityEstimator(n).estimate(params)
        return {
            "corrected_capacity": report.corrected_capacity,
            "feedback_lower": report.feedback_lower,
        }
    if query.kind == "bounds":
        lower, upper = capacity_bracket(n, query.deletion, query.insertion)
        return {"lower": lower, "upper": upper}
    if query.kind == "erasure":
        return {"upper": erasure_upper_bound(n, query.deletion)}
    if query.kind == "block_bound":
        (value,) = _block_bound_values([(query.deletion, query.insertion)])
        return value
    if query.kind == "sample_capacity":
        result = estimate_sample_capacity(
            reference_sampler(query),
            n_samples=query.n_samples,
            seed=SAMPLE_CAPACITY_SEED,
            k=SAMPLE_CAPACITY_K,
        )
        return {
            "capacity": result.capacity,
            "mutual_information": result.bits_per_symbol,
            "mean_time": result.mean_time,
        }
    raise ValueError(f"unknown query kind {query.kind!r}")


def solve_query_batch(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Solve a batch of queries in a worker process.

    Parameters
    ----------
    payload:
        ``{"queries": [CapacityQuery, ...], "seed": int,
        "batch_id": str, "attempt": int, "faults": plan-or-None}``.
        The fault plan's dice are rolled against the substream
        ``service/batch/<batch_id>/attempt/<attempt>`` *before* any
        solving — so a crashy plan kills the worker with the whole
        batch unsolved (the supervision/retry path under test), and a
        retry (new ``attempt``) rerolls on a fresh substream instead of
        deterministically re-dying forever.

    Returns
    -------
    One entry per query, in order: ``{"query_id", "value"}`` on
    success or ``{"query_id", "error"}`` when that query's solve
    raised. Per-query errors are deterministic (same query → same
    error), so the parent treats them as non-retryable. The batch's
    ``block_bound`` queries are solved together by one batched kernel
    invocation (and fail together if that solve raises); every other
    kind is solved — and isolated — per query.
    """
    queries: List[CapacityQuery] = list(payload["queries"])
    plan: Optional[ServiceFaultPlan] = payload.get("faults")
    if plan is not None and plan.injects_faults:
        rng = RngFactory(int(payload.get("seed", 0))).fresh(
            "service/batch/{0}/attempt/{1}".format(
                payload.get("batch_id", "b0"), payload.get("attempt", 0)
            )
        )
        apply_worker_faults(plan, rng)
    results: List[Optional[Dict[str, Any]]] = [None] * len(queries)
    block_indices = [
        i for i, query in enumerate(queries) if query.kind == "block_bound"
    ]
    if block_indices:
        try:
            values = _block_bound_values(
                [
                    (queries[i].deletion, queries[i].insertion)
                    for i in block_indices
                ]
            )
            for i, value in zip(block_indices, values):
                results[i] = {
                    "query_id": queries[i].query_id,
                    "value": value,
                }
        except Exception as exc:  # noqa: BLE001 — group-level isolation
            for i in block_indices:
                results[i] = {
                    "query_id": queries[i].query_id,
                    "error": repr(exc),
                }
    for i, query in enumerate(queries):
        if results[i] is not None:
            continue
        try:
            results[i] = {
                "query_id": query.query_id,
                "value": solve_query(query),
            }
        except Exception as exc:  # noqa: BLE001 — per-query isolation
            results[i] = {"query_id": query.query_id, "error": repr(exc)}
    return [entry for entry in results if entry is not None]
