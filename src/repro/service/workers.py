"""Worker-tier solve functions: module-level, picklable, fault-aware.

:func:`solve_query_batch` is the only code the service ships across the
process boundary. It is deliberately dumb: re-derive the batch's RNG
substream from ``(seed, batch_id, attempt)``, roll the fault plan's
dice (chaos testing), then solve each query with the core capacity
functions. All statefulness — retries, breakers, caching, deadlines —
stays in the parent; a worker that dies mid-batch loses nothing that
cannot be recomputed bit-identically from the payload.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.capacity import erasure_upper_bound
from ..core.estimation import CapacityEstimator
from ..core.events import ChannelParameters
from ..core.theorems import capacity_bracket
from ..faults.service_faults import ServiceFaultPlan, apply_worker_faults
from ..simulation.rng import RngFactory
from .query import CapacityQuery

__all__ = ["solve_query", "solve_query_batch"]


def solve_query(query: CapacityQuery) -> Dict[str, float]:
    """Solve one validated query at full fidelity.

    ``estimate`` runs the §4.3 estimator (corrected capacity plus the
    Theorem-5 feedback lower bound), ``bounds`` the Theorem 4/5
    bracket, ``erasure`` the Theorem-1 bound alone. Raises
    ``ValueError`` for an unknown kind — which normalization makes
    unreachable through the service front door.
    """
    n = query.bits_per_symbol
    if query.kind == "estimate":
        params = ChannelParameters(
            deletion=query.deletion,
            insertion=query.insertion,
            transmission=max(0.0, 1.0 - query.deletion - query.insertion),
        )
        report = CapacityEstimator(n).estimate(params)
        return {
            "corrected_capacity": report.corrected_capacity,
            "feedback_lower": report.feedback_lower,
        }
    if query.kind == "bounds":
        lower, upper = capacity_bracket(n, query.deletion, query.insertion)
        return {"lower": lower, "upper": upper}
    if query.kind == "erasure":
        return {"upper": erasure_upper_bound(n, query.deletion)}
    raise ValueError(f"unknown query kind {query.kind!r}")


def solve_query_batch(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Solve a batch of queries in a worker process.

    Parameters
    ----------
    payload:
        ``{"queries": [CapacityQuery, ...], "seed": int,
        "batch_id": str, "attempt": int, "faults": plan-or-None}``.
        The fault plan's dice are rolled against the substream
        ``service/batch/<batch_id>/attempt/<attempt>`` *before* any
        solving — so a crashy plan kills the worker with the whole
        batch unsolved (the supervision/retry path under test), and a
        retry (new ``attempt``) rerolls on a fresh substream instead of
        deterministically re-dying forever.

    Returns
    -------
    One entry per query, in order: ``{"query_id", "value"}`` on
    success or ``{"query_id", "error"}`` when that query's solve
    raised. Per-query errors are deterministic (same query → same
    error), so the parent treats them as non-retryable.
    """
    queries: List[CapacityQuery] = list(payload["queries"])
    plan: Optional[ServiceFaultPlan] = payload.get("faults")
    if plan is not None and plan.injects_faults:
        rng = RngFactory(int(payload.get("seed", 0))).fresh(
            "service/batch/{0}/attempt/{1}".format(
                payload.get("batch_id", "b0"), payload.get("attempt", 0)
            )
        )
        apply_worker_faults(plan, rng)
    results: List[Dict[str, Any]] = []
    for query in queries:
        try:
            results.append(
                {"query_id": query.query_id, "value": solve_query(query)}
            )
        except Exception as exc:  # noqa: BLE001 — per-query isolation
            results.append({"query_id": query.query_id, "error": repr(exc)})
    return results
