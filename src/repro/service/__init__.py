"""Capacity-as-a-service: a resilient query front-end over the solvers.

The reproduction's capacity results — the §4.3 estimate, the
Theorem 4/5 feedback bracket, the Theorem-1 erasure bound — become a
*service*: :class:`CapacityService` accepts typed queries at volume,
dedups them through :mod:`repro.store` canonical keys, batches them
onto a supervised worker pool, and survives the failure modes a real
deployment meets: worker crashes (supervised restart + bounded retries
with substream-jittered backoff), hung solvers (hang detection +
termination), sick worker tiers (a closed/open/half-open circuit
breaker), malformed input (rejected at normalization), and overload
(admission control with a quality-degrading shed ladder: full solve →
cached answer → coarse erasure bound → reject).

Every submitted query terminates in exactly one :class:`QueryStatus` —
``ok / cached / degraded / timeout / shed / failed`` — and
:func:`run_load_test` proves it at ≥10k-query scale under injected
chaos. See ``docs/service.md`` for architecture and tuning.
"""

from .breaker import BreakerOpenError, BreakerState, CircuitBreaker
from .loadtest import LoadTestReport, generate_trace, run_load_test
from .policy import RetryPolicy
from .query import (
    QUERY_FN_ID,
    QUERY_KINDS,
    SAMPLER_NAMES,
    CapacityQuery,
    MalformedQueryError,
    QueryResult,
    QueryStatus,
    normalize_query,
    query_key,
)
from .service import CapacityService, ServiceStats, serve_queries
from .shedding import (
    SHED_LADDER_SOLVER,
    AdmissionController,
    LadderOutcome,
    ShedLevel,
    cached_lookup,
    coarse_bound_value,
    resolve_degraded,
    store_answer,
)
from .workers import solve_query, solve_query_batch

__all__ = [
    "QUERY_KINDS",
    "SAMPLER_NAMES",
    "QUERY_FN_ID",
    "QueryStatus",
    "MalformedQueryError",
    "CapacityQuery",
    "QueryResult",
    "normalize_query",
    "query_key",
    "RetryPolicy",
    "BreakerState",
    "BreakerOpenError",
    "CircuitBreaker",
    "ShedLevel",
    "AdmissionController",
    "LadderOutcome",
    "SHED_LADDER_SOLVER",
    "cached_lookup",
    "store_answer",
    "coarse_bound_value",
    "resolve_degraded",
    "solve_query",
    "solve_query_batch",
    "CapacityService",
    "ServiceStats",
    "serve_queries",
    "LoadTestReport",
    "generate_trace",
    "run_load_test",
]
