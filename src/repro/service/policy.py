"""Bounded retries with exponential backoff and substream jitter.

Mirrors the protocol-hardening pattern from the sync layer: transient
infrastructure failures (a crashed or hung worker, an injected
:class:`repro.faults.TransientWorkerError`) are retried a bounded
number of times with exponentially growing delays. The jitter that
decorrelates retry storms is *not* wall-clock entropy — it is drawn
from the batch's own named RNG substream
(``service/backoff/<batch>/<attempt>``), so a replayed trace backs off
through exactly the same delays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..infotheory import is_zero
from ..simulation.rng import RngFactory

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry schedule for transient worker-tier failures.

    Parameters
    ----------
    max_retries:
        Extra attempts after the first (0 disables retrying).
    base_delay_seconds:
        Backoff before the first retry.
    multiplier:
        Exponential growth factor between retries.
    max_delay_seconds:
        Cap on any single delay (pre-jitter).
    jitter:
        Fraction of the delay randomized away: the actual delay is
        ``d * (1 - jitter * u)`` with ``u ~ U[0, 1)`` from the caller's
        substream. 0 disables jitter.
    """

    max_retries: int = 2
    base_delay_seconds: float = 0.05
    multiplier: float = 2.0
    max_delay_seconds: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_seconds < 0:
            raise ValueError("base_delay_seconds must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_seconds < self.base_delay_seconds:
            raise ValueError("max_delay_seconds must be >= base_delay_seconds")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @property
    def max_attempts(self) -> int:
        """Total attempts: the first plus every allowed retry."""
        return self.max_retries + 1

    def delay_seconds(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry *attempt* (1-based), jittered by *rng*.

        Deterministic given ``(policy, attempt, substream)``: the same
        replayed failure backs off identically.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based (the first retry is 1)")
        raw = self.base_delay_seconds * self.multiplier ** (attempt - 1)
        capped = min(raw, self.max_delay_seconds)
        if is_zero(self.jitter) or is_zero(capped):
            return capped
        return capped * (1.0 - self.jitter * float(rng.random()))

    def backoff_rng(
        self, root_seed: int, batch_id: str, attempt: int
    ) -> np.random.Generator:
        """The named substream that jitters *batch_id*'s retry *attempt*."""
        return RngFactory(root_seed).fresh(
            f"service/backoff/{batch_id}/{attempt}"
        )
