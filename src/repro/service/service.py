"""The resilient capacity-query service front-end.

:class:`CapacityService` accepts typed capacity queries and answers
every one of them — that is the contract. A query terminates in exactly
one :class:`~repro.service.query.QueryStatus`; under worker crashes,
hung solvers, malformed input, or overload the *quality* of answers
degrades (cached → coarse bound) long before availability does.

The moving parts, front to back:

1. **Normalization** (:func:`~repro.service.query.normalize_query`) —
   malformed input terminates as ``failed`` before touching any shared
   resource.
2. **Dedup** — identical in-flight queries (same canonical key)
   coalesce onto one shared future; the result store answers repeats
   across runs.
3. **Admission control** (:class:`~repro.service.shedding.
   AdmissionController`) — queue depth picks a shed level; overloaded
   queries are answered from the degraded ladder or shed outright.
4. **Batching** — admitted queries are drained into batches (any mix of
   kinds is compatible; the worker solves per-query) to amortize
   process-pool IPC.
5. **Dispatch** — batches run on a :class:`~repro.simulation.pool.
   SupervisedPool` via a thread bridge, guarded by a
   :class:`~repro.service.breaker.CircuitBreaker` and retried under the
   :class:`~repro.service.policy.RetryPolicy` with substream-jittered
   backoff. Crashed/hung workers are restarted by the pool; retries
   reroll injected faults on fresh substreams.
6. **Fallback** — when retries or the breaker give up, the batch's
   queries are answered by the shed ladder (``degraded``), never
   dropped.

Blocking solver work never runs inside a coroutine (enforced by lint
rule ``SVC001``): coroutines call the synchronous ladder in
:mod:`repro.service.shedding` for O(1) fallbacks and push everything
heavier through the worker tier.
"""

from __future__ import annotations

import asyncio
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Union,
)

import numpy as np

from ..faults.service_faults import ServiceFaultPlan, TransientWorkerError
from ..numerics import record_stage_seconds
from ..simulation.pool import (
    PoolTaskError,
    SupervisedPool,
    WorkerCrashedError,
    WorkerHungError,
)
from ..store.memo import store_counters
from .breaker import CircuitBreaker
from .policy import RetryPolicy
from .query import (
    QUERY_FN_ID,
    CapacityQuery,
    MalformedQueryError,
    QueryResult,
    QueryStatus,
    normalize_query,
    query_key,
)
from .shedding import (
    AdmissionController,
    ShedLevel,
    cached_lookup,
    resolve_degraded,
    store_answer,
)
from .workers import solve_query_batch

__all__ = ["ServiceStats", "CapacityService", "serve_queries"]

RawQuery = Union[CapacityQuery, Mapping[str, Any]]


@dataclass
class _Solved:
    """What a shared in-flight future resolves to."""

    status: QueryStatus
    value: Optional[Dict[str, float]]
    source: str
    attempts: int
    error: Optional[str] = None


@dataclass
class _Pending:
    """One admitted query waiting in the dispatch queue."""

    query: CapacityQuery
    key: str
    future: "asyncio.Future[_Solved]"


@dataclass
class ServiceStats:
    """Mutable service observability: the ``service stats`` payload.

    Latencies are submit-to-terminal per query; percentiles come out
    of :meth:`to_dict`. Everything here is observability — it never
    feeds back into any answer.
    """

    status_counts: Dict[str, int] = field(default_factory=dict)
    shed_levels: Dict[str, int] = field(default_factory=dict)
    latencies_seconds: List[float] = field(default_factory=list)
    queue_depth_peak: int = 0
    submitted: int = 0
    batches: int = 0
    fallback_batches: int = 0
    retries: int = 0

    def record_result(self, result: QueryResult) -> None:
        """Fold one terminal result into the counters."""
        key = result.status.value
        self.status_counts[key] = self.status_counts.get(key, 0) + 1
        self.latencies_seconds.append(result.latency_seconds)

    def record_shed_level(self, level: ShedLevel) -> None:
        """Count one admission decision above ``FULL``."""
        key = level.name.lower()
        self.shed_levels[key] = self.shed_levels.get(key, 0) + 1

    def observe_queue_depth(self, depth: int) -> None:
        """Track the high-water queue depth."""
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def latency_percentile(self, q: float) -> float:
        """The *q*-th latency percentile (0 with no samples yet)."""
        if not self.latencies_seconds:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_seconds), q))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON stats payload."""
        return {
            "submitted": self.submitted,
            "status_counts": dict(self.status_counts),
            "shed_levels": dict(self.shed_levels),
            "queue_depth_peak": self.queue_depth_peak,
            "batches": self.batches,
            "fallback_batches": self.fallback_batches,
            "retries": self.retries,
            "latency_seconds": {
                "count": len(self.latencies_seconds),
                "p50": self.latency_percentile(50.0),
                "p99": self.latency_percentile(99.0),
                "max": (
                    max(self.latencies_seconds)
                    if self.latencies_seconds
                    else 0.0
                ),
            },
        }


class CapacityService:
    """Asyncio capacity-query service over a supervised worker pool.

    Use as an async context manager (or call :meth:`start` /
    :meth:`stop`); submit with :meth:`submit` or :meth:`serve`.

    Parameters
    ----------
    root_seed:
        Seeds every service substream (backoff jitter, worker fault
        dice), making a replayed trace deterministic.
    workers:
        Worker-process count of the supervised pool (and the size of
        the thread bridge that feeds it).
    batch_size / batch_window_seconds:
        Dispatch drains up to ``batch_size`` queued queries per batch,
        waiting at most the window for stragglers.
    admission:
        The queue-depth → shed-level policy; its ``queue_limit`` also
        bounds the dispatch queue.
    retry_policy:
        Backoff schedule for transient worker-tier failures.
    breaker:
        Circuit breaker gating dispatch; defaults to a
        consecutive-failure breaker with a short cooldown.
    default_deadline_seconds:
        Deadline applied to queries that don't carry their own.
    fault_plan:
        Optional :class:`~repro.faults.ServiceFaultPlan` shipped to
        workers — the chaos-testing hook.
    worker_hang_seconds:
        Per-batch hang threshold: a batch exceeding it has its worker
        terminated and counts as a (retryable) failure.
    clock:
        Monotonic time source for latencies and deadlines; injectable
        for tests. Observability and flow control only — answers are
        functions of the query alone.
    """

    def __init__(
        self,
        *,
        root_seed: int = 0,
        workers: int = 2,
        batch_size: int = 8,
        batch_window_seconds: float = 0.002,
        admission: Optional[AdmissionController] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        default_deadline_seconds: Optional[float] = None,
        fault_plan: Optional[ServiceFaultPlan] = None,
        worker_hang_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_window_seconds < 0:
            raise ValueError("batch_window_seconds must be non-negative")
        self.root_seed = root_seed
        self.workers = workers
        self.batch_size = batch_size
        self.batch_window_seconds = batch_window_seconds
        self.admission = admission or AdmissionController()
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5, cooldown_seconds=0.25
        )
        self.default_deadline_seconds = default_deadline_seconds
        self.fault_plan = fault_plan
        self.worker_hang_seconds = worker_hang_seconds
        self.stats = ServiceStats()
        self._clock = clock
        self._pool: Optional[SupervisedPool] = None
        self._threads: Optional[ThreadPoolExecutor] = None
        self._queue: Optional["asyncio.Queue[_Pending]"] = None
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._batch_tasks: Set["asyncio.Task[None]"] = set()
        self._inflight: Dict[str, "asyncio.Future[_Solved]"] = {}
        self._batch_counter = 0
        self._query_counter = 0
        self._final_pool_restarts = 0

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Bring up the pool, the thread bridge, and the dispatcher."""
        if self._dispatcher is not None:
            raise RuntimeError("service already started")
        self._pool = SupervisedPool(
            self.workers,
            max_restarts=None,  # the breaker, not a cap, governs giving up
            hang_seconds=None,
        )
        self._threads = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="svc-dispatch"
        )
        self._queue = asyncio.Queue(maxsize=self.admission.queue_limit)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Drain in-flight batches, then tear everything down."""
        if self._dispatcher is None:
            return
        queue = self._queue
        assert queue is not None
        while not queue.empty() or self._batch_tasks:
            if self._batch_tasks:
                await asyncio.wait(set(self._batch_tasks))
            else:
                # Queued queries the dispatcher hasn't batched yet.
                await asyncio.sleep(self.batch_window_seconds or 0.001)
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._dispatcher = None
        for future in self._inflight.values():
            if not future.done():
                future.set_result(
                    _Solved(
                        status=QueryStatus.FAILED,
                        value=None,
                        source="none",
                        attempts=0,
                        error="service stopped",
                    )
                )
        self._inflight.clear()
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        if self._pool is not None:
            self._final_pool_restarts = self._pool.restarts
            self._pool.shutdown()

    async def __aenter__(self) -> "CapacityService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    @property
    def pool_restarts(self) -> int:
        """Worker-pool rebuilds so far (crashes and hangs)."""
        if self._pool is not None:
            return self._pool.restarts
        return self._final_pool_restarts

    # ------------------------------------------------------------------
    # submission

    async def submit(
        self, raw: RawQuery, *, query_id: Optional[str] = None
    ) -> QueryResult:
        """Submit one query; always returns a terminal
        :class:`QueryResult` — this method never raises for bad input.
        """
        if self._dispatcher is None or self._queue is None:
            raise RuntimeError("service not started (use 'async with')")
        t0 = self._clock()
        self.stats.submitted += 1
        self._query_counter += 1
        fallback_id = query_id or f"q{self._query_counter}"
        try:
            query = normalize_query(
                raw,
                default_deadline=self.default_deadline_seconds,
                query_id=fallback_id,
            )
        except MalformedQueryError as exc:
            return self._finish(
                QueryResult(
                    query_id=fallback_id,
                    key=None,
                    status=QueryStatus.FAILED,
                    source="none",
                    latency_seconds=self._clock() - t0,
                    error=f"malformed query: {exc}",
                )
            )
        key = query_key(query)

        # Coalesce onto identical in-flight work before anything else:
        # a duplicate must never consume queue capacity.
        existing = self._inflight.get(key)
        if existing is not None:
            return await self._await_solved(
                query, key, existing, t0, coalesced=True
            )

        hit = cached_lookup(query)
        if hit is not None:
            return self._finish(
                QueryResult(
                    query_id=query.query_id,
                    key=key,
                    status=QueryStatus.CACHED,
                    value=hit,
                    source="store",
                    latency_seconds=self._clock() - t0,
                )
            )

        depth = self._queue.qsize()
        self.stats.observe_queue_depth(depth)
        level = self.admission.level(depth)
        if level is not ShedLevel.FULL:
            self.stats.record_shed_level(level)
        if level is ShedLevel.REJECT:
            return self._finish(
                QueryResult(
                    query_id=query.query_id,
                    key=key,
                    status=QueryStatus.SHED,
                    source="none",
                    latency_seconds=self._clock() - t0,
                    error=f"admission control: queue depth {depth} at limit",
                )
            )
        if level in (ShedLevel.CACHE_ONLY, ShedLevel.COARSE):
            return self._finish(
                self._degraded_result(
                    query,
                    key,
                    t0,
                    try_cache=level is ShedLevel.CACHE_ONLY,
                    attempts=0,
                    error=f"admission control: shed level {level.name.lower()}",
                )
            )

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[_Solved]" = loop.create_future()
        self._inflight[key] = future
        try:
            self._queue.put_nowait(_Pending(query=query, key=key, future=future))
        except asyncio.QueueFull:
            # Raced past the admission check; degrade instead of block.
            self._inflight.pop(key, None)
            self.stats.record_shed_level(ShedLevel.COARSE)
            return self._finish(
                self._degraded_result(
                    query,
                    key,
                    t0,
                    try_cache=True,
                    attempts=0,
                    error="dispatch queue full",
                )
            )
        return await self._await_solved(query, key, future, t0, coalesced=False)

    async def serve(
        self,
        raw_queries: Iterable[RawQuery],
        *,
        concurrency: int = 64,
    ) -> List[QueryResult]:
        """Submit many queries with bounded client concurrency;
        results come back in input order, one per query."""
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        semaphore = asyncio.Semaphore(concurrency)

        async def one(index: int, raw: RawQuery) -> QueryResult:
            async with semaphore:
                return await self.submit(raw, query_id=f"q{index}")

        return list(
            await asyncio.gather(
                *(one(i, raw) for i, raw in enumerate(raw_queries))
            )
        )

    # ------------------------------------------------------------------
    # internals

    def _finish(self, result: QueryResult) -> QueryResult:
        self.stats.record_result(result)
        return result

    def _degraded_result(
        self,
        query: CapacityQuery,
        key: str,
        t0: float,
        *,
        try_cache: bool,
        attempts: int,
        error: Optional[str],
    ) -> QueryResult:
        outcome = resolve_degraded(query, try_cache=try_cache)
        status = (
            QueryStatus.CACHED
            if outcome.source == "store"
            else QueryStatus.DEGRADED
        )
        return QueryResult(
            query_id=query.query_id,
            key=key,
            status=status,
            value=outcome.value,
            source=outcome.source,
            attempts=attempts,
            latency_seconds=self._clock() - t0,
            error=error if status is QueryStatus.DEGRADED else None,
        )

    async def _await_solved(
        self,
        query: CapacityQuery,
        key: str,
        future: "asyncio.Future[_Solved]",
        t0: float,
        *,
        coalesced: bool,
    ) -> QueryResult:
        deadline = query.deadline_seconds
        try:
            if deadline is None:
                solved = await asyncio.shield(future)
            else:
                remaining = deadline - (self._clock() - t0)
                if remaining <= 0:
                    raise asyncio.TimeoutError
                # shield: one waiter's deadline must not cancel the
                # shared computation other waiters still want.
                solved = await asyncio.wait_for(
                    asyncio.shield(future), timeout=remaining
                )
        except asyncio.TimeoutError:
            return self._finish(
                QueryResult(
                    query_id=query.query_id,
                    key=key,
                    status=QueryStatus.TIMEOUT,
                    source="none",
                    latency_seconds=self._clock() - t0,
                    error=f"deadline {deadline}s expired",
                )
            )
        status = solved.status
        source = solved.source
        if coalesced and status is QueryStatus.OK:
            status = QueryStatus.CACHED
            source = "inflight"
        return self._finish(
            QueryResult(
                query_id=query.query_id,
                key=key,
                status=status,
                value=solved.value,
                source=source,
                attempts=solved.attempts,
                latency_seconds=self._clock() - t0,
                error=solved.error,
            )
        )

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self.batch_size:
                try:
                    batch.append(
                        await asyncio.wait_for(
                            self._queue.get(),
                            timeout=self.batch_window_seconds,
                        )
                    )
                except asyncio.TimeoutError:
                    break
            self._batch_counter += 1
            batch_id = f"b{self._batch_counter}"
            task = asyncio.create_task(self._dispatch_batch(batch_id, batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _dispatch_batch(
        self, batch_id: str, batch: Sequence[_Pending]
    ) -> None:
        assert self._pool is not None and self._threads is not None
        loop = asyncio.get_running_loop()
        self.stats.batches += 1
        queries = [p.query for p in batch]
        attempts = 0
        last_error: Optional[str] = None
        for attempt in range(self.retry_policy.max_attempts):
            if not self.breaker.allow():
                last_error = "circuit breaker open"
                break
            attempts = attempt + 1
            payload = {
                "queries": queries,
                "seed": self.root_seed,
                "batch_id": batch_id,
                "attempt": attempt,
                "faults": self.fault_plan,
            }
            t0 = self._clock()
            try:
                results = await loop.run_in_executor(
                    self._threads,
                    functools.partial(
                        self._pool.run,
                        solve_query_batch,
                        payload,
                        timeout=self.worker_hang_seconds,
                    ),
                )
            except (
                WorkerCrashedError,
                WorkerHungError,
                TransientWorkerError,
            ) as exc:
                self.breaker.record_failure()
                last_error = repr(exc)
                if attempt + 1 < self.retry_policy.max_attempts:
                    self.stats.retries += 1
                    rng = self.retry_policy.backoff_rng(
                        self.root_seed, batch_id, attempt + 1
                    )
                    await asyncio.sleep(
                        self.retry_policy.delay_seconds(attempt + 1, rng)
                    )
                continue
            except (PoolTaskError, RuntimeError) as exc:
                # Pool exhausted / torn down: not retryable here.
                self.breaker.record_failure()
                last_error = repr(exc)
                break
            latency = self._clock() - t0
            self.breaker.record_success(latency)
            record_stage_seconds("service:worker_batch", latency)
            self._resolve_batch(batch, results, attempts)
            return
        # Retries/breaker gave up: answer every query from the degraded
        # ladder. Queries are never lost.
        self.stats.fallback_batches += 1
        for pending in batch:
            outcome = resolve_degraded(pending.query, try_cache=True)
            self._resolve_pending(
                pending,
                _Solved(
                    status=QueryStatus.DEGRADED,
                    value=outcome.value,
                    source=outcome.source,
                    attempts=attempts,
                    error=last_error,
                ),
            )

    def _resolve_batch(
        self,
        batch: Sequence[_Pending],
        results: Sequence[Mapping[str, Any]],
        attempts: int,
    ) -> None:
        by_id: Dict[str, Mapping[str, Any]] = {
            str(r["query_id"]): r for r in results
        }
        for pending in batch:
            entry = by_id.get(pending.query.query_id)
            if entry is None:
                solved = _Solved(
                    status=QueryStatus.FAILED,
                    value=None,
                    source="solver",
                    attempts=attempts,
                    error="worker returned no result for query",
                )
            elif "error" in entry:
                solved = _Solved(
                    status=QueryStatus.FAILED,
                    value=None,
                    source="solver",
                    attempts=attempts,
                    error=str(entry["error"]),
                )
            else:
                value = {
                    str(k): float(v) for k, v in entry["value"].items()
                }
                store_answer(pending.query, value)
                solved = _Solved(
                    status=QueryStatus.OK,
                    value=value,
                    source="solver",
                    attempts=attempts,
                )
            self._resolve_pending(pending, solved)

    def _resolve_pending(self, pending: _Pending, solved: _Solved) -> None:
        self._inflight.pop(pending.key, None)
        if not pending.future.done():
            pending.future.set_result(solved)

    # ------------------------------------------------------------------
    # observability

    def stats_snapshot(self) -> Dict[str, Any]:
        """The full ``service stats`` payload: query counters, latency
        percentiles, breaker state/transitions, shed counts, pool
        restarts, and the store's hit/miss counters for query keys."""
        payload = self.stats.to_dict()
        payload["breaker"] = self.breaker.snapshot()
        payload["pool_restarts"] = self.pool_restarts
        payload["store_events"] = {
            k: v
            for k, v in store_counters().items()
            if k.startswith(QUERY_FN_ID)
        }
        return payload


def serve_queries(
    raw_queries: Sequence[RawQuery],
    *,
    concurrency: int = 64,
    **service_kwargs: Any,
) -> "tuple[List[QueryResult], Dict[str, Any]]":
    """Synchronous convenience: serve *raw_queries* on a fresh service.

    Builds a :class:`CapacityService` with *service_kwargs*, serves the
    whole sequence under one event loop, and returns
    ``(results, stats_snapshot)``.
    """

    async def main() -> "tuple[List[QueryResult], Dict[str, Any]]":
        service = CapacityService(**service_kwargs)
        async with service:
            results = await service.serve(
                raw_queries, concurrency=concurrency
            )
        return results, service.stats_snapshot()

    return asyncio.run(main())
