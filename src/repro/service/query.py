"""Typed capacity queries: normalization, validation, canonical keys.

A query asks one of four things about a non-synchronous covert channel
``(P_d, P_i, N)``:

* ``"estimate"`` — the §4.3 two-step estimate via
  :class:`repro.core.estimation.CapacityEstimator` (corrected capacity
  ``N(1-P_d)`` plus the Theorem-5 feedback lower bound);
* ``"bounds"`` — the Theorem 4/5 ``(lower, upper)`` feedback bracket
  from :func:`repro.core.theorems.capacity_bracket`;
* ``"erasure"`` — just the Theorem-1 erasure bound ``N(1-P_d)``;
* ``"block_bound"`` — the no-feedback finite-block bracket from
  :func:`repro.bounds.indel_block_bound_sweep` (binary alphabet only:
  ``bits_per_symbol`` must be 1, ``P_i`` strictly below 1). The worker
  tier solves every ``block_bound`` query in a batch with a single
  batched Blahut-Arimoto kernel invocation;
* ``"sample_capacity"`` — the kNN sample-based estimate from
  :func:`repro.estimation.estimate_sample_capacity` on one of the
  named reference samplers (``"bsc"``, ``"mary"``, ``"scheduler"``).
  The query's ``deletion`` field carries the sampler's noise knob
  (crossover / symmetric error / preemption probability); insertion
  must be 0. Seeds and kNN order are fixed server-side so the answer
  is a pure function of the semantic fields — the property the
  store-backed cache requires.

:func:`normalize_query` is the admission gate: raw client input (a
mapping or an existing :class:`CapacityQuery`) either coerces into a
validated query or raises :class:`MalformedQueryError` — malformed
input must be rejected *before* it can reach a worker. Normalized
queries are canonical, so :func:`query_key` (a
:func:`repro.store.canonical_key` content address over the semantic
fields only — never the query id or deadline) makes duplicate requests
collide: the service dedups in-flight work and shares store entries on
that key.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

from ..infotheory.probability import is_zero
from ..store import canonical_key

__all__ = [
    "QUERY_KINDS",
    "SAMPLER_NAMES",
    "QUERY_FN_ID",
    "QueryStatus",
    "MalformedQueryError",
    "CapacityQuery",
    "QueryResult",
    "normalize_query",
    "query_key",
]

#: The query kinds the worker tier knows how to solve.
QUERY_KINDS = (
    "estimate",
    "bounds",
    "erasure",
    "block_bound",
    "sample_capacity",
)

#: Reference samplers a ``sample_capacity`` query may name.
SAMPLER_NAMES = ("bsc", "mary", "scheduler")

#: Admissible sample-count range for ``sample_capacity`` queries. The
#: lower edge keeps every symbol class above the kNN order for the
#: largest admissible alphabet; the upper edge bounds worker time.
MIN_SAMPLES = 512
MAX_SAMPLES = 65536

#: Store function-id under which solved queries are cached (and the
#: canonical-key namespace for dedup).
QUERY_FN_ID = "service.capacity_query"


class QueryStatus(str, enum.Enum):
    """Terminal disposition of one query — every query gets exactly one.

    Extends the :class:`repro.numerics.SolverStatus` pattern (a str
    enum whose values read naturally in reports) to the service layer:

    * ``OK`` — solved by the worker tier at full fidelity.
    * ``CACHED`` — answered from the result store or by coalescing
      onto an identical in-flight query; full fidelity, no solve paid.
    * ``DEGRADED`` — answered by a lower rung of the shed ladder
      (cache-only or the coarse erasure bound ``N(1-P_d)``) because of
      overload, breaker state, or exhausted retries.
    * ``TIMEOUT`` — the query's deadline expired before an answer.
    * ``SHED`` — rejected by admission control (queue saturated).
    * ``FAILED`` — malformed input, or a non-retryable solve error.
    """

    OK = "ok"
    CACHED = "cached"
    DEGRADED = "degraded"
    TIMEOUT = "timeout"
    SHED = "shed"
    FAILED = "failed"


class MalformedQueryError(ValueError):
    """Raw query input that cannot be coerced into a valid query."""


@dataclass(frozen=True)
class CapacityQuery:
    """One validated capacity query.

    ``query_id`` names this *request* (it appears in results and
    logs); the semantic identity used for dedup and caching is
    :func:`query_key`, which deliberately ignores ``query_id`` and
    ``deadline_seconds``.
    """

    query_id: str
    kind: str
    deletion: float
    insertion: float
    bits_per_symbol: int = 1
    deadline_seconds: Optional[float] = None
    sampler: Optional[str] = None
    n_samples: int = 0

    def semantic_params(self) -> Dict[str, Any]:
        """The fields that define *what* is being computed.

        The sampler fields join the key only for ``sample_capacity``
        queries, so every legacy kind keeps the exact cache keys it
        had before the kind existed (warm stores stay warm).
        """
        params: Dict[str, Any] = {
            "kind": self.kind,
            "deletion": self.deletion,
            "insertion": self.insertion,
            "bits_per_symbol": self.bits_per_symbol,
        }
        if self.kind == "sample_capacity":
            params["sampler"] = self.sampler
            params["n_samples"] = self.n_samples
        return params


@dataclass(frozen=True)
class QueryResult:
    """Terminal record for one submitted query.

    Attributes
    ----------
    query_id:
        Echo of the request's id (or a synthesized one for raw input
        so malformed queries are still accounted for).
    key:
        Canonical dedup/store key, or ``None`` for malformed input.
    status:
        The :class:`QueryStatus` disposition.
    value:
        Metric mapping for answered queries (``None`` for
        timeout/shed/failed). Keys depend on the query kind:
        ``estimate`` → ``corrected_capacity`` / ``feedback_lower``;
        ``bounds`` and ``block_bound`` → ``lower`` / ``upper``;
        ``erasure`` and the coarse degraded rung → ``upper``;
        ``sample_capacity`` → ``capacity`` / ``mutual_information`` /
        ``mean_time``.
    source:
        Where the answer came from: ``"solver"``, ``"store"``,
        ``"inflight"``, ``"coarse_bound"``, or ``"none"``.
    attempts:
        Worker-tier attempts spent on this query's batch (0 when no
        worker was involved).
    latency_seconds:
        Submit-to-terminal wall-clock, as observed by the service
        clock.
    error:
        Diagnostic text for ``FAILED`` / ``TIMEOUT`` / ``SHED``.
    """

    query_id: str
    key: Optional[str]
    status: QueryStatus
    value: Optional[Dict[str, float]] = None
    source: str = "none"
    attempts: int = 0
    latency_seconds: float = 0.0
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (CLI output, load-test reports)."""
        return {
            "query_id": self.query_id,
            "key": self.key,
            "status": self.status.value,
            "value": dict(self.value) if self.value is not None else None,
            "source": self.source,
            "attempts": self.attempts,
            "latency_seconds": self.latency_seconds,
            "error": self.error,
        }


def _coerce_float(raw: Mapping[str, Any], name: str) -> float:
    if name not in raw:
        raise MalformedQueryError(f"missing required field {name!r}")
    value = raw[name]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise MalformedQueryError(
            f"field {name!r} must be a number, got {value!r}"
        )
    return float(value)


def normalize_query(
    raw: Union[CapacityQuery, Mapping[str, Any]],
    *,
    default_deadline: Optional[float] = None,
    query_id: Optional[str] = None,
) -> CapacityQuery:
    """Coerce *raw* into a validated :class:`CapacityQuery`.

    Accepts an existing query (re-validated — a hand-constructed query
    gets no trust) or a mapping with fields ``kind``, ``deletion``,
    ``insertion`` and optional ``bits_per_symbol`` / ``deadline_seconds``
    / ``query_id``. Raises :class:`MalformedQueryError` with a reason on
    any invalid input; never raises anything else for mapping input.
    """
    if isinstance(raw, CapacityQuery):
        mapping: Mapping[str, Any] = {
            "query_id": raw.query_id,
            "kind": raw.kind,
            "deletion": raw.deletion,
            "insertion": raw.insertion,
            "bits_per_symbol": raw.bits_per_symbol,
            "deadline_seconds": raw.deadline_seconds,
            "sampler": raw.sampler,
            "n_samples": raw.n_samples,
        }
    elif isinstance(raw, Mapping):
        mapping = raw
    else:
        raise MalformedQueryError(
            f"query must be a mapping or CapacityQuery, got {type(raw).__name__}"
        )

    kind = mapping.get("kind")
    if kind not in QUERY_KINDS:
        raise MalformedQueryError(
            f"unknown query kind {kind!r}; expected one of {QUERY_KINDS}"
        )
    deletion = _coerce_float(mapping, "deletion")
    insertion = _coerce_float(mapping, "insertion")
    for name, value in (("deletion", deletion), ("insertion", insertion)):
        if not 0.0 <= value <= 1.0:
            raise MalformedQueryError(
                f"{name} probability must be in [0, 1], got {value}"
            )
    if deletion + insertion > 1.0 + 1e-12:
        raise MalformedQueryError(
            "deletion + insertion must not exceed 1 "
            f"(got {deletion} + {insertion})"
        )
    bits_raw = mapping.get("bits_per_symbol", 1)
    if isinstance(bits_raw, bool) or not isinstance(bits_raw, (int, float)):
        raise MalformedQueryError(
            f"bits_per_symbol must be a positive integer, got {bits_raw!r}"
        )
    if float(bits_raw) != int(bits_raw) or int(bits_raw) < 1:
        raise MalformedQueryError(
            f"bits_per_symbol must be a positive integer, got {bits_raw!r}"
        )
    if kind == "block_bound":
        # The finite-block solver is binary-alphabet and needs a
        # non-degenerate transmission path; reject here so a worker
        # never sees an unsolvable block_bound query.
        if int(bits_raw) != 1:
            raise MalformedQueryError(
                "block_bound queries require bits_per_symbol == 1, "
                f"got {bits_raw!r}"
            )
        if insertion >= 1.0:
            raise MalformedQueryError(
                f"block_bound queries require insertion < 1, got {insertion}"
            )
    sampler: Optional[str] = None
    n_samples = 0
    if kind == "sample_capacity":
        sampler_raw = mapping.get("sampler")
        if sampler_raw not in SAMPLER_NAMES:
            raise MalformedQueryError(
                f"sample_capacity queries require a sampler from "
                f"{SAMPLER_NAMES}, got {sampler_raw!r}"
            )
        sampler = str(sampler_raw)
        if not is_zero(insertion):
            raise MalformedQueryError(
                "sample_capacity queries require insertion == 0 "
                "(the deletion field carries the sampler's noise knob); "
                f"got {insertion}"
            )
        if deletion >= 1.0:
            raise MalformedQueryError(
                "sample_capacity noise (deletion field) must be < 1, "
                f"got {deletion}"
            )
        if sampler in ("bsc", "scheduler") and int(bits_raw) != 1:
            raise MalformedQueryError(
                f"{sampler} sample_capacity queries require "
                f"bits_per_symbol == 1, got {bits_raw!r}"
            )
        if sampler == "mary" and not 1 <= int(bits_raw) <= 3:
            raise MalformedQueryError(
                "mary sample_capacity queries require bits_per_symbol "
                f"in [1, 3], got {bits_raw!r}"
            )
        samples_raw = mapping.get("n_samples", 2048)
        if isinstance(samples_raw, bool) or not isinstance(
            samples_raw, (int, float)
        ):
            raise MalformedQueryError(
                f"n_samples must be an integer, got {samples_raw!r}"
            )
        if float(samples_raw) != int(samples_raw) or not (
            MIN_SAMPLES <= int(samples_raw) <= MAX_SAMPLES
        ):
            raise MalformedQueryError(
                f"n_samples must be an integer in [{MIN_SAMPLES}, "
                f"{MAX_SAMPLES}], got {samples_raw!r}"
            )
        n_samples = int(samples_raw)
    deadline = mapping.get("deadline_seconds", default_deadline)
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise MalformedQueryError(
                f"deadline_seconds must be a positive number, got {deadline!r}"
            )
        deadline = float(deadline)
        if deadline <= 0:
            raise MalformedQueryError(
                f"deadline_seconds must be positive, got {deadline}"
            )
    qid = mapping.get("query_id", query_id)
    if qid is None:
        qid = query_id if query_id is not None else "q"
    return CapacityQuery(
        query_id=str(qid),
        kind=str(kind),
        deletion=deletion,
        insertion=insertion,
        bits_per_symbol=int(bits_raw),
        deadline_seconds=deadline,
        sampler=sampler,
        n_samples=n_samples,
    )


def query_key(query: CapacityQuery) -> str:
    """Canonical content address of *query*'s semantic fields.

    Two requests asking the same question — whatever their ids or
    deadlines — share this key, which is what makes in-flight
    coalescing and store-backed caching correct.
    """
    return canonical_key(QUERY_FN_ID, query.semantic_params())
