"""Circuit breaker over the worker tier: closed / open / half-open.

When the worker pool is sick — consecutive crashes, or latency whose
exponentially-weighted moving average blows through its threshold —
continuing to dispatch batches makes overload worse and burns the retry
budget of every queued query. The breaker cuts dispatch instead:
**open** fails fast to the shed ladder (queries still get *answers*,
degraded ones), then after a cooldown a **half-open** probe decides
whether the tier has healed.

The clock is injectable (and only used for the cooldown — never for
results), so tests drive breaker transitions without sleeping.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Dict, Optional

__all__ = ["BreakerState", "BreakerOpenError", "CircuitBreaker"]


class BreakerState(str, enum.Enum):
    """The classic three breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class BreakerOpenError(RuntimeError):
    """Dispatch refused because the breaker is open."""


class CircuitBreaker:
    """Failure- and latency-triggered circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive recorded failures that trip the breaker.
    latency_threshold_seconds:
        Optional EWMA latency that trips the breaker even while calls
        "succeed" — a tier that answers in 30 s is down in every way
        that matters to a deadline. ``None`` disables the latency trip.
    ewma_alpha:
        Smoothing factor of the latency EWMA (higher = more reactive).
    cooldown_seconds:
        How long an open breaker waits before allowing the half-open
        probe.
    clock:
        Monotonic time source; injectable so tests control the
        cooldown. Observability/flow-control only — never feeds
        results.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        latency_threshold_seconds: Optional[float] = None,
        ewma_alpha: float = 0.3,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if latency_threshold_seconds is not None and latency_threshold_seconds <= 0:
            raise ValueError("latency_threshold_seconds must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        self.failure_threshold = failure_threshold
        self.latency_threshold_seconds = latency_threshold_seconds
        self.ewma_alpha = ewma_alpha
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_inflight = False
        self.latency_ewma: Optional[float] = None
        self.transitions: Dict[str, int] = {}

    @property
    def state(self) -> BreakerState:
        """Current state (cooldown expiry is applied by :meth:`allow`)."""
        return self._state

    def _transition(self, to: BreakerState) -> None:
        if to is self._state:
            return
        key = f"{self._state.value}->{to.value}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        self._state = to

    def allow(self) -> bool:
        """Whether a dispatch may proceed right now.

        Closed: always. Open: only after the cooldown, which moves the
        breaker to half-open and admits exactly one probe. Half-open:
        only the single probe; concurrent dispatchers are refused until
        the probe reports.
        """
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            opened_at = self._opened_at if self._opened_at is not None else 0.0
            if self._clock() - opened_at < self.cooldown_seconds:
                return False
            self._transition(BreakerState.HALF_OPEN)
            self._probe_inflight = True
            return True
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self, latency_seconds: Optional[float] = None) -> None:
        """Report a successful dispatch (and optionally its latency).

        Closes a half-open breaker, resets the consecutive-failure
        count, and folds the latency into the EWMA — which may
        immediately re-trip the breaker when the tier is "succeeding"
        too slowly to be useful.
        """
        self._consecutive_failures = 0
        self._probe_inflight = False
        if self._state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.CLOSED)
        if latency_seconds is not None:
            if self.latency_ewma is None:
                self.latency_ewma = float(latency_seconds)
            else:
                a = self.ewma_alpha
                self.latency_ewma = (
                    a * float(latency_seconds) + (1.0 - a) * self.latency_ewma
                )
            if (
                self.latency_threshold_seconds is not None
                and self.latency_ewma > self.latency_threshold_seconds
                and self._state is BreakerState.CLOSED
            ):
                self._trip()

    def record_failure(self) -> None:
        """Report a failed dispatch.

        A half-open probe failure reopens immediately; in closed state
        the consecutive-failure counter trips at the threshold.
        """
        self._probe_inflight = False
        if self._state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._transition(BreakerState.OPEN)
        self._opened_at = self._clock()
        self._consecutive_failures = 0

    def snapshot(self) -> Dict[str, object]:
        """Observability payload for ``service stats``."""
        return {
            "state": self._state.value,
            "latency_ewma_seconds": self.latency_ewma,
            "transitions": dict(self.transitions),
        }
