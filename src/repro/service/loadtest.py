"""Synthetic query traces and the fault-injected load-test harness.

The acceptance bar for the service (ISSUE 6 / EXPERIMENTS.md): a
synthetic trace of ≥10k queries — with injected worker crashes, slow
solvers, and malformed queries — completes with **every query accounted
for**: each terminates in exactly one
:class:`~repro.service.query.QueryStatus`, admitted-query deadlines
hold at p99, and the breaker/shed counters surface through
``repro service stats``. :func:`run_load_test` is that experiment in
library form; the CLI (``repro service {run,replay}``) and the
benchmark suite drive it with different knobs.

Traces are deterministic in ``(n_queries, seed)``: parameters are drawn
from the ``service/trace`` substream, and a configurable fraction of
queries is deliberately malformed (bad kinds, out-of-range
probabilities, wrong types, missing fields) to exercise the admission
gate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..faults.service_faults import ServiceFaultPlan, get_service_scenario
from ..simulation.rng import RngFactory
from .breaker import CircuitBreaker
from .policy import RetryPolicy
from .query import QueryStatus
from .service import serve_queries
from .shedding import AdmissionController

__all__ = ["LoadTestReport", "generate_trace", "run_load_test"]

_KINDS = ("estimate", "bounds", "erasure")

#: The malformation zoo: each entry perturbs a well-formed query in a
#: way normalize_query must catch.
_MALFORMATIONS = (
    lambda q: {**q, "kind": "bogus"},
    lambda q: {**q, "deletion": 1.5},
    lambda q: {**q, "insertion": -0.2},
    lambda q: {**q, "deletion": 0.9, "insertion": 0.9},
    lambda q: {**q, "bits_per_symbol": 0},
    lambda q: {**q, "bits_per_symbol": "four"},
    lambda q: {**q, "deletion": "high"},
    lambda q: {k: v for k, v in q.items() if k != "deletion"},
    lambda q: {**q, "deadline_seconds": -1.0},
)


def _draw_query(
    index: int,
    rng: "np.random.Generator",
    deadline_seconds: Optional[float],
) -> Dict[str, Any]:
    """One well-formed trace entry from the trace substream."""
    # A coarse grid: repeats are intentional (dedup/caching load).
    deletion = round(float(rng.choice([0.0, 0.1, 0.2, 0.3, 0.5])), 3)
    insertion = round(float(rng.choice([0.0, 0.05, 0.1, 0.2])), 3)
    if deletion + insertion > 1.0:
        insertion = round(1.0 - deletion, 3)
    query: Dict[str, Any] = {
        "query_id": f"t{index}",
        "kind": str(rng.choice(list(_KINDS))),
        "deletion": deletion,
        "insertion": insertion,
        "bits_per_symbol": int(rng.choice([1, 2, 4])),
    }
    if deadline_seconds is not None:
        query["deadline_seconds"] = deadline_seconds
    return query


def _maybe_malform(
    query: Dict[str, Any],
    rng: "np.random.Generator",
    malformed_rate: float,
    n_malformed: int,
) -> "tuple[Dict[str, Any], int]":
    """Corrupt *query* with probability *malformed_rate*."""
    if malformed_rate > 0 and float(rng.random()) < malformed_rate:
        corrupted = dict(
            _MALFORMATIONS[n_malformed % len(_MALFORMATIONS)](query)
        )
        return corrupted, n_malformed + 1
    return query, n_malformed


def generate_trace(
    n_queries: int,
    *,
    seed: int = 0,
    malformed_rate: float = 0.0,
    deadline_seconds: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Deterministic synthetic query trace.

    Parameters are drawn from the ``service/trace`` substream of
    *seed*; duplicate parameter draws occur naturally (the grid is
    coarse), which is what exercises dedup and the warm store. A
    ``malformed_rate`` fraction of queries is corrupted, cycling
    through the malformation zoo.
    """
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    if not 0.0 <= malformed_rate <= 1.0:
        raise ValueError("malformed_rate must be in [0, 1]")
    rng = RngFactory(seed).fresh("service/trace")
    trace: List[Dict[str, Any]] = []
    malformed = 0
    for i in range(n_queries):
        query = _draw_query(i, rng, deadline_seconds)
        query, malformed = _maybe_malform(query, rng, malformed_rate, malformed)
        trace.append(query)
    return trace


@dataclass
class LoadTestReport:
    """Everything the acceptance criteria ask about one load-test run.

    ``lost`` is the accountability gap — queries submitted minus
    queries that terminated in a status — and must be zero, always.
    """

    n_queries: int
    scenario: str
    status_counts: Dict[str, int] = field(default_factory=dict)
    lost: int = 0
    elapsed_seconds: float = 0.0
    throughput_qps: float = 0.0
    latency_p50_seconds: float = 0.0
    latency_p99_seconds: float = 0.0
    deadline_seconds: Optional[float] = None
    deadline_p99_ok: bool = True
    pool_restarts: int = 0
    stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON report (CLI output and EXPERIMENTS.md evidence)."""
        return {
            "n_queries": self.n_queries,
            "scenario": self.scenario,
            "status_counts": dict(self.status_counts),
            "lost": self.lost,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_qps": self.throughput_qps,
            "latency_p50_seconds": self.latency_p50_seconds,
            "latency_p99_seconds": self.latency_p99_seconds,
            "deadline_seconds": self.deadline_seconds,
            "deadline_p99_ok": self.deadline_p99_ok,
            "pool_restarts": self.pool_restarts,
            "stats": dict(self.stats),
        }


def run_load_test(
    n_queries: int = 10_000,
    *,
    seed: int = 0,
    scenario: str = "none",
    workers: int = 2,
    concurrency: int = 256,
    queue_limit: int = 128,
    batch_size: int = 32,
    deadline_seconds: Optional[float] = 5.0,
    worker_hang_seconds: Optional[float] = 30.0,
    retry_policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
) -> LoadTestReport:
    """Drive a synthetic trace through a fresh service; account for all.

    *scenario* names a :data:`repro.faults.SERVICE_SCENARIOS` plan;
    its ``malformed_rate`` corrupts the trace and the rest of it rides
    to the workers. The report's ``lost`` field is computed from the
    results themselves (statuses outside the taxonomy would also count
    as lost), so "zero lost queries" is checked at the strongest point.
    """
    plan = get_service_scenario(scenario)
    trace = generate_trace(
        n_queries,
        seed=seed,
        malformed_rate=plan.malformed_rate,
        deadline_seconds=deadline_seconds,
    )
    fault_plan: Optional[ServiceFaultPlan] = plan if plan.injects_faults else None
    t0 = time.monotonic()  # repro: noqa[DET001] — throughput observability
    results, stats = serve_queries(
        trace,
        concurrency=concurrency,
        root_seed=seed,
        workers=workers,
        batch_size=batch_size,
        admission=AdmissionController(queue_limit=queue_limit),
        retry_policy=retry_policy or RetryPolicy(base_delay_seconds=0.01),
        breaker=breaker,
        fault_plan=fault_plan,
        worker_hang_seconds=worker_hang_seconds,
    )
    elapsed = time.monotonic() - t0  # repro: noqa[DET001] — observability
    valid_statuses = {s.value for s in QueryStatus}
    status_counts: Dict[str, int] = {}
    accounted = 0
    admitted_latencies: List[float] = []
    for result in results:
        value = result.status.value if result.status in QueryStatus else None
        if value in valid_statuses:
            accounted += 1
            status_counts[value] = status_counts.get(value, 0) + 1
        if result.status in (
            QueryStatus.OK,
            QueryStatus.CACHED,
            QueryStatus.DEGRADED,
        ):
            admitted_latencies.append(result.latency_seconds)
    latency_block = stats.get("latency_seconds", {})
    p99 = 0.0
    p50 = 0.0
    if admitted_latencies:
        ordered = sorted(admitted_latencies)
        p50 = ordered[int(0.50 * (len(ordered) - 1))]
        p99 = ordered[int(0.99 * (len(ordered) - 1))]
    deadline_ok = deadline_seconds is None or p99 <= deadline_seconds
    return LoadTestReport(
        n_queries=n_queries,
        scenario=scenario,
        status_counts=status_counts,
        lost=n_queries - accounted,
        elapsed_seconds=elapsed,
        throughput_qps=(n_queries / elapsed) if elapsed > 0 else 0.0,
        latency_p50_seconds=p50 or float(latency_block.get("p50", 0.0)),
        latency_p99_seconds=p99 or float(latency_block.get("p99", 0.0)),
        deadline_seconds=deadline_seconds,
        deadline_p99_ok=deadline_ok,
        pool_restarts=int(stats.get("pool_restarts", 0)),
        stats=stats,
    )
