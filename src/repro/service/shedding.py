"""Admission control and the load-shedding ladder.

Under overload the service degrades by answer *quality* before it
degrades by *availability*. :class:`AdmissionController` maps queue
depth to a :class:`ShedLevel`; each level above ``FULL`` answers the
query from a cheaper rung instead of queueing it:

====================  ====================================================
``FULL``              normal path: dedup, enqueue, worker-tier solve
``CACHE_ONLY``        answer only if the result store (or an identical
                      in-flight query) already has it; else coarse bound
``COARSE``            answer with the Theorem-1 erasure bound ``N(1-P_d)``
                      computed inline — cheap, deterministic, and an
                      honest upper bound on what the full solve returns
``REJECT``            shed: the query terminates with status ``shed``
====================  ====================================================

The cache→coarse descent is expressed through
:func:`repro.numerics.degrade_gracefully` — the same retry-ladder
machinery the guarded solvers use — so shed-ladder outcomes land in the
solver-status collector (``service.shed_ladder:<status>``) next to
every other solver's health. These ladder functions are deliberately
*synchronous*: coroutine code in :mod:`repro.service.service` must not
call solvers directly (rule ``SVC001``) and instead calls this module,
whose coarse rung is O(1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.capacity import erasure_upper_bound
from ..numerics import SolverStatus, degrade_gracefully
from ..store import active_store
from ..store.memo import record_cache_event
from .query import QUERY_FN_ID, CapacityQuery, query_key

__all__ = [
    "ShedLevel",
    "AdmissionController",
    "LadderOutcome",
    "SHED_LADDER_SOLVER",
    "cached_lookup",
    "store_answer",
    "coarse_bound_value",
    "resolve_degraded",
]

#: Solver name under which shed-ladder outcomes are recorded.
SHED_LADDER_SOLVER = "service.shed_ladder"


class ShedLevel(enum.IntEnum):
    """Escalating overload responses; higher sheds harder."""

    FULL = 0
    CACHE_ONLY = 1
    COARSE = 2
    REJECT = 3


@dataclass(frozen=True)
class AdmissionController:
    """Map queue depth to a :class:`ShedLevel`.

    Thresholds are fractions of ``queue_limit``: depth below
    ``cache_only_fraction`` admits at ``FULL``, below
    ``coarse_fraction`` at ``CACHE_ONLY``, below 1.0 at ``COARSE``,
    and a saturated queue rejects.
    """

    queue_limit: int = 128
    cache_only_fraction: float = 0.6
    coarse_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if not 0.0 < self.cache_only_fraction <= 1.0:
            raise ValueError("cache_only_fraction must be in (0, 1]")
        if not self.cache_only_fraction <= self.coarse_fraction <= 1.0:
            raise ValueError(
                "coarse_fraction must be in [cache_only_fraction, 1]"
            )

    def level(self, queue_depth: int) -> ShedLevel:
        """The shed level a query arriving at *queue_depth* receives."""
        if queue_depth >= self.queue_limit:
            return ShedLevel.REJECT
        fraction = queue_depth / self.queue_limit
        if fraction >= self.coarse_fraction:
            return ShedLevel.COARSE
        if fraction >= self.cache_only_fraction:
            return ShedLevel.CACHE_ONLY
        return ShedLevel.FULL


@dataclass(frozen=True)
class LadderOutcome:
    """One shed-ladder rung's answer, shaped for ``degrade_gracefully``.

    ``status``/``diagnostics`` satisfy the guarded-result protocol;
    ``value``/``source`` carry the service-level answer.
    """

    status: SolverStatus
    value: Optional[Dict[str, float]]
    source: str
    diagnostics: None = None


def cached_lookup(query: CapacityQuery) -> Optional[Dict[str, float]]:
    """The stored answer for *query*, or ``None``.

    Consults the active result store (:mod:`repro.store`) under the
    query's canonical key and records a hit/miss cache event; with no
    store active this is a cheap ``None``.
    """
    store = active_store()
    if store is None:
        return None
    found = store.fetch(query_key(query))
    if found is None:
        record_cache_event(QUERY_FN_ID, "miss")
        return None
    value, _entry = found
    record_cache_event(QUERY_FN_ID, "hit")
    return {str(k): float(v) for k, v in value.items()}


def store_answer(query: CapacityQuery, value: Dict[str, float]) -> None:
    """Persist a full-fidelity answer under *query*'s canonical key.

    Best-effort: with no active store, or on any store write error,
    the answer simply isn't shared — the cache trades time, never
    correctness. Only ``OK``-status (solver) answers are stored;
    degraded rungs must never poison the cache.
    """
    store = active_store()
    if store is None:
        return
    try:
        store.put(key=query_key(query), value=value, fn_id=QUERY_FN_ID)
    except Exception:  # noqa: BLE001 — best-effort write
        pass


def coarse_bound_value(query: CapacityQuery) -> Dict[str, float]:
    """The coarse rung: Theorem-1 erasure bound ``N(1 - P_d)``.

    An O(1) upper bound on every kind's full answer — degraded, but
    honest and correctly oriented (never an underestimate of capacity).
    """
    return {
        "upper": erasure_upper_bound(query.bits_per_symbol, query.deletion)
    }


def resolve_degraded(
    query: CapacityQuery, *, try_cache: bool = True
) -> LadderOutcome:
    """Walk the degraded rungs for *query*: cache, then coarse bound.

    ``try_cache=False`` (the ``COARSE`` shed level, where even a store
    read is too much queueing) jumps straight to the bound. The descent
    runs through :func:`repro.numerics.degrade_gracefully`, so the
    chosen rung's status is recorded under ``service.shed_ladder``:
    ``CONVERGED`` for a cache hit, ``STALLED`` for a coarse-bound
    answer — a fleet-level signal of how degraded the service's answers
    currently are.
    """
    rungs = []
    if try_cache:
        def cache_rung() -> LadderOutcome:
            hit = cached_lookup(query)
            if hit is None:
                return LadderOutcome(
                    status=SolverStatus.ABORTED, value=None, source="store"
                )
            return LadderOutcome(
                status=SolverStatus.CONVERGED, value=hit, source="store"
            )

        rungs.append(cache_rung)

    def coarse_rung() -> LadderOutcome:
        return LadderOutcome(
            status=SolverStatus.STALLED,
            value=coarse_bound_value(query),
            source="coarse_bound",
        )

    rungs.append(coarse_rung)

    def solve(rung: int = 0) -> LadderOutcome:
        return rungs[rung]()

    outcome: LadderOutcome = degrade_gracefully(
        solve,
        [{"rung": i} for i in range(1, len(rungs))],
        solver=SHED_LADDER_SOLVER,
        accept=(SolverStatus.CONVERGED, SolverStatus.STALLED),
        rank=lambda attempt: 0.0 if attempt.value is not None else 1.0,
    )
    return outcome
