"""Capacity-degradation analysis (paper Sections 3.2 and 4.3).

The paper's closing remark: *"the capacity degradation due to
non-synchronous effects is roughly proportional to P_d, the probability
of deletions"*, and that this degradation is *inherent* — independent of
which synchronization mechanism is deployed.

This module quantifies the claim: exact degradation of the erasure
bound, degradation of the Theorem 5 achievable rate (which adds an
insertion-driven term), linear-fit diagnostics over a ``P_d`` sweep, and
scheduler-comparison helpers used by experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .capacity import feedback_lower_bound

__all__ = [
    "relative_degradation_upper",
    "relative_degradation_lower",
    "DegradationFit",
    "fit_degradation",
    "degradation_series",
]


def relative_degradation_upper(deletion_prob: float) -> float:
    """Relative loss of the erasure bound vs. the synchronous capacity.

    ``1 - N(1-P_d)/N = P_d`` — *exactly* proportional to ``P_d``,
    the cleanest form of the paper's claim.
    """
    if not 0.0 <= deletion_prob <= 1.0:
        raise ValueError("deletion_prob must be in [0, 1]")
    return deletion_prob


def relative_degradation_lower(
    bits_per_symbol: int, deletion_prob: float, insertion_prob: float
) -> float:
    """Relative loss of the Theorem 5 achievable rate vs. ``N`` bits/slot.

    ``1 - C_lower / N``. For small ``P_i`` this is ``P_d`` plus an
    insertion penalty of order ``H(P_i)/N``.
    """
    n = bits_per_symbol
    lower = feedback_lower_bound(n, deletion_prob, insertion_prob)
    return 1.0 - lower / n


@dataclass(frozen=True)
class DegradationFit:
    """Least-squares line ``degradation ~ slope * P_d + intercept``.

    ``r_squared`` near 1 with ``slope`` near 1 confirms the paper's
    "roughly proportional to P_d" remark over the fitted range.
    """

    slope: float
    intercept: float
    r_squared: float
    max_abs_residual: float


def fit_degradation(
    deletion_probs: Sequence[float], degradations: Sequence[float]
) -> DegradationFit:
    """Fit a line to (P_d, degradation) pairs and report fit quality."""
    x = np.asarray(deletion_probs, dtype=float)
    y = np.asarray(degradations, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise ValueError("need matching 1-D arrays with at least 2 points")
    slope, intercept = np.polyfit(x, y, 1)
    fitted = slope * x + intercept
    residuals = y - fitted
    ss_res = float((residuals**2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return DegradationFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r2,
        max_abs_residual=float(np.abs(residuals).max()),
    )


def degradation_series(
    bits_per_symbol: int,
    deletion_probs: Sequence[float],
    insertion_prob: float = 0.0,
) -> np.ndarray:
    """Array of Theorem-5 relative degradations over a ``P_d`` sweep.

    With ``insertion_prob = 0`` the series equals ``deletion_probs``
    exactly (the erasure-bound case); nonzero insertions add a constant
    offset, preserving the slope-1 proportionality in ``P_d``.
    """
    probs = np.asarray(deletion_probs, dtype=float)
    if probs.ndim != 1:
        raise ValueError("deletion_probs must be 1-D")
    out = np.empty_like(probs)
    for k, pd in enumerate(probs):
        out[k] = relative_degradation_lower(
            bits_per_symbol, float(pd), insertion_prob
        )
    return out
