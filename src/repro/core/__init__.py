"""Core contribution of the paper: non-synchronous covert channels.

Deletion-insertion channel models (Definition 1 / Figure 2), the
matched erasure channels of Theorems 1 and 4, the closed-form capacity
bounds of Theorems 1-5, the two-step estimation recipe of Section 4.3,
and degradation analysis.
"""

from .capacity import (
    alpha,
    converted_capacity,
    converted_capacity_large_n,
    converted_insertion_fraction,
    convergence_ratio,
    convergence_ratio_limit,
    deletion_feedback_capacity,
    erasure_bound_profile,
    erasure_upper_bound,
    feedback_lower_bound,
    feedback_lower_bound_exact,
    feedback_time_coefficient,
)
from .composition import (
    compose_parameters,
    composite_erasure_bound,
    composition_is_degrading,
)
from .channels import (
    ERASURE,
    DeletionChannel,
    DeletionInsertionChannel,
    ErasureChannelView,
    InsertionChannel,
    TransmissionRecord,
)
from .design import (
    WidthDesign,
    optimal_symbol_width,
    symbol_time,
    symbol_width_rate,
    width_sweep,
)
from .degradation import (
    DegradationFit,
    degradation_series,
    fit_degradation,
    relative_degradation_lower,
    relative_degradation_upper,
)
from .estimation import CapacityEstimator, CapacityReport, estimate_from_events
from .noisy import (
    noisy_converted_capacity,
    noisy_converted_error_probability,
    noisy_feedback_lower_bound,
)
from .events import (
    ChannelEvent,
    ChannelParameters,
    empirical_parameters,
    event_counts,
    sample_events,
)
from .theorems import (
    THEOREMS,
    TheoremStatement,
    asymptotic_gap,
    capacity_bracket,
    theorem1_upper_bound,
    theorem2_feedback_upper_bound,
    theorem3_feedback_capacity,
    theorem4_feedback_upper_bound,
    theorem5_feedback_lower_bound,
)

__all__ = [
    "alpha",
    "converted_capacity",
    "converted_capacity_large_n",
    "converted_insertion_fraction",
    "convergence_ratio",
    "convergence_ratio_limit",
    "deletion_feedback_capacity",
    "erasure_bound_profile",
    "erasure_upper_bound",
    "feedback_lower_bound",
    "feedback_lower_bound_exact",
    "feedback_time_coefficient",
    "compose_parameters",
    "composite_erasure_bound",
    "composition_is_degrading",
    "ERASURE",
    "DeletionChannel",
    "DeletionInsertionChannel",
    "ErasureChannelView",
    "InsertionChannel",
    "TransmissionRecord",
    "WidthDesign",
    "optimal_symbol_width",
    "symbol_time",
    "symbol_width_rate",
    "width_sweep",
    "DegradationFit",
    "degradation_series",
    "fit_degradation",
    "relative_degradation_lower",
    "relative_degradation_upper",
    "CapacityEstimator",
    "CapacityReport",
    "estimate_from_events",
    "noisy_converted_capacity",
    "noisy_converted_error_probability",
    "noisy_feedback_lower_bound",
    "ChannelEvent",
    "ChannelParameters",
    "empirical_parameters",
    "event_counts",
    "sample_events",
    "THEOREMS",
    "TheoremStatement",
    "asymptotic_gap",
    "capacity_bracket",
    "theorem1_upper_bound",
    "theorem2_feedback_upper_bound",
    "theorem3_feedback_capacity",
    "theorem4_feedback_upper_bound",
    "theorem5_feedback_lower_bound",
]
