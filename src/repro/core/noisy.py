"""Extension: feedback bounds with a *noisy* data path.

The paper's synchronization analysis assumes the data channel is
noiseless ("To focus on the synchronization problem, we assume that the
channel is noiseless", §4.2). This module removes that assumption: when
transmitted symbols additionally suffer substitutions with probability
``P_s`` (uniform over the other ``2^N - 1`` symbols), the counter
protocol still converts the channel into an M-ary *symmetric* DMC —
a received position is either

* an insertion (probability ``q = P_i / (1 - P_d)`` among received
  positions), uniform over the whole alphabet, or
* a transmission, correct with probability ``1 - P_s``.

giving total error probability ``e = q (M-1)/M + (1 - q) P_s`` and the
same time coefficient ``(1 - P_d)/(1 - P_i)`` as Theorem 5. Setting
``P_s = 0`` recovers :func:`repro.core.capacity.feedback_lower_bound_exact`
exactly.
"""

from __future__ import annotations

from .capacity import (
    _check_n,  # type: ignore[attr-defined]
    _check_prob,  # type: ignore[attr-defined]
    converted_insertion_fraction,
    feedback_time_coefficient,
)
from ..infotheory.channels import m_ary_symmetric_capacity

__all__ = [
    "noisy_converted_error_probability",
    "noisy_converted_capacity",
    "noisy_feedback_lower_bound",
]


def noisy_converted_error_probability(
    bits_per_symbol: int,
    deletion_prob: float,
    insertion_prob: float,
    substitution_prob: float,
) -> float:
    """Total symbol-error probability of the noisy converted channel.

    ``e = q (M-1)/M + (1 - q) P_s`` with ``q = P_i/(1 - P_d)`` and
    ``M = 2^N``.
    """
    _check_n(bits_per_symbol)
    _check_prob("substitution_prob", substitution_prob)
    q = converted_insertion_fraction(deletion_prob, insertion_prob)
    m = 2**bits_per_symbol
    return q * (m - 1) / m + (1.0 - q) * substitution_prob


def noisy_converted_capacity(
    bits_per_symbol: int,
    deletion_prob: float,
    insertion_prob: float,
    substitution_prob: float,
) -> float:
    """Capacity of the noisy converted channel, bits per received
    symbol: the M-ary symmetric formula at the combined error rate."""
    e = noisy_converted_error_probability(
        bits_per_symbol, deletion_prob, insertion_prob, substitution_prob
    )
    return m_ary_symmetric_capacity(2**bits_per_symbol, e)


def noisy_feedback_lower_bound(
    bits_per_symbol: int,
    deletion_prob: float,
    insertion_prob: float,
    substitution_prob: float,
) -> float:
    """Achievable rate of the counter protocol over a noisy channel,
    bits per sender slot:

    ``((1 - P_d)/(1 - P_i)) * C_conv_noisy``.

    Reduces to the exact Theorem-5 rate at ``P_s = 0``; at
    ``P_d = P_i = 0`` it is the plain M-ary symmetric capacity at
    ``P_s`` (no synchronization loss, only noise).
    """
    coeff = feedback_time_coefficient(deletion_prob, insertion_prob)
    return coeff * noisy_converted_capacity(
        bits_per_symbol, deletion_prob, insertion_prob, substitution_prob
    )
