"""The five theorems of Wang & Lee as documented, checkable objects.

Each theorem is exposed both as a plain function (returning the bound)
and through :class:`TheoremStatement` metadata used by the experiment
registry to label benchmark output with the exact paper anchor it
reproduces.

Summary
-------
* Theorem 1 — deletion-insertion capacity <= matched erasure capacity
  ``N (1 - P_d)``.
* Theorem 2 — deletion channel + perfect feedback <= erasure capacity.
* Theorem 3 — that bound is achieved (resend protocol), hence exact.
* Theorem 4 — deletion-insertion + perfect feedback <= extended-erasure
  capacity ``N (1 - P_d)``.
* Theorem 5 — counter protocol achieves
  ``((1-P_d)/(1-P_i)) C_conv`` (lower bound), converging to the
  Theorem 4 bound as ``N -> inf`` when ``P_i = P_d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .capacity import (
    convergence_ratio,
    deletion_feedback_capacity,
    erasure_upper_bound,
    feedback_lower_bound,
)

__all__ = [
    "TheoremStatement",
    "THEOREMS",
    "theorem1_upper_bound",
    "theorem2_feedback_upper_bound",
    "theorem3_feedback_capacity",
    "theorem4_feedback_upper_bound",
    "theorem5_feedback_lower_bound",
    "capacity_bracket",
    "asymptotic_gap",
]


@dataclass(frozen=True)
class TheoremStatement:
    """Machine-readable record of a paper theorem."""

    number: int
    title: str
    statement: str
    bound: Callable[..., float]

    def __call__(self, *args: float, **kwargs: float) -> float:
        return self.bound(*args, **kwargs)


def theorem1_upper_bound(bits_per_symbol: int, deletion_prob: float) -> float:
    """Theorem 1: ``C <= N (1 - P_d)`` for any deletion-insertion channel.

    The matched erasure channel sees the same drop-outs and insertions
    but knows their locations, so it can only have larger capacity; its
    capacity is the M-ary erasure formula (eq. 1).
    """
    return erasure_upper_bound(bits_per_symbol, deletion_prob)


def theorem2_feedback_upper_bound(bits_per_symbol: int, deletion_prob: float) -> float:
    """Theorem 2: feedback does not lift the deletion channel above the
    erasure capacity.

    Feedback cannot increase the capacity of a memoryless channel
    (Cover & Thomas), and the erasure channel dominates the deletion
    channel, so the bound is again ``N (1 - p_d)``.
    """
    return erasure_upper_bound(bits_per_symbol, deletion_prob)


def theorem3_feedback_capacity(bits_per_symbol: int, deletion_prob: float) -> float:
    """Theorem 3: the deletion channel with perfect feedback has capacity
    exactly ``N (1 - p_d)``.

    Achieved by the resend-until-acknowledged protocol implemented in
    :class:`repro.sync.feedback.ResendProtocol`.
    """
    return deletion_feedback_capacity(bits_per_symbol, deletion_prob)


def theorem4_feedback_upper_bound(
    bits_per_symbol: int, deletion_prob: float, insertion_prob: float = 0.0
) -> float:
    """Theorem 4: deletion-insertion channel with perfect feedback is
    upper-bounded by the *extended* erasure capacity ``N (1 - P_d)``.

    The insertion probability does not appear in the bound: in the
    extended erasure channel inserted symbols are located and discarded
    for free, so only deletions cost rate.
    """
    if not 0.0 <= insertion_prob <= 1.0:
        raise ValueError("insertion_prob must be in [0, 1]")
    return erasure_upper_bound(bits_per_symbol, deletion_prob)


def theorem5_feedback_lower_bound(
    bits_per_symbol: int, deletion_prob: float, insertion_prob: float
) -> float:
    """Theorem 5: the counter protocol achieves
    ``C_lower = ((1 - P_d)/(1 - P_i)) C_conv`` bits per sender slot.

    ``C_conv`` is the converted M-ary symmetric channel capacity of
    eq. (3); the protocol is implemented in
    :class:`repro.sync.feedback.CounterProtocol`.
    """
    return feedback_lower_bound(bits_per_symbol, deletion_prob, insertion_prob)


def capacity_bracket(
    bits_per_symbol: int, deletion_prob: float, insertion_prob: float
) -> Tuple[float, float]:
    """(lower, upper) capacity bracket for a noiseless deletion-insertion
    channel with perfect feedback (Theorems 4 and 5)."""
    lower = theorem5_feedback_lower_bound(
        bits_per_symbol, deletion_prob, insertion_prob
    )
    upper = theorem4_feedback_upper_bound(
        bits_per_symbol, deletion_prob, insertion_prob
    )
    return lower, upper


def asymptotic_gap(bits_per_symbol: int, prob: float) -> float:
    """``1 - C_lower/C_upper`` at ``P_i = P_d = prob`` (eqs. 6-7).

    Tends to 0 as ``bits_per_symbol`` grows — the convergence claim the
    paper closes Section 4.2.1 with.
    """
    return 1.0 - convergence_ratio(bits_per_symbol, prob)


THEOREMS: Dict[int, TheoremStatement] = {
    1: TheoremStatement(
        number=1,
        title="Erasure upper bound",
        statement=(
            "An upper bound of the capacity of a deletion-insertion channel "
            "is the capacity of the matched erasure channel: "
            "C_max = N (1 - P_d)."
        ),
        bound=theorem1_upper_bound,
    ),
    2: TheoremStatement(
        number=2,
        title="Feedback upper bound (deletion channel)",
        statement=(
            "The capacity of a deletion channel with perfect feedback is "
            "upper-bounded by the erasure-channel capacity."
        ),
        bound=theorem2_feedback_upper_bound,
    ),
    3: TheoremStatement(
        number=3,
        title="Feedback capacity (deletion channel)",
        statement=(
            "The capacity of a deletion channel with perfect feedback equals "
            "the erasure-channel capacity N (1 - p_d); achieved by "
            "resend-until-acknowledged."
        ),
        bound=theorem3_feedback_capacity,
    ),
    4: TheoremStatement(
        number=4,
        title="Feedback upper bound (deletion-insertion channel)",
        statement=(
            "The capacity of a deletion-insertion channel with perfect "
            "feedback is upper-bounded by the extended-erasure capacity "
            "N (1 - P_d)."
        ),
        bound=theorem4_feedback_upper_bound,
    ),
    5: TheoremStatement(
        number=5,
        title="Feedback lower bound (counter protocol)",
        statement=(
            "A lower bound of the capacity of a deletion-insertion channel "
            "with perfect feedback is ((1 - P_d)/(1 - P_i)) * C_conv, with "
            "C_conv = N - alpha P_i log2(2^N - 1) - H(alpha P_i) and "
            "alpha = (2^N - 1)/2^N."
        ),
        bound=theorem5_feedback_lower_bound,
    ),
}
