"""Composition laws for non-synchronous channels.

When a covert symbol crosses *several* non-synchronous stages — e.g.
the scheduler-shaped storage channel of §3.1 feeding the packet network
of the E13 scenario — the stages compose. For noiseless
deletion-insertion stages applied in series (each stage treats its
input queue per Definition 1):

* **deletions compound multiplicatively in survival**: a symbol survives
  ``k`` stages with probability ``prod (1 - P_d^{(s)})``;
* **insertions accumulate**: spurious symbols injected at stage ``s``
  are then *thinned* by the deletions of the later stages, so the
  composite insertion load is
  ``sum_s r_i^{(s)} * prod_{s' > s} (1 - P_d^{(s')})`` insertions per
  surviving input symbol, where ``r_i^{(s)} = P_i / P_t`` is stage
  ``s``'s insertions-per-consumed-symbol ratio.

:func:`compose_parameters` reduces a chain of stages to a single
equivalent :class:`~repro.core.events.ChannelParameters`;
:func:`composite_erasure_bound` applies Theorem 1 to the composite.
The data-processing sanity — composing can never raise the erasure
bound — is exposed as :func:`composition_is_degrading` and verified by
simulation in the test suite.
"""

from __future__ import annotations

from typing import Sequence

from ..infotheory.probability import is_zero
from .capacity import erasure_upper_bound
from .events import ChannelParameters

__all__ = [
    "compose_parameters",
    "composite_erasure_bound",
    "composition_is_degrading",
]


def compose_parameters(
    stages: Sequence[ChannelParameters],
) -> ChannelParameters:
    """Equivalent single-stage parameters for noiseless stages in series.

    The composite is expressed per channel use of the *equivalent*
    Definition-1 channel: with survival ``S = prod (1 - P_d^{(s)})``
    and composite insertion load ``R`` (insertions per consumed input
    symbol, already thinned by downstream deletions),

        P_t' = S / (1 + R'),   P_d' = (1 - S) / (1 + R'),
        P_i' = R' / (1 + R')   with R' = R

    — i.e. normalize (survive, die, spurious) per consumed symbol back
    into per-use probabilities.

    Raises
    ------
    ValueError
        If any stage is noisy (``P_s != 0``; substitution composition
        depends on alphabet details) or never consumes input.
    """
    if not stages:
        raise ValueError("need at least one stage")
    survival = 1.0
    insert_load = 0.0
    for stage in stages:
        if not is_zero(stage.substitution):
            raise ValueError("composition requires noiseless stages")
        consume = stage.deletion + stage.transmission
        if consume <= 0.0:
            raise ValueError("a stage never consumes input")
        # Insertions per consumed input symbol at this stage.
        r = stage.insertion / consume
        # This stage's survivors carry all earlier spurious symbols too;
        # earlier insertions get thinned by this stage's deletions.
        stage_survival = stage.transmission / consume
        insert_load = insert_load * stage_survival + r
        survival *= stage_survival
    # Per consumed input symbol: `survival` survivors, 1 - survival
    # deaths, `insert_load` spurious arrivals. Normalize to one event.
    denom = 1.0 + insert_load
    return ChannelParameters(
        deletion=(1.0 - survival) / denom,
        insertion=insert_load / denom,
        transmission=survival / denom,
    )


def composite_erasure_bound(
    bits_per_symbol: int, stages: Sequence[ChannelParameters]
) -> float:
    """Theorem 1 applied to the composite of *stages*."""
    composite = compose_parameters(stages)
    return erasure_upper_bound(bits_per_symbol, composite.deletion)


def composition_is_degrading(
    bits_per_symbol: int, stages: Sequence[ChannelParameters]
) -> bool:
    """Data-processing check: the composite erasure bound never exceeds
    any single stage's bound."""
    composite = composite_erasure_bound(bits_per_symbol, stages)
    singles = [
        erasure_upper_bound(bits_per_symbol, s.deletion) for s in stages
    ]
    return all(composite <= bound + 1e-12 for bound in singles)
