"""The paper's two-step capacity-estimation recipe (Section 4.3).

    "for a given covert channel, one could first use traditional methods
    to estimate the physical capacity C. The probability of deletion P_d
    should then be estimated. The real capacity can then be estimated as
    C (1 - P_d)."

:class:`CapacityEstimator` wires a *traditional* estimator (any of the
synchronous-model estimators in :mod:`repro.timing`, or a user-supplied
physical rate) to measured non-synchronous statistics (``P_d``, ``P_i``)
and produces the corrected estimate, the full Theorem 4/5 bracket, and a
structured :class:`CapacityReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from .capacity import (
    erasure_upper_bound,
    feedback_lower_bound,
    feedback_time_coefficient,
)
from .events import ChannelParameters, empirical_parameters

__all__ = ["CapacityReport", "CapacityEstimator", "estimate_from_events"]


@dataclass(frozen=True)
class CapacityReport:
    """Structured result of a non-synchronous capacity estimation.

    All rates are in bits per channel use unless stated otherwise;
    ``physical_capacity`` carries whatever unit the traditional method
    used (often bits/second), and the ``*_physical`` fields inherit it.

    Attributes
    ----------
    params:
        The (measured or assumed) channel parameters.
    bits_per_symbol:
        Symbol width ``N`` used for the theoretical bounds.
    synchronous_capacity:
        The traditional, synchronous-model estimate ``N`` bits/use —
        what prior work would report.
    corrected_capacity:
        The paper's headline correction ``N (1 - P_d)``.
    feedback_lower:
        Theorem 5 achievable rate with the counter protocol.
    physical_capacity:
        Optional physical rate from a traditional estimator.
    corrected_physical:
        ``physical_capacity * (1 - P_d)`` — the paper's §4.3 recipe.
    """

    params: ChannelParameters
    bits_per_symbol: int
    synchronous_capacity: float
    corrected_capacity: float
    feedback_lower: float
    physical_capacity: Optional[float] = None
    corrected_physical: Optional[float] = None

    @property
    def degradation(self) -> float:
        """Relative capacity loss ``1 - corrected/synchronous``.

        The paper's §4.3 remark: this is roughly proportional to
        ``P_d``; for the erasure bound it equals ``P_d`` exactly.
        """
        if self.synchronous_capacity == 0:
            return 0.0
        return 1.0 - self.corrected_capacity / self.synchronous_capacity

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            "Non-synchronous covert channel capacity estimate",
            f"  P_d={self.params.deletion:.4f}  P_i={self.params.insertion:.4f}"
            f"  P_t={self.params.transmission:.4f}  P_s={self.params.substitution:.4f}",
            f"  N = {self.bits_per_symbol} bits/symbol",
            f"  synchronous (traditional) capacity : {self.synchronous_capacity:.4f} bits/use",
            f"  corrected capacity  N(1-P_d)       : {self.corrected_capacity:.4f} bits/use",
            f"  Theorem 5 achievable (feedback)    : {self.feedback_lower:.4f} bits/slot",
            f"  relative degradation               : {self.degradation:.4%}",
        ]
        if self.physical_capacity is not None:
            lines.append(
                f"  physical capacity (traditional)    : {self.physical_capacity:.4f}"
            )
            lines.append(
                f"  physical capacity (corrected)      : {self.corrected_physical:.4f}"
            )
        return "\n".join(lines)


class CapacityEstimator:
    """Estimate real covert-channel capacity from non-synchronous stats.

    Parameters
    ----------
    bits_per_symbol:
        Symbol width ``N`` of the covert channel's signaling alphabet.
    physical_capacity:
        Optional traditional-method physical rate (e.g. from
        :func:`repro.timing.fsm.fsm_capacity` or
        :func:`repro.infotheory.noiseless.noiseless_capacity_per_second`)
        to which the ``(1 - P_d)`` correction is applied.
    """

    def __init__(
        self,
        bits_per_symbol: int = 1,
        *,
        physical_capacity: Optional[float] = None,
    ) -> None:
        if bits_per_symbol < 1:
            raise ValueError("bits_per_symbol must be >= 1")
        if physical_capacity is not None and (
            not math.isfinite(physical_capacity) or physical_capacity < 0
        ):
            # A NaN here would sail through a bare `< 0` check and
            # surface later as a NaN corrected_physical in the report.
            raise ValueError(
                "physical_capacity must be a finite non-negative rate, "
                f"got {physical_capacity!r}"
            )
        self.bits_per_symbol = bits_per_symbol
        self.physical_capacity = physical_capacity

    def estimate(self, params: ChannelParameters) -> CapacityReport:
        """Produce a :class:`CapacityReport` for the given parameters."""
        n = self.bits_per_symbol
        sync = float(n)
        corrected = erasure_upper_bound(n, params.deletion)
        if params.insertion < 1.0:
            lower = feedback_lower_bound(n, params.deletion, params.insertion)
        else:
            lower = 0.0
        physical = self.physical_capacity
        corrected_physical = (
            physical * (1.0 - params.deletion) if physical is not None else None
        )
        return CapacityReport(
            params=params,
            bits_per_symbol=n,
            synchronous_capacity=sync,
            corrected_capacity=corrected,
            feedback_lower=lower,
            physical_capacity=physical,
            corrected_physical=corrected_physical,
        )

    def estimate_from_events(self, events: Iterable[int]) -> CapacityReport:
        """Measure ``(P_d, P_i, P_t, P_s)`` from an event stream, then
        estimate. This is the full §4.3 workflow against observed system
        behavior (e.g. a scheduler trace from :mod:`repro.os_model`)."""
        return self.estimate(empirical_parameters(events))

    def time_coefficient(self, params: ChannelParameters) -> float:
        """The eq. (2) sender-slot coefficient ``(1-P_d)/(1-P_i)``."""
        return feedback_time_coefficient(params.deletion, params.insertion)


def estimate_from_events(
    events: Iterable[int],
    *,
    bits_per_symbol: int = 1,
    physical_capacity: Optional[float] = None,
) -> CapacityReport:
    """One-shot convenience wrapper around :class:`CapacityEstimator`."""
    estimator = CapacityEstimator(
        bits_per_symbol, physical_capacity=physical_capacity
    )
    return estimator.estimate_from_events(events)
