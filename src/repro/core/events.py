"""Channel-use events for deletion-insertion channels.

Wang & Lee (Definition 1, Figure 2) model each *use* of a non-synchronous
covert channel as one of four events: the next queued symbol is
**deleted**, an extra symbol is **inserted**, the next queued symbol is
**transmitted** (possibly suffering a **substitution**). This module
defines the event vocabulary, the parameter bundle
:class:`ChannelParameters`, and utilities for sampling and analyzing
event streams. The channel simulators in :mod:`repro.core.channels` and
the protocol harnesses in :mod:`repro.sync` are built on these streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..infotheory.probability import is_zero

__all__ = [
    "ChannelEvent",
    "ChannelParameters",
    "sample_events",
    "set_event_sampler_hook",
    "set_active_fault_injector",
    "active_fault_injector",
    "event_counts",
    "empirical_parameters",
]

#: Optional interception point for :func:`sample_events`. When set (by
#: :class:`repro.faults.FaultInjector` while a fault scenario is
#: active), every event draw in the package — channel simulators and
#: synchronization protocols alike — flows through the hook instead of
#: the i.i.d. model, so existing protocols run unmodified under faults.
_EVENT_SAMPLER_HOOK = None


def set_event_sampler_hook(hook):
    """Install (or clear, with ``None``) the global event-sampler hook.

    The hook has the same signature as :func:`sample_events` and fully
    replaces it while installed. Returns the previously installed hook
    so callers can restore it, making nested installation safe.
    """
    global _EVENT_SAMPLER_HOOK
    previous = _EVENT_SAMPLER_HOOK
    _EVENT_SAMPLER_HOOK = hook
    return previous


#: Opaque slot for the currently active fault injector. It lives here —
#: next to the sampler hook — so the hardened protocols in
#: :mod:`repro.sync` can consult it without importing the higher-level
#: :mod:`repro.faults` package (which itself builds on the sync layer).
_ACTIVE_FAULT_INJECTOR = None


def set_active_fault_injector(injector):
    """Register (or clear, with ``None``) the active fault injector.

    Returns the previously registered injector so nested fault scopes
    restore correctly. Managed by ``FaultInjector.active()``.
    """
    global _ACTIVE_FAULT_INJECTOR
    previous = _ACTIVE_FAULT_INJECTOR
    _ACTIVE_FAULT_INJECTOR = injector
    return previous


def active_fault_injector():
    """The fault injector installed for the current run, or ``None``.

    A ``None`` result means the perfect-feedback, i.i.d.-event world of
    the paper; protocols must then behave (and consume randomness)
    exactly as the unhardened originals did.
    """
    return _ACTIVE_FAULT_INJECTOR


class ChannelEvent(enum.IntEnum):
    """One outcome of a single channel use (paper Definition 1)."""

    #: The next queued symbol is silently dropped.
    DELETION = 0
    #: A spurious symbol (not sent by the sender) reaches the receiver.
    INSERTION = 1
    #: The next queued symbol is delivered unchanged.
    TRANSMISSION = 2
    #: The next queued symbol is delivered but corrupted
    #: (a transmission suffering a substitution error).
    SUBSTITUTION = 3


@dataclass(frozen=True)
class ChannelParameters:
    """The four rates ``(P_d, P_i, P_t, P_s)`` of Definition 1.

    ``deletion + insertion + transmission`` must equal 1; the
    substitution rate is the probability that a *transmitted* symbol is
    corrupted, conditioned on transmission (matching the paper's
    "with probability P_t the next queued bit is transmitted ... with
    probability P_s of suffering a substitution error").

    Attributes
    ----------
    deletion:
        ``P_d`` — probability the next queued symbol is dropped.
    insertion:
        ``P_i`` — probability a spurious symbol is inserted.
    transmission:
        ``P_t`` — probability the next queued symbol gets through.
    substitution:
        ``P_s`` — conditional corruption probability of a transmitted
        symbol.
    """

    deletion: float
    insertion: float
    transmission: float
    substitution: float = 0.0

    def __post_init__(self) -> None:
        for name in ("deletion", "insertion", "transmission", "substitution"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {value}")
        total = self.deletion + self.insertion + self.transmission
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(
                "deletion + insertion + transmission must sum to 1, "
                f"got {total}"
            )

    @classmethod
    def from_rates(
        cls, deletion: float, insertion: float, substitution: float = 0.0
    ) -> "ChannelParameters":
        """Build parameters from ``P_d`` and ``P_i``; ``P_t = 1 - P_d - P_i``."""
        transmission = 1.0 - deletion - insertion
        if transmission < -1e-9:
            raise ValueError("deletion + insertion must not exceed 1")
        return cls(
            deletion=deletion,
            insertion=insertion,
            transmission=max(0.0, transmission),
            substitution=substitution,
        )

    @property
    def is_noiseless(self) -> bool:
        """True when there are no substitution errors (``P_s = 0``)."""
        return bool(is_zero(self.substitution))

    @property
    def is_synchronous(self) -> bool:
        """True when there are neither deletions nor insertions."""
        return bool(is_zero(self.deletion) and is_zero(self.insertion))

    def event_distribution(self) -> np.ndarray:
        """Distribution over the four :class:`ChannelEvent` values.

        Transmission probability is split between clean TRANSMISSION and
        SUBSTITUTION according to ``P_s``.
        """
        return np.array(
            [
                self.deletion,
                self.insertion,
                self.transmission * (1.0 - self.substitution),
                self.transmission * self.substitution,
            ]
        )


def sample_events(
    params: ChannelParameters, num_uses: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample *num_uses* i.i.d. channel events as an int array.

    The values are :class:`ChannelEvent` codes. Vectorized: one call to
    the generator regardless of length.
    """
    if num_uses < 0:
        raise ValueError("num_uses must be non-negative")
    if _EVENT_SAMPLER_HOOK is not None:
        return _EVENT_SAMPLER_HOOK(params, num_uses, rng)
    dist = params.event_distribution()
    return rng.choice(4, size=num_uses, p=dist).astype(np.int64)


def event_counts(events: Iterable[int]) -> dict:
    """Count occurrences of each event type in an event stream."""
    arr = np.asarray(list(events) if not isinstance(events, np.ndarray) else events)
    return {
        ChannelEvent.DELETION: int(np.count_nonzero(arr == ChannelEvent.DELETION)),
        ChannelEvent.INSERTION: int(np.count_nonzero(arr == ChannelEvent.INSERTION)),
        ChannelEvent.TRANSMISSION: int(
            np.count_nonzero(arr == ChannelEvent.TRANSMISSION)
        ),
        ChannelEvent.SUBSTITUTION: int(
            np.count_nonzero(arr == ChannelEvent.SUBSTITUTION)
        ),
    }


def empirical_parameters(events: Iterable[int]) -> ChannelParameters:
    """Estimate :class:`ChannelParameters` from an observed event stream.

    This is the measurement step of the paper's estimation recipe: run
    (or observe) the system, classify each channel use, then feed the
    estimated ``P_d`` into ``C_real = C_traditional (1 - P_d)``.
    """
    arr = np.asarray(
        list(events) if not isinstance(events, np.ndarray) else events
    )
    if arr.size == 0:
        raise ValueError("cannot estimate parameters from an empty stream")
    # Validate before counting: a stream of unknown codes would count as
    # zero events of every kind and produce a misleading "empty stream"
    # (or, worse, NaN rates) instead of naming the bad data.
    valid = np.isin(arr, tuple(int(e) for e in ChannelEvent))
    if not np.all(valid):
        bad = arr[~valid][0].item()
        raise ValueError(
            f"event stream contains invalid event code {bad!r}; "
            "expected ChannelEvent values 0..3"
        )
    counts = event_counts(arr)
    total = sum(counts.values())
    transmitted = counts[ChannelEvent.TRANSMISSION] + counts[ChannelEvent.SUBSTITUTION]
    substitution = (
        counts[ChannelEvent.SUBSTITUTION] / transmitted if transmitted else 0.0
    )
    return ChannelParameters(
        deletion=counts[ChannelEvent.DELETION] / total,
        insertion=counts[ChannelEvent.INSERTION] / total,
        transmission=transmitted / total,
        substitution=substitution,
    )
