"""Closed-form capacity expressions from the paper.

Each function implements one numbered equation of Wang & Lee, in bits.
The theorem-level API with documented hypotheses lives in
:mod:`repro.core.theorems`; this module holds the raw formulas so they
can be swept, differentiated, and cross-checked numerically.

Notation: ``N`` = bits per symbol, ``P_d`` = deletion probability,
``P_i`` = insertion probability, ``H`` = binary entropy (eq. 5),
``alpha = (2^N - 1)/2^N`` (eq. 4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..infotheory.channels import (
    converted_channel_capacity,
    m_ary_erasure_capacity,
)
from ..infotheory.entropy import binary_entropy

__all__ = [
    "alpha",
    "erasure_upper_bound",
    "erasure_bound_profile",
    "converted_capacity",
    "converted_capacity_large_n",
    "converted_insertion_fraction",
    "feedback_lower_bound",
    "feedback_lower_bound_exact",
    "feedback_time_coefficient",
    "deletion_feedback_capacity",
    "convergence_ratio",
    "convergence_ratio_limit",
]


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError("bits_per_symbol must be >= 1")


def alpha(bits_per_symbol: int) -> float:
    """Eq. (4): ``alpha = (2^N - 1) / 2^N``.

    The probability that a uniformly random inserted symbol differs from
    the message symbol it displaces; tends to 1 as ``N`` grows.
    """
    _check_n(bits_per_symbol)
    m = 2**bits_per_symbol
    return (m - 1) / m


def erasure_upper_bound(bits_per_symbol: int, deletion_prob: float) -> float:
    """Eq. (1) / Theorems 1 & 4: ``C_max = N (1 - P_d)`` bits per use.

    The capacity of the matched (extended) erasure channel, which
    upper-bounds the deletion-insertion channel with or without perfect
    feedback.
    """
    _check_n(bits_per_symbol)
    _check_prob("deletion_prob", deletion_prob)
    return m_ary_erasure_capacity(2**bits_per_symbol, deletion_prob)


def erasure_bound_profile(
    bits_per_symbol: int, deletion_probs: Sequence[float]
) -> np.ndarray:
    """Eq. (1) evaluated over a whole ``P_d`` grid at once.

    The vectorized companion of :func:`erasure_upper_bound` for sweep
    paths (E1 and the service's coarse rung): one validated pass over
    the grid instead of one call per point.
    """
    _check_n(bits_per_symbol)
    pds = np.asarray(deletion_probs, dtype=float)
    if pds.ndim != 1:
        raise ValueError("deletion_probs must be a 1-D sequence")
    if pds.size and (
        not np.all(np.isfinite(pds))
        or pds.min() < 0.0
        or pds.max() > 1.0
    ):
        raise ValueError("deletion_probs must all be in [0, 1]")
    return bits_per_symbol * (1.0 - pds)


def converted_capacity(bits_per_symbol: int, insertion_prob: float) -> float:
    """Eq. (3): capacity of the converted M-ary symmetric channel.

    ``C_conv = N - alpha P_i log2(2^N - 1) - H(alpha P_i)``.
    """
    _check_n(bits_per_symbol)
    _check_prob("insertion_prob", insertion_prob)
    return converted_channel_capacity(bits_per_symbol, insertion_prob)


def converted_capacity_large_n(bits_per_symbol: int, insertion_prob: float) -> float:
    """Large-N approximation (paper eq. 5'): ``N (1 - P_i) - H(P_i)``.

    Used by the paper to argue the asymptotic convergence in eqs. (6)-(7);
    accurate to ``O(2^{-N})`` relative to :func:`converted_capacity`.
    """
    _check_n(bits_per_symbol)
    _check_prob("insertion_prob", insertion_prob)
    return bits_per_symbol * (1.0 - insertion_prob) - float(
        binary_entropy(insertion_prob)
    )


def feedback_time_coefficient(deletion_prob: float, insertion_prob: float) -> float:
    """The time-base coefficient ``(1 - P_d) / (1 - P_i)`` of eq. (2).

    Insertions consume no sender time slot, so ``(1 - P_i) n`` sender
    slots process ``(1 - P_d) n`` message symbols.
    """
    _check_prob("deletion_prob", deletion_prob)
    _check_prob("insertion_prob", insertion_prob)
    if insertion_prob >= 1.0:
        raise ValueError("insertion_prob must be < 1")
    return (1.0 - deletion_prob) / (1.0 - insertion_prob)


def feedback_lower_bound(
    bits_per_symbol: int, deletion_prob: float, insertion_prob: float
) -> float:
    """Theorem 5 / eq. (2): achievable rate of the counter protocol.

    ``C_lower = ((1 - P_d)/(1 - P_i)) * C_conv`` bits per sender slot.
    """
    coeff = feedback_time_coefficient(deletion_prob, insertion_prob)
    return coeff * converted_capacity(bits_per_symbol, insertion_prob)


def converted_insertion_fraction(deletion_prob: float, insertion_prob: float) -> float:
    """Fraction of *received* symbols that are insertions under the
    counter protocol: ``P_i / (P_i + P_t) = P_i / (1 - P_d)``.

    Receiver-side positions are created only by insertion and
    transmission events, so this — not the raw per-use ``P_i`` — is the
    substitution rate the converted channel actually experiences. The
    paper's eq. (3) uses ``P_i`` directly, which coincides with this
    fraction when ``P_d = 0`` and approximates it for small ``P_d``; see
    :func:`feedback_lower_bound_exact` and EXPERIMENTS.md (E3).
    """
    _check_prob("deletion_prob", deletion_prob)
    _check_prob("insertion_prob", insertion_prob)
    if deletion_prob >= 1.0:
        raise ValueError("deletion_prob must be < 1")
    if insertion_prob + deletion_prob > 1.0 + 1e-12:
        raise ValueError("P_d + P_i must not exceed 1")
    return insertion_prob / (1.0 - deletion_prob)


def feedback_lower_bound_exact(
    bits_per_symbol: int, deletion_prob: float, insertion_prob: float
) -> float:
    """Exact per-sender-slot rate of the Appendix-A counter protocol.

    ``((1 - P_d)/(1 - P_i)) * C_conv(alpha * P_i/(1 - P_d))`` — the same
    time-base coefficient as the paper's eq. (2), but with the converted
    channel evaluated at the substitution rate the receiver actually
    sees (:func:`converted_insertion_fraction`). Equal to
    :func:`feedback_lower_bound` when ``P_d = 0`` or ``P_i = 0``; never
    above it (C_conv is decreasing in its error argument), so it is also
    a valid — slightly tighter-to-simulation — lower bound.
    """
    coeff = feedback_time_coefficient(deletion_prob, insertion_prob)
    q = converted_insertion_fraction(deletion_prob, insertion_prob)
    return coeff * converted_capacity(bits_per_symbol, q)


def deletion_feedback_capacity(bits_per_symbol: int, deletion_prob: float) -> float:
    """Theorem 3: exact capacity of a deletion channel with feedback.

    Equals the erasure bound ``N (1 - p_d)`` — the resend-until-ack
    protocol achieves it, so the Theorem 2 upper bound is tight.
    """
    return erasure_upper_bound(bits_per_symbol, deletion_prob)


def convergence_ratio(bits_per_symbol: int, prob: float) -> float:
    """Eq. (7) ratio ``C_lower / C_upper`` at ``P_i = P_d = prob``.

    With ``P_i = P_d`` the time coefficient is 1 and the ratio reduces
    to ``C_conv(N, p) / (N (1 - p))``; it tends to 1 as ``N`` grows.
    """
    _check_n(bits_per_symbol)
    _check_prob("prob", prob)
    if prob >= 1.0:
        return 1.0
    upper = erasure_upper_bound(bits_per_symbol, prob)
    lower = feedback_lower_bound(bits_per_symbol, prob, prob)
    return lower / upper


def convergence_ratio_limit(bits_per_symbol: int, prob: float) -> float:
    """Eq. (6)-(7) large-N form: ``(N(1-p) - H(p)) / (N(1-p))``."""
    _check_n(bits_per_symbol)
    _check_prob("prob", prob)
    if prob >= 1.0:
        return 1.0
    n = bits_per_symbol
    return (n * (1.0 - prob) - float(binary_entropy(prob))) / (n * (1.0 - prob))
