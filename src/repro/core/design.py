"""Covert-channel design helpers: choosing the symbol width.

The paper's bounds grow with the symbol width ``N`` — ``N (1 − P_d)``
is unbounded in ``N`` — but real covert channels pay for wide symbols.
Two canonical cost models:

* ``"serial"`` — the symbol is written bit by bit into the shared
  resource: symbol time ``N * time_unit + sync_overhead``. Here the
  physical rate ``R(N) = C_lower_exact(N) / time(N)`` is *monotone
  increasing* in ``N`` (the per-symbol entropy penalty ``H(alpha q)``
  amortizes), saturating at ``(1 - P_d)/(1 - P_i) (1 - q)/time_unit``
  — so the only reason to stop widening is implementation limits, a
  useful but unsurprising fact.
* ``"timing"`` — the symbol is one of ``2^N`` distinguishable delays
  (an STC-style channel): symbol time grows like the *mean* delay
  ``~ time_unit * (2^N + 1)/2 + sync_overhead``. The numerator grows
  linearly while the denominator grows exponentially, so the rate has
  an **interior optimum** — the "how many timing levels should the
  attacker use?" question, answered by :func:`optimal_symbol_width`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .capacity import feedback_lower_bound_exact

__all__ = [
    "WidthDesign",
    "symbol_time",
    "symbol_width_rate",
    "width_sweep",
    "optimal_symbol_width",
]

_COST_MODELS = ("serial", "timing")


@dataclass(frozen=True)
class WidthDesign:
    """One point of the width trade-off curve."""

    bits_per_symbol: int
    rate_per_time: float
    rate_per_slot: float
    symbol_time: float


def symbol_time(
    bits_per_symbol: int,
    *,
    cost_model: str = "serial",
    time_unit: float = 1.0,
    sync_overhead: float = 0.0,
) -> float:
    """Time to convey one symbol under the chosen cost model."""
    if bits_per_symbol < 1:
        raise ValueError("bits_per_symbol must be >= 1")
    if cost_model not in _COST_MODELS:
        raise ValueError(f"cost_model must be one of {_COST_MODELS}")
    if time_unit <= 0:
        raise ValueError("time_unit must be positive")
    if sync_overhead < 0:
        raise ValueError("sync_overhead must be non-negative")
    if cost_model == "serial":
        return bits_per_symbol * time_unit + sync_overhead
    # timing: 2^N equiprobable delays 1..2^N time units -> mean delay.
    return time_unit * (2**bits_per_symbol + 1) / 2.0 + sync_overhead


def symbol_width_rate(
    bits_per_symbol: int,
    deletion_prob: float,
    insertion_prob: float,
    *,
    cost_model: str = "serial",
    time_unit: float = 1.0,
    sync_overhead: float = 0.0,
) -> float:
    """Physical rate ``R(N)`` in bits per time unit."""
    rate = feedback_lower_bound_exact(
        bits_per_symbol, deletion_prob, insertion_prob
    )
    return rate / symbol_time(
        bits_per_symbol,
        cost_model=cost_model,
        time_unit=time_unit,
        sync_overhead=sync_overhead,
    )


def width_sweep(
    deletion_prob: float,
    insertion_prob: float,
    *,
    max_bits: int = 16,
    cost_model: str = "serial",
    time_unit: float = 1.0,
    sync_overhead: float = 0.0,
) -> List[WidthDesign]:
    """The rate curve over ``N = 1 .. max_bits``."""
    if max_bits < 1:
        raise ValueError("max_bits must be >= 1")
    out = []
    for n in range(1, max_bits + 1):
        per_slot = feedback_lower_bound_exact(n, deletion_prob, insertion_prob)
        t = symbol_time(
            n,
            cost_model=cost_model,
            time_unit=time_unit,
            sync_overhead=sync_overhead,
        )
        out.append(
            WidthDesign(
                bits_per_symbol=n,
                rate_per_time=per_slot / t,
                rate_per_slot=per_slot,
                symbol_time=t,
            )
        )
    return out


def optimal_symbol_width(
    deletion_prob: float,
    insertion_prob: float,
    *,
    max_bits: int = 16,
    cost_model: str = "timing",
    time_unit: float = 1.0,
    sync_overhead: float = 0.0,
) -> WidthDesign:
    """The ``N`` maximizing the physical rate over ``1 .. max_bits``.

    Under the ``"timing"`` model the optimum is interior and small
    (typically 1-3 bits — exponentially slower symbols are not worth
    their linear information gain); under ``"serial"`` the curve is
    monotone and the optimum is ``max_bits``.
    """
    sweep = width_sweep(
        deletion_prob,
        insertion_prob,
        max_bits=max_bits,
        cost_model=cost_model,
        time_unit=time_unit,
        sync_overhead=sync_overhead,
    )
    return max(sweep, key=lambda d: d.rate_per_time)
