"""Non-synchronous channel simulators.

The deletion-insertion channel of Wang & Lee Definition 1 (Figure 2),
its deletion-only and insertion-only specializations, and the matched
erasure channels of Theorems 1 and 4 (same drop-outs/insertions, but the
receiver learns their *locations*). All simulators operate on arrays of
symbol indices drawn from an alphabet of ``2**bits_per_symbol`` values
and report a :class:`TransmissionRecord` carrying enough ground truth to
compute empirical information rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .events import ChannelEvent, ChannelParameters, sample_events

__all__ = [
    "TransmissionRecord",
    "DeletionInsertionChannel",
    "DeletionChannel",
    "InsertionChannel",
    "ErasureChannelView",
    "ERASURE",
]

#: Sentinel marking an erased position in an :class:`ErasureChannelView`
#: output stream. Chosen negative so it can never collide with a symbol.
ERASURE = -1


@dataclass
class TransmissionRecord:
    """Ground-truth record of one pass through a non-synchronous channel.

    Attributes
    ----------
    sent:
        The symbols offered by the sender, in order.
    received:
        The symbols observed by the receiver, in order. Its length
        differs from ``len(sent)`` when deletions/insertions occurred.
    events:
        The per-use event stream (:class:`ChannelEvent` codes). The
        stream stops once the input queue is exhausted.
    erasure_view:
        Receiver stream with locations revealed: transmitted symbols in
        place, deleted symbols replaced by :data:`ERASURE`, inserted
        symbols removed. Only populated when the channel was built with
        ``reveal_locations=True`` (the Theorem 1/4 genie).
    sent_consumed:
        How many input symbols the channel consumed (deleted or
        transmitted); equals ``len(sent)`` unless ``num_uses`` truncated
        the run.
    """

    sent: np.ndarray
    received: np.ndarray
    events: np.ndarray
    erasure_view: Optional[np.ndarray] = None
    sent_consumed: int = 0

    @property
    def num_uses(self) -> int:
        """Number of channel uses that occurred."""
        return int(self.events.shape[0])

    @property
    def num_deletions(self) -> int:
        return int(np.count_nonzero(self.events == ChannelEvent.DELETION))

    @property
    def num_insertions(self) -> int:
        return int(np.count_nonzero(self.events == ChannelEvent.INSERTION))

    @property
    def num_transmissions(self) -> int:
        return int(
            np.count_nonzero(self.events == ChannelEvent.TRANSMISSION)
            + np.count_nonzero(self.events == ChannelEvent.SUBSTITUTION)
        )


class DeletionInsertionChannel:
    """The binary/M-ary deletion-insertion channel of Definition 1.

    Symbols wait in a queue. Each channel use, with probability ``P_d``
    the next queued symbol is deleted; with probability ``P_i`` an extra
    uniformly random symbol is inserted into the output; with probability
    ``P_t`` the next queued symbol is delivered, suffering a substitution
    (re-drawn uniformly among the other symbols) with probability ``P_s``.

    Unlike an erasure channel, the receiver learns *nothing* about where
    deletions and insertions occurred — which is precisely what makes the
    non-synchronous channel hard (paper §3.3). Passing
    ``reveal_locations=True`` additionally produces the matched
    (extended) erasure view used by Theorems 1 and 4.

    Parameters
    ----------
    params:
        The four event rates.
    bits_per_symbol:
        ``N``; the alphabet is ``{0, ..., 2^N - 1}``.
    reveal_locations:
        If True, :class:`TransmissionRecord.erasure_view` is populated.
    """

    def __init__(
        self,
        params: ChannelParameters,
        *,
        bits_per_symbol: int = 1,
        reveal_locations: bool = False,
    ) -> None:
        if bits_per_symbol < 1:
            raise ValueError("bits_per_symbol must be >= 1")
        self.params = params
        self.bits_per_symbol = bits_per_symbol
        self.alphabet_size = 2**bits_per_symbol
        self.reveal_locations = reveal_locations

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.params
        return (
            f"{type(self).__name__}(Pd={p.deletion}, Pi={p.insertion}, "
            f"Pt={p.transmission}, Ps={p.substitution}, N={self.bits_per_symbol})"
        )

    # ------------------------------------------------------------------
    def transmit(
        self,
        symbols: np.ndarray,
        rng: np.random.Generator,
        *,
        max_uses: Optional[int] = None,
    ) -> TransmissionRecord:
        """Send *symbols* through the channel.

        The channel is used until the input queue is exhausted (every
        queued symbol deleted or transmitted), or until *max_uses* uses
        have elapsed if given.
        """
        queue = np.asarray(symbols, dtype=np.int64)
        if queue.ndim != 1:
            raise ValueError("symbols must be a 1-D array")
        if queue.size and (queue.min() < 0 or queue.max() >= self.alphabet_size):
            raise ValueError("symbol out of alphabet range")

        p = self.params
        received: List[int] = []
        events: List[int] = []
        erasure_view: Optional[List[int]] = [] if self.reveal_locations else None
        qpos = 0
        uses = 0
        # Draw events lazily in blocks to stay vectorized without
        # overshooting: expected uses per consumed symbol is
        # 1 / (Pd + Pt); insertions extend the run.
        consume_prob = p.deletion + p.transmission
        if consume_prob <= 0 and queue.size > 0:
            if max_uses is None:
                raise ValueError(
                    "channel never consumes input (Pd + Pt = 0); "
                    "pass max_uses to bound the run"
                )
        while qpos < queue.size:
            if max_uses is not None and uses >= max_uses:
                break
            block = 1024 if max_uses is None else min(1024, max_uses - uses)
            ev_block = sample_events(p, block, rng)
            ins_syms = rng.integers(0, self.alphabet_size, size=block)
            sub_offsets = rng.integers(1, self.alphabet_size, size=block) \
                if self.alphabet_size > 1 else np.zeros(block, dtype=np.int64)
            for k in range(block):
                if qpos >= queue.size:
                    break
                ev = int(ev_block[k])
                events.append(ev)
                uses += 1
                if ev == ChannelEvent.DELETION:
                    if erasure_view is not None:
                        erasure_view.append(ERASURE)
                    qpos += 1
                elif ev == ChannelEvent.INSERTION:
                    received.append(int(ins_syms[k]))
                    # The genie's extended-erasure view removes inserted
                    # symbols entirely (their location is known).
                elif ev == ChannelEvent.TRANSMISSION:
                    sym = int(queue[qpos])
                    received.append(sym)
                    if erasure_view is not None:
                        erasure_view.append(sym)
                    qpos += 1
                else:  # SUBSTITUTION
                    sym = int((queue[qpos] + sub_offsets[k]) % self.alphabet_size)
                    received.append(sym)
                    if erasure_view is not None:
                        erasure_view.append(sym)
                    qpos += 1
                if max_uses is not None and uses >= max_uses:
                    break

        return TransmissionRecord(
            sent=queue,
            received=np.asarray(received, dtype=np.int64),
            events=np.asarray(events, dtype=np.int64),
            erasure_view=(
                np.asarray(erasure_view, dtype=np.int64)
                if erasure_view is not None
                else None
            ),
            sent_consumed=qpos,
        )


class DeletionChannel(DeletionInsertionChannel):
    """Deletion-only channel: ``P_i = 0`` (Theorems 2 and 3)."""

    def __init__(
        self,
        deletion_prob: float,
        *,
        bits_per_symbol: int = 1,
        substitution_prob: float = 0.0,
        reveal_locations: bool = False,
    ) -> None:
        params = ChannelParameters.from_rates(
            deletion=deletion_prob, insertion=0.0, substitution=substitution_prob
        )
        super().__init__(
            params,
            bits_per_symbol=bits_per_symbol,
            reveal_locations=reveal_locations,
        )


class InsertionChannel(DeletionInsertionChannel):
    """Insertion-only channel: ``P_d = 0``."""

    def __init__(
        self,
        insertion_prob: float,
        *,
        bits_per_symbol: int = 1,
        substitution_prob: float = 0.0,
        reveal_locations: bool = False,
    ) -> None:
        params = ChannelParameters.from_rates(
            deletion=0.0, insertion=insertion_prob, substitution=substitution_prob
        )
        super().__init__(
            params,
            bits_per_symbol=bits_per_symbol,
            reveal_locations=reveal_locations,
        )


@dataclass
class ErasureChannelView:
    """The matched (extended) erasure channel of Theorems 1 and 4.

    Wraps a :class:`DeletionInsertionChannel` and exposes only the
    genie-aided view: the receiver sees transmitted symbols in place and
    an :data:`ERASURE` mark where each deletion happened; inserted
    symbols are identified and discarded. By construction it experiences
    the *same* randomness as the underlying non-synchronous channel —
    the paper's argument that its capacity upper-bounds the
    deletion-insertion capacity.
    """

    channel: DeletionInsertionChannel = field()

    def __post_init__(self) -> None:
        if not self.channel.reveal_locations:
            raise ValueError(
                "underlying channel must be built with reveal_locations=True"
            )

    def transmit(
        self,
        symbols: np.ndarray,
        rng: np.random.Generator,
        *,
        max_uses: Optional[int] = None,
    ) -> np.ndarray:
        """Return the erasure-marked stream (symbols and ERASURE marks)."""
        record = self.channel.transmit(symbols, rng, max_uses=max_uses)
        assert record.erasure_view is not None
        return record.erasure_view

    @property
    def capacity(self) -> float:
        """Closed-form capacity ``N (1 - P_d)`` bits per use (eq. 1)."""
        return self.channel.bits_per_symbol * (1.0 - self.channel.params.deletion)
