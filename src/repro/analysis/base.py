"""Rule base classes, lint contexts, and the rule registry.

Four kinds of rules exist:

* **file rules** (``scope = "file"``) get a :class:`FileContext` — one
  parsed module at a time — and return findings anchored inside it;
* **project rules** (``scope = "project"``) get a
  :class:`ProjectContext` — the repository root — and check cross-file
  invariants (registry completeness, public-API coverage);
* **graph rules** (``scope = "graph"``) get a :class:`GraphContext` —
  the whole-program call graph and transitive effect closure from
  :mod:`repro.analysis.graph` — and check non-local invariants (cache
  purity, pool picklability, clock reachability); they only run under
  ``repro lint --graph``;
* **meta rules** (``scope = "meta"``) check the lint run itself; the
  runner drives them directly (today: LINT001 unused suppressions).

Rules register themselves with the :func:`register` decorator; the
runner resolves ids through :func:`get_rules`, which raises
:class:`UnknownRuleError` for ids that do not exist (so ``repro lint
--rule TYPO`` fails loudly instead of silently checking nothing).
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Type,
    Union,
)

from .findings import Finding

if TYPE_CHECKING:  # imported lazily: the graph package pulls in the
    from .graph import ProjectAnalysis  # result store (numpy et al.)

__all__ = [
    "LintError",
    "UnknownRuleError",
    "FileContext",
    "ProjectContext",
    "GraphContext",
    "Rule",
    "register",
    "get_rules",
    "all_rule_ids",
]


class LintError(Exception):
    """Base class for linter usage errors."""


class UnknownRuleError(LintError):
    """Raised when a requested rule id is not registered."""

    def __init__(self, rule_id: str) -> None:
        super().__init__(
            f"unknown rule id {rule_id!r}; known rules: {', '.join(all_rule_ids())}"
        )
        self.rule_id = rule_id


@dataclass
class FileContext:
    """One parsed Python module, ready for file-scoped rules.

    Attributes
    ----------
    path:
        Location of the file on disk.
    display_path:
        The path findings should report (repo relative when known).
    source / tree:
        Raw text and its parsed ``ast.Module``.
    module:
        Dotted module name (``"repro.sync.feedback"``) when the file
        lives under a ``src/`` root, else ``None``.
    """

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    module: Optional[str] = None

    def finding(
        self, node: Union[ast.AST, int], rule_id: str, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at *node* (or a line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = int(getattr(node, "lineno", 1))
            col = int(getattr(node, "col_offset", 0))
        return Finding(
            file=self.display_path,
            line=line,
            col=col,
            rule_id=rule_id,
            message=message,
        )


@dataclass
class ProjectContext:
    """Repository layout handle for project-scoped rules."""

    root: Path

    @property
    def src_dir(self) -> Path:
        """The ``src/`` root holding the package."""
        return self.root / "src"

    @property
    def package_dir(self) -> Path:
        """The ``src/repro`` package directory."""
        return self.src_dir / "repro"

    def display(self, path: Path) -> str:
        """Render *path* relative to the project root when possible."""
        try:
            return str(path.relative_to(self.root))
        except ValueError:
            return str(path)

    def finding(
        self, path: Path, line: int, rule_id: str, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at *path*:*line*."""
        return Finding(
            file=self.display(path),
            line=line,
            col=0,
            rule_id=rule_id,
            message=message,
        )


@dataclass
class GraphContext:
    """Whole-program analysis handle for graph-scoped rules."""

    root: Path
    analysis: "ProjectAnalysis"

    def finding(
        self, module: str, line: int, rule_id: str, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored in *module* at *line*."""
        summary = self.analysis.graph.modules.get(module)
        return Finding(
            file=summary.path if summary is not None else module,
            line=line,
            col=0,
            rule_id=rule_id,
            message=message,
        )


class Rule(abc.ABC):
    """Base class for all lint rules.

    Subclasses set ``rule_id`` (stable identifier, used in findings and
    suppressions), ``title`` (one line, shown in the rule catalog), and
    ``rationale`` (why the invariant matters — surfaced in docs and
    ``repro lint --explain``-style tooling).
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    scope: str = "file"

    def check(self, ctx: FileContext) -> List[Finding]:
        """File-scoped check; project rules leave this as a no-op."""
        return []

    def check_project(self, ctx: ProjectContext) -> List[Finding]:
        """Project-scoped check; file rules leave this as a no-op."""
        return []

    def check_graph(self, ctx: GraphContext) -> List[Finding]:
        """Graph-scoped check; other rules leave this as a no-op."""
        return []


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} lacks a rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def all_rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    return sorted(_REGISTRY)


def get_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve *rule_ids* (or all rules) to registered instances.

    Raises
    ------
    UnknownRuleError
        If any requested id is not registered.
    """
    # Rule modules self-register on import; make sure they have been.
    from . import rules as _rules  # noqa: F401  (import for side effect)

    if rule_ids is None:
        return [_REGISTRY[rule_id] for rule_id in all_rule_ids()]
    resolved: List[Rule] = []
    for rule_id in rule_ids:
        key = rule_id.upper()
        if key not in _REGISTRY:
            raise UnknownRuleError(rule_id)
        resolved.append(_REGISTRY[key])
    return resolved
