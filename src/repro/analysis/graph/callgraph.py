"""The link step: raw per-module summaries to a whole-program call graph.

Extraction (:mod:`.symbols`) is module-local so it can be cached; this
module is the cross-module half. It builds a global symbol table over
every analyzed module and resolves each function's raw call references
to fully-qualified targets:

* ``import``/``from``-aliases are followed through arbitrarily long
  re-export chains (``repro.numerics.safe_log2`` →
  ``repro.numerics.safeops.safe_log2``), with a visited set so cyclic
  re-exports terminate;
* method calls dispatch through the receiver's known class
  (``self.method()``, locals constructed from a known class, annotated
  ``self._pool: SupervisedPool`` attributes), walking base classes;
* decorators are resolved the same way, which is how ``@cached_solve``
  targets are identified without executing any code;
* calls that resolve to nothing stay on the node as ``unresolved`` —
  the conservative UNKNOWN element the effect closure propagates.

The linker also recognizes **pool submission sites**: calls to
``run``/``map_tasks``/``submit`` on receivers typed as
``SupervisedPool``/``ProcessPoolExecutor`` (including the
``functools.partial(self._pool.run, fn, …)`` thread-bridge form), and
records which argument expression is shipped across the process
boundary — the input to rule GRAPH002.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .symbols import ArgRef, CallRef, ClassInfo, FunctionInfo, ModuleSummary

__all__ = [
    "CallGraph",
    "FunctionNode",
    "Submission",
    "build_call_graph",
]

#: Receiver class names whose run/map_tasks/submit methods ship their
#: first argument to worker processes.
_POOL_CLASSES = frozenset({"SupervisedPool", "ProcessPoolExecutor"})
_POOL_METHODS = frozenset({"run", "map_tasks", "submit"})

#: Builtin callables that are never interesting as graph edges.
_BUILTIN_NAMES = frozenset(
    {
        "len", "range", "enumerate", "zip", "map", "filter", "sorted",
        "reversed", "min", "max", "sum", "abs", "round", "int", "float",
        "str", "bool", "bytes", "list", "tuple", "dict", "set", "frozenset",
        "repr", "format", "isinstance", "issubclass", "getattr", "setattr",
        "hasattr", "delattr", "iter", "next", "type", "vars", "id", "hash",
        "callable", "super", "property", "staticmethod", "classmethod",
        "divmod", "pow", "any", "all", "ord", "chr", "slice", "object",
        "Exception", "ValueError", "TypeError", "KeyError", "IndexError",
        "RuntimeError", "NotImplementedError", "StopIteration",
        "FileNotFoundError", "OSError", "ArithmeticError", "OverflowError",
        "ZeroDivisionError", "AttributeError", "KeyboardInterrupt",
        "memoryview", "complex", "bin", "hex", "oct", "globals", "locals",
    }
)


@dataclass(frozen=True)
class Submission:
    """One callable shipped to a worker pool.

    ``verdict`` is assigned at link time, when the submitting
    function's parameters and module symbol table are in hand:

    * ``"ok"`` — resolves to something pickled by importable name
      (module-level ``def``, class, external import);
    * ``"param"`` — the callable is a parameter of the submitting
      function (a forwarding wrapper; the actual submission is
      checked at that wrapper's call sites);
    * ``"violation"`` — provably or undecidably unpicklable (lambda,
      nested function, local binding, unresolvable name).
    """

    line: int
    api: str
    callable_ref: ArgRef
    verdict: str = "ok"
    detail: str = ""


@dataclass
class FunctionNode:
    """A linked function: resolved edges plus submission sites."""

    info: FunctionInfo
    callees: List[Tuple[str, int]] = field(default_factory=list)
    external_calls: List[Tuple[str, int]] = field(default_factory=list)
    unresolved: List[CallRef] = field(default_factory=list)
    cached_fn_id: Optional[str] = None
    submissions: List[Submission] = field(default_factory=list)

    @property
    def qname(self) -> str:
        return self.info.qname

    def callee_names(self) -> List[str]:
        seen: Set[str] = set()
        out: List[str] = []
        for name, _ in self.callees:
            if name not in seen:
                seen.add(name)
                out.append(name)
        return out


@dataclass
class CallGraph:
    """The whole-program graph over every analyzed module."""

    modules: Dict[str, ModuleSummary]
    functions: Dict[str, FunctionNode]
    classes: Dict[str, ClassInfo]

    def callers_of(self, qname: str) -> List[str]:
        return sorted(
            node.qname
            for node in self.functions.values()
            if any(callee == qname for callee, _ in node.callees)
        )


class _Linker:
    def __init__(self, modules: Dict[str, ModuleSummary]) -> None:
        self.modules = modules
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for summary in modules.values():
            for qname, info in summary.functions.items():
                self.functions[qname] = FunctionNode(info=info)
            self.classes.update(summary.classes)

    # -- symbol resolution --------------------------------------------

    def resolve(
        self, dotted: str, _seen: Optional[Set[str]] = None
    ) -> Tuple[str, str]:
        """Resolve a dotted name to ``(kind, target)``.

        Kinds: ``function``/``class`` (internal, target is a qname),
        ``external`` (target is the dotted name), ``unknown``.
        """
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return ("unknown", dotted)
        seen.add(dotted)
        if dotted in self.functions:
            return ("function", dotted)
        if dotted in self.classes:
            return ("class", dotted)
        module, remainder = self._split_module(dotted)
        if module is None:
            root = dotted.split(".", 1)[0]
            if any(
                m == root or m.startswith(root + ".") for m in self.modules
            ):
                # Rooted in the analyzed package but names nothing we
                # extracted (e.g. a module-level constant).
                return ("unknown", dotted)
            return ("external", dotted)
        if not remainder:
            return ("external", dotted)  # a bare module reference
        summary = self.modules[module]
        head, rest = remainder[0], remainder[1:]
        target = self._lookup_in_module(summary, head)
        if target is None:
            return ("unknown", dotted)
        kind, resolved = self.resolve(target, seen) if isinstance(
            target, str
        ) else target
        if rest:
            if kind == "class":
                cls = self.classes.get(resolved)
                if cls is not None and len(rest) == 1:
                    method = self._find_method(cls, rest[0])
                    if method is not None:
                        return ("function", method)
                return ("unknown", dotted)
            if kind == "external":
                return ("external", resolved + "." + ".".join(rest))
            return ("unknown", dotted)
        return (kind, resolved)

    def _split_module(
        self, dotted: str
    ) -> Tuple[Optional[str], Tuple[str, ...]]:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate, tuple(parts[cut:])
        return None, tuple(parts)

    def _lookup_in_module(
        self, summary: ModuleSummary, name: str
    ) -> Optional[str]:
        qname = f"{summary.module}.{name}"
        if qname in summary.functions:
            return qname
        if qname in summary.classes:
            return qname
        if name in summary.assigns:
            ref = summary.assigns[name]
            if ref[0] == "lambda":
                return ref[1]  # the synthesized lambda function node
            return self._absolutize(summary, ref)
        if name in summary.imports:
            return summary.imports[name]
        return None

    def _absolutize(
        self, summary: ModuleSummary, ref: Tuple[str, ...]
    ) -> str:
        head = ref[0]
        resolved_head = summary.imports.get(head)
        if resolved_head is not None:
            return ".".join([resolved_head, *ref[1:]])
        local = f"{summary.module}.{head}"
        if local in summary.functions or local in summary.classes:
            return ".".join([local, *ref[1:]])
        return ".".join(ref)

    def _find_method(self, cls: ClassInfo, name: str) -> Optional[str]:
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qname in seen:
                continue
            seen.add(current.qname)
            if name in current.methods:
                return current.methods[name]
            summary = self.modules.get(current.module)
            for base_ref in current.bases:
                base_dotted = (
                    self._absolutize(summary, base_ref)
                    if summary is not None
                    else ".".join(base_ref)
                )
                kind, target = self.resolve(base_dotted)
                if kind == "class":
                    base_cls = self.classes.get(target)
                    if base_cls is not None:
                        stack.append(base_cls)
        return None

    # -- linking one function -----------------------------------------

    def link(self) -> CallGraph:
        for node in self.functions.values():
            self._link_function(node)
        return CallGraph(
            modules=self.modules,
            functions=self.functions,
            classes=self.classes,
        )

    def _class_of(self, node: FunctionNode) -> Optional[ClassInfo]:
        if node.info.kind != "method":
            return None
        class_qname = node.qname.rsplit(".", 1)[0]
        return self.classes.get(class_qname)

    def _link_function(self, node: FunctionNode) -> None:
        summary = self.modules.get(node.info.module)
        if summary is None:  # pragma: no cover - modules always present
            return
        cls = self._class_of(node)
        for decorator in node.info.decorators:
            self._link_decorator(node, summary, decorator)
        for call in node.info.calls:
            self._link_call(node, summary, cls, call)

    def _link_decorator(
        self, node: FunctionNode, summary: ModuleSummary, ref: CallRef
    ) -> None:
        dotted = self._absolutize(summary, ref.parts)
        kind, target = self.resolve(dotted)
        if target.rsplit(".", 1)[-1] == "cached_solve":
            fn_id = ""
            if ref.args and ref.args[0].kind == "str":
                fn_id = ref.args[0].text
            node.cached_fn_id = fn_id or node.info.name
        if kind == "function":
            # A resolved decorator wraps the function at import time;
            # record the edge so decorator effects are not lost.
            node.callees.append((target, ref.line))

    def _link_call(
        self,
        node: FunctionNode,
        summary: ModuleSummary,
        cls: Optional[ClassInfo],
        call: CallRef,
    ) -> None:
        if call.kind == "param":
            return  # injected dependency: explicitly sanctioned
        if call.kind == "opaque":
            node.unresolved.append(call)
            return
        if call.kind == "name":
            self._link_name_call(node, summary, call)
            return
        if call.kind == "dotted":
            self._link_dotted_call(node, summary, call)
            return
        if call.kind == "self":
            if cls is None:
                node.unresolved.append(call)
                return
            method = self._find_method(cls, call.parts[0])
            if method is not None:
                node.callees.append((method, call.line))
                return
            if call.parts[0] in cls.attr_ctors:
                self._link_attr_method(node, summary, cls, call, is_call=True)
                return
            # Injected attribute (self._rng, self._clock): treated like
            # a parameter — the dependency was threaded in explicitly.
            return
        if call.kind == "self-attr":
            if cls is None:
                node.unresolved.append(call)
                return
            self._link_attr_method(node, summary, cls, call, is_call=False)
            return
        if call.kind == "var":
            self._link_var_call(node, summary, call)
            return
        node.unresolved.append(call)

    def _link_name_call(
        self, node: FunctionNode, summary: ModuleSummary, call: CallRef
    ) -> None:
        name = call.parts[0]
        nested = self._enclosing_nested(node, name)
        if nested is not None:
            node.callees.append((nested, call.line))
            return
        target = self._lookup_in_module(summary, name)
        if target is not None:
            kind, resolved = self.resolve(target)
            self._record(node, call, kind, resolved)
            return
        if name in _BUILTIN_NAMES:
            return
        node.unresolved.append(call)

    def _enclosing_nested(
        self, node: FunctionNode, name: str
    ) -> Optional[str]:
        """Nested function *name* visible from *node*'s scope chain.

        Mirrors Python's lexical scoping: the function's own local
        scope (its directly nested defs) and enclosing *function*
        scopes are searched, class scopes are skipped (a method body
        cannot see sibling methods by bare name), and the walk stops
        before module scope (module-level defs are not "nested").
        """
        scope = node.qname
        while scope != node.info.module:
            if scope not in self.classes:
                candidate = f"{scope}.{name}"
                if candidate in self.functions:
                    return candidate
            if "." not in scope:
                return None
            scope = scope.rsplit(".", 1)[0]
        return None

    def _link_dotted_call(
        self, node: FunctionNode, summary: ModuleSummary, call: CallRef
    ) -> None:
        dotted = ".".join(call.parts)
        kind, resolved = self.resolve(dotted)
        self._record(node, call, kind, resolved)
        self._detect_partial_submission(node, summary, call, resolved)

    def _record(
        self, node: FunctionNode, call: CallRef, kind: str, target: str
    ) -> None:
        if kind == "function":
            node.callees.append((target, call.line))
            self._detect_direct_submission(node, call, target)
        elif kind == "class":
            cls = self.classes.get(target)
            init = self._find_method(cls, "__init__") if cls else None
            if init is not None:
                node.callees.append((init, call.line))
        elif kind == "external":
            node.external_calls.append((target, call.line))
        else:
            node.unresolved.append(call)

    # -- pool submissions ---------------------------------------------

    def _pool_class(self, dotted: Tuple[str, ...]) -> bool:
        return bool(dotted) and dotted[-1] in _POOL_CLASSES

    def _resolve_receiver_class(
        self, summary: ModuleSummary, ctor: Tuple[str, ...]
    ) -> Optional[str]:
        """Class name (last component) a constructor ref points at."""
        dotted = self._absolutize(summary, ctor)
        kind, target = self.resolve(dotted)
        if kind in ("class", "external", "unknown"):
            return target.rsplit(".", 1)[-1]
        return None

    def _link_var_call(
        self, node: FunctionNode, summary: ModuleSummary, call: CallRef
    ) -> None:
        recv_name, attr = call.parts
        ctor = call.recv_ctor or ()
        dotted = self._absolutize(summary, ctor) if ctor else ""
        kind, target = self.resolve(dotted) if dotted else ("unknown", "")
        if kind == "class":
            cls = self.classes.get(target)
            method = self._find_method(cls, attr) if cls else None
            if method is not None:
                node.callees.append((method, call.line))
            else:
                node.unresolved.append(call)
            if cls is not None and cls.name in _POOL_CLASSES:
                self._maybe_submission(node, call, attr)
            return
        if kind == "external":
            node.external_calls.append(
                (f"{target}.{attr}", call.line)
            )
            if target.rsplit(".", 1)[-1] in _POOL_CLASSES:
                self._maybe_submission(node, call, attr)
            return
        node.unresolved.append(call)

    def _link_attr_method(
        self,
        node: FunctionNode,
        summary: ModuleSummary,
        cls: ClassInfo,
        call: CallRef,
        *,
        is_call: bool,
    ) -> None:
        attr = call.parts[0]
        method_name = call.parts[0] if is_call else call.parts[1]
        if not is_call:
            attr = call.parts[0]
        ctor = cls.attr_ctors.get(attr)
        if ctor is None:
            # Injected attribute of unknown type: parameter-like.
            return
        class_name = self._resolve_receiver_class(summary, ctor)
        dotted = self._absolutize(summary, ctor)
        kind, target = self.resolve(dotted)
        if kind == "class":
            target_cls = self.classes.get(target)
            method = (
                self._find_method(target_cls, method_name)
                if target_cls
                else None
            )
            if method is not None:
                node.callees.append((method, call.line))
        if class_name in _POOL_CLASSES:
            self._maybe_submission(node, call, method_name)

    def _maybe_submission(
        self, node: FunctionNode, call: CallRef, method_name: str
    ) -> None:
        if method_name not in _POOL_METHODS or not call.args:
            return
        self._add_submission(
            node, call.line, f"pool.{method_name}", call.args[0]
        )

    def _detect_direct_submission(
        self, node: FunctionNode, call: CallRef, target: str
    ) -> None:
        """Calls straight to SupervisedPool.run/map_tasks by qname."""
        parts = target.rsplit(".", 2)
        if (
            len(parts) == 3
            and parts[1] in _POOL_CLASSES
            and parts[2] in _POOL_METHODS
            and call.args
        ):
            self._add_submission(
                node, call.line, f"pool.{parts[2]}", call.args[0]
            )

    def _detect_partial_submission(
        self,
        node: FunctionNode,
        summary: ModuleSummary,
        call: CallRef,
        resolved: str,
    ) -> None:
        """``functools.partial(self._pool.run, fn, …)`` submissions."""
        if resolved.rsplit(".", 1)[-1] != "partial" or len(call.args) < 2:
            return
        bound = call.args[0]
        if bound.kind != "dotted":
            return
        bound_parts = bound.text.split(".")
        if len(bound_parts) < 2 or bound_parts[-1] not in _POOL_METHODS:
            return
        receiver_is_pool = False
        if bound_parts[0] == "self" and len(bound_parts) == 3:
            cls = self._class_of(node)
            ctor = cls.attr_ctors.get(bound_parts[1]) if cls else None
            if ctor is not None:
                class_name = self._resolve_receiver_class(summary, ctor)
                receiver_is_pool = class_name in _POOL_CLASSES
        else:
            dotted = self._absolutize(summary, tuple(bound_parts[:-1]))
            kind, target = self.resolve(dotted)
            receiver_is_pool = (
                target.rsplit(".", 1)[-1] in _POOL_CLASSES
            )
        if receiver_is_pool:
            self._add_submission(
                node,
                call.line,
                f"pool.{bound_parts[-1]} (via functools.partial)",
                call.args[1],
            )

    def _add_submission(
        self, node: FunctionNode, line: int, api: str, ref: ArgRef
    ) -> None:
        verdict, detail = self._classify_submitted(node, ref)
        node.submissions.append(
            Submission(
                line=line,
                api=api,
                callable_ref=ref,
                verdict=verdict,
                detail=detail,
            )
        )

    def _classify_submitted(
        self, node: FunctionNode, ref: ArgRef
    ) -> Tuple[str, str]:
        """Can this argument expression be pickled by importable name?"""
        if ref.kind == "lambda":
            return ("violation", "a lambda cannot be pickled")
        if ref.kind in ("name", "dotted"):
            return self._classify_named(node, ref)
        return (
            "violation",
            "cannot statically prove the submitted callable is a "
            "picklable module-level function",
        )

    def _classify_named(
        self, node: FunctionNode, ref: ArgRef
    ) -> Tuple[str, str]:
        summary = self.modules.get(node.info.module)
        name = ref.text
        if ref.kind == "name":
            if name in node.info.params:
                # Forwarding wrapper: checked at its own call sites.
                return ("param", f"parameter {name!r} forwarded")
            if self._enclosing_nested(node, name) is not None:
                return (
                    "violation",
                    f"{name!r} is a nested function (closure); "
                    "worker processes cannot unpickle it",
                )
            target = (
                self._lookup_in_module(summary, name) if summary else None
            )
            if target is None:
                return (
                    "violation",
                    f"{name!r} is not a module-level binding; only "
                    "importable module-level functions survive pickling",
                )
            kind, resolved = self.resolve(target)
        else:
            dotted = (
                self._absolutize(summary, tuple(name.split(".")))
                if summary
                else name
            )
            kind, resolved = self.resolve(dotted)
        if kind == "function":
            fn = self.functions[resolved]
            if fn.info.kind == "lambda":
                return (
                    "violation",
                    f"{name!r} resolves to a lambda ({resolved}); "
                    "lambdas pickle by qualname '<lambda>' and fail",
                )
            if fn.info.kind == "nested":
                return (
                    "violation",
                    f"{name!r} resolves to the nested function "
                    f"{resolved}, which workers cannot unpickle",
                )
            return ("ok", resolved)
        if kind in ("class", "external"):
            return ("ok", resolved)
        return (
            "violation",
            f"cannot resolve {name!r} to a module-level callable",
        )


def build_call_graph(modules: Dict[str, ModuleSummary]) -> CallGraph:
    """Link per-module summaries into one whole-program call graph."""
    return _Linker(modules).link()
