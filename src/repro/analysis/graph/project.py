"""Project-level driver: discover, extract (with caching), link, close.

:func:`analyze_project` is the one entry point the lint runner and the
``repro graph`` CLI share. It extracts a :class:`ModuleSummary` per
source file — consulting the active result store first, keyed by the
module's source hash and the analyzer's own fingerprint, so a warm run
only re-extracts files that actually changed — then links the summaries
into a :class:`CallGraph` and computes the transitive effect closure.

The cache discipline mirrors ``@cached_solve``: strictly opt-in (no
active store → plain computation), best-effort writes, and hit/miss
counters recorded under the ``graph_module`` function id so tests and
CI can assert incremental reuse with the existing
:func:`repro.store.store_counters` machinery.
"""

from __future__ import annotations

import ast
import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ...store.keys import UnsupportedParameterError, canonical_key
from ...store.memo import active_store, record_cache_event
from ...store.result_store import StoreError
from ...store.serialization import SerializationError
from . import symbols as _symbols_module
from .callgraph import CallGraph, build_call_graph
from .effects import transitive_effects
from .lattice import EffectSet
from .symbols import SUMMARY_SCHEMA_VERSION, ModuleSummary, extract_module

__all__ = [
    "ModuleInput",
    "ProjectAnalysis",
    "analyze_project",
    "analyze_source_root",
    "iter_module_inputs",
]

#: Cache-event id for per-module summary lookups (so graph analysis
#: shows up in ``store_counters()`` next to solver hits).
GRAPH_CACHE_FN_ID = "graph_module"

_FINGERPRINT_CACHE: List[str] = []


def _analyzer_fingerprint() -> str:
    """Hash of the extractor's own source: salts every cache key so a
    change to the effect tables or the summary schema orphans every
    cached summary instead of silently mis-reading it."""
    if not _FINGERPRINT_CACHE:
        data = Path(_symbols_module.__file__).read_bytes()
        digest = hashlib.sha256(data).hexdigest()[:16]
        _FINGERPRINT_CACHE.append(f"{digest}:s{SUMMARY_SCHEMA_VERSION}")
    return _FINGERPRINT_CACHE[0]


@dataclass(frozen=True)
class ModuleInput:
    """One module to analyze: the minimal self-contained input."""

    display_path: str
    module: str
    source: str
    tree: Optional[ast.Module] = None


@dataclass
class ProjectAnalysis:
    """Everything the GRAPH rules and the CLI consume."""

    graph: CallGraph
    closure: Dict[str, EffectSet]
    cache_hits: int = 0
    cache_misses: int = 0
    #: Modules whose summaries were re-extracted this run (cache
    #: misses, in analysis order) — what "incremental" means.
    reanalyzed: Tuple[str, ...] = field(default_factory=tuple)


def iter_module_inputs(src_root: Path) -> List[ModuleInput]:
    """Discover the package under *src_root* (a ``src/`` directory)."""
    inputs: List[ModuleInput] = []
    for path in sorted(src_root.rglob("*.py")):
        rel = path.relative_to(src_root)
        parts = list(rel.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        module = ".".join(parts)
        inputs.append(
            ModuleInput(
                display_path=str(rel),
                module=module,
                source=path.read_text(encoding="utf-8"),
            )
        )
    return inputs


def _summary_for(item: ModuleInput) -> Tuple[ModuleSummary, bool]:
    """Extract one summary, consulting the active store. Returns
    ``(summary, was_cache_hit)``."""
    store = active_store()
    key: Optional[str] = None
    if store is not None:
        try:
            key = canonical_key(
                GRAPH_CACHE_FN_ID,
                {
                    "module": item.module,
                    "source_sha256": hashlib.sha256(
                        item.source.encode("utf-8")
                    ).hexdigest(),
                },
                code_fingerprint=_analyzer_fingerprint(),
            )
        except UnsupportedParameterError:  # pragma: no cover - keys are str
            key = None
    if store is not None and key is not None:
        found = store.fetch(key)
        if found is not None:
            value, _entry = found
            cached: Optional[ModuleSummary]
            try:
                cached = ModuleSummary.from_dict(value)
            except (KeyError, TypeError, ValueError):
                cached = None  # corrupted/foreign entry: recompute
            if cached is not None:
                record_cache_event(GRAPH_CACHE_FN_ID, "hit")
                return cached, True
    # Extraction cost is provenance for the store manifest only.
    t0 = time.perf_counter()  # repro: noqa[DET001]
    summary = extract_module(
        item.module, item.display_path, item.source, tree=item.tree
    )
    seconds = time.perf_counter() - t0  # repro: noqa[DET001]
    if store is not None and key is not None:
        record_cache_event(GRAPH_CACHE_FN_ID, "miss")
        try:
            store.put(
                key,
                summary.to_dict(),
                fn_id=GRAPH_CACHE_FN_ID,
                code_fingerprint=_analyzer_fingerprint(),
                compute_seconds=seconds,
            )
        except (OSError, SerializationError, StoreError, UnsupportedParameterError):
            pass  # best-effort write, like @cached_solve
    return summary, False


def analyze_project(
    inputs: Iterable[ModuleInput],
) -> ProjectAnalysis:
    """Extract every module (cache-aware), link, and close effects."""
    modules: Dict[str, ModuleSummary] = {}
    hits = 0
    misses = 0
    reanalyzed: List[str] = []
    for item in inputs:
        summary, was_hit = _summary_for(item)
        modules[summary.module] = summary
        if was_hit:
            hits += 1
        else:
            misses += 1
            reanalyzed.append(summary.module)
    graph = build_call_graph(modules)
    closure = transitive_effects(graph)
    return ProjectAnalysis(
        graph=graph,
        closure=closure,
        cache_hits=hits,
        cache_misses=misses,
        reanalyzed=tuple(reanalyzed),
    )


def analyze_source_root(src_root: Path) -> ProjectAnalysis:
    """Convenience: discover under ``src_root`` then analyze."""
    return analyze_project(iter_module_inputs(src_root))
