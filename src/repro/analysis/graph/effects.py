"""Transitive effect closure and call-chain witnesses.

The closure is a monotone fixpoint over the powerset lattice in
:mod:`.lattice`: a function's transitive effect set is the union of its
own unwaived direct origins, :attr:`Effect.UNKNOWN` for every call edge
the linker could not resolve, and the transitive sets of its callees.
Because join is set union and the lattice is finite, iteration
terminates even on cyclic graphs (mutual recursion) — each round can
only grow a set, and each set is bounded by :data:`TOP`.

Witnesses make findings actionable: :func:`witness_chain` runs a BFS
from a root function to the *nearest* function carrying an unwaived
direct origin of the offending effect, and returns the call chain with
source lines — the output of ``repro graph why``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionNode
from .lattice import EMPTY_EFFECTS, Effect, EffectSet
from .symbols import EffectOrigin

__all__ = [
    "WitnessStep",
    "direct_effects",
    "format_witness",
    "transitive_effects",
    "witness_chain",
]


@dataclass(frozen=True)
class WitnessStep:
    """One hop in a call-chain witness."""

    qname: str
    #: Source line of the call into the *next* step (or of the effect
    #: origin itself for the terminal step).
    line: int
    #: Human-readable note: the callee for intermediate hops, the
    #: effect origin detail for the terminal hop.
    detail: str


def direct_effects(node: FunctionNode) -> EffectSet:
    """Unwaived direct effects of one function, plus linker UNKNOWNs."""
    effects: Set[Effect] = {
        origin.effect for origin in node.info.effects if not origin.waived
    }
    if node.unresolved:
        effects.add(Effect.UNKNOWN)
    return frozenset(effects)


def transitive_effects(graph: CallGraph) -> Dict[str, EffectSet]:
    """Fixpoint closure of effect sets over the call graph.

    Propagation order is worklist-based: when a function's set grows,
    its callers are re-queued. Convergence is guaranteed because sets
    only grow and the lattice is finite.
    """
    result: Dict[str, Set[Effect]] = {}
    callers: Dict[str, Set[str]] = {q: set() for q in graph.functions}
    for node in graph.functions.values():
        result[node.qname] = set(direct_effects(node))
        for callee, _ in node.callees:
            if callee in callers:
                callers[callee].add(node.qname)
    work: Deque[str] = deque(graph.functions)
    queued: Set[str] = set(work)
    while work:
        qname = work.popleft()
        queued.discard(qname)
        node = graph.functions[qname]
        combined = set(result[qname])
        for callee, _ in node.callees:
            combined |= result.get(callee, set())
        if combined != result[qname]:
            result[qname] = combined
            for caller in callers[qname]:
                if caller not in queued:
                    queued.add(caller)
                    work.append(caller)
    return {qname: frozenset(effects) for qname, effects in result.items()}


def _first_origin(
    node: FunctionNode, effect: Effect
) -> Optional[EffectOrigin]:
    for origin in node.info.effects:
        if origin.effect is effect and not origin.waived:
            return origin
    if effect is Effect.UNKNOWN and node.unresolved:
        call = node.unresolved[0]
        return EffectOrigin(
            Effect.UNKNOWN,
            call.line,
            f"unresolved call {'.'.join(call.parts)}(...)",
        )
    return None


def witness_chain(
    graph: CallGraph,
    root: str,
    effect: Effect,
    closure: Optional[Dict[str, EffectSet]] = None,
) -> Optional[List[WitnessStep]]:
    """Shortest call chain from *root* to an unwaived *effect* origin.

    Returns ``None`` when *root* does not transitively reach the
    effect (or is not in the graph). The *closure* mapping, when
    supplied, prunes the BFS to functions that can actually reach the
    effect; without it the search still terminates but may explore
    more of the graph.
    """
    if root not in graph.functions:
        return None
    if closure is not None and effect not in closure.get(root, EMPTY_EFFECTS):
        return None
    # BFS over call edges; parent pointers rebuild the chain.
    parents: Dict[str, Tuple[str, int]] = {}
    queue: Deque[str] = deque([root])
    seen: Set[str] = {root}
    terminal: Optional[str] = None
    while queue:
        qname = queue.popleft()
        node = graph.functions[qname]
        if _first_origin(node, effect) is not None:
            terminal = qname
            break
        for callee, line in node.callees:
            if callee in seen or callee not in graph.functions:
                continue
            if closure is not None and effect not in closure.get(
                callee, EMPTY_EFFECTS
            ):
                continue
            seen.add(callee)
            parents[callee] = (qname, line)
            queue.append(callee)
    if terminal is None:
        return None
    # Rebuild root → terminal.
    chain: List[str] = [terminal]
    while chain[-1] != root:
        chain.append(parents[chain[-1]][0])
    chain.reverse()
    steps: List[WitnessStep] = []
    for caller, callee in zip(chain, chain[1:]):
        _, line = parents[callee]
        steps.append(
            WitnessStep(qname=caller, line=line, detail=f"calls {callee}")
        )
    origin = _first_origin(graph.functions[terminal], effect)
    assert origin is not None  # terminal was selected for having one
    steps.append(
        WitnessStep(qname=terminal, line=origin.line, detail=origin.detail)
    )
    return steps


def format_witness(steps: List[WitnessStep], graph: CallGraph) -> str:
    """Render a witness chain as an indented, clickable trace."""
    lines: List[str] = []
    for depth, step in enumerate(steps):
        node = graph.functions.get(step.qname)
        path = graph.modules[node.info.module].path if node else "?"
        indent = "  " * depth
        lines.append(f"{indent}{step.qname} ({path}:{step.line})")
        lines.append(f"{indent}  └─ {step.detail}")
    return "\n".join(lines)
