"""The effect lattice: what a function may do besides compute.

Effect sets form a powerset lattice over :class:`Effect` — the join is
set union, bottom is the empty set (a pure function), and
:data:`TOP` is every effect at once. The transitive-closure pass in
:mod:`.effects` is a monotone fixpoint over this lattice, so cyclic
call graphs (mutual recursion) converge in finitely many rounds.

:attr:`Effect.UNKNOWN` is the conservative element: a call whose
callee the graph cannot resolve (an opaque method on an untyped local,
a dynamically chosen function) *may* do anything. The GRAPH rules do
not fail on UNKNOWN alone — that would drown real findings in noise
from every ``obj.helper()`` — but the element is tracked, propagated,
and surfaced by ``repro graph effects`` so reviewers can see exactly
where the proof has holes.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "Effect",
    "EffectSet",
    "EMPTY_EFFECTS",
    "TOP",
    "WAIVER_RULES",
    "effect_from_tag",
]


class Effect(str, enum.Enum):
    """One observable side effect class (lattice atom)."""

    #: Constructs a random generator (``default_rng``/``make_rng``/
    #: ``Generator``) or touches legacy global RNG state. *Using* a
    #: generator received as a parameter is not an effect — explicit
    #: RNG threading is the sanctioned pattern.
    RNG = "rng"
    #: Reads the wall clock (``time.time``/``monotonic``/
    #: ``datetime.now`` …).
    CLOCK = "clock"
    #: Touches the filesystem (``open``, ``Path.read_text``,
    #: ``os.remove``, ``shutil`` …).
    FILESYSTEM = "filesystem"
    #: Reads or writes process environment variables.
    ENV = "env"
    #: Network access (``socket``/``urllib``/``http`` …).
    NETWORK = "network"
    #: Mutates module-global or enclosing-scope state (``global``/
    #: ``nonlocal``, assignment or mutating method calls on
    #: module-level names).
    GLOBAL_MUTATION = "global_mutation"
    #: Writes to stdout (``print``).
    STDOUT = "stdout"
    #: Called something the call graph could not resolve; the function
    #: *may* have any effect.
    UNKNOWN = "unknown"


EffectSet = FrozenSet[Effect]

EMPTY_EFFECTS: EffectSet = frozenset()

#: The lattice top: every effect at once.
TOP: EffectSet = frozenset(Effect)

#: File-local rule ids whose ``# repro: noqa[...]`` directive on an
#: effect's origin line *waives* that origin from graph propagation.
#: A site the file-local linter has vetted (e.g. the runner's budget
#: clock behind ``noqa[DET001]``) is an audited boundary, not a leak —
#: without this, every experiment would transitively "read the clock"
#: through the wall-clock budget and GRAPH003 would be pure noise.
#: The GRAPH ids themselves are accepted everywhere so an origin can
#: be waived for the graph pass without silencing the file-local rule.
WAIVER_RULES: Dict[Effect, Tuple[str, ...]] = {
    Effect.RNG: ("RNG001", "RNG002", "RNG004", "GRAPH001"),
    Effect.CLOCK: ("DET001", "GRAPH001", "GRAPH003"),
    Effect.FILESYSTEM: ("GRAPH001",),
    Effect.ENV: ("GRAPH001",),
    Effect.NETWORK: ("GRAPH001",),
    Effect.GLOBAL_MUTATION: ("GRAPH001",),
    Effect.STDOUT: ("GRAPH001",),
    Effect.UNKNOWN: (),
}

_BY_TAG = {effect.value: effect for effect in Effect}


def effect_from_tag(tag: str) -> Effect:
    """Inverse of ``Effect.value`` (used when decoding cached summaries).

    Raises
    ------
    KeyError
        If *tag* names no effect — a cache written by an incompatible
        analyzer version (the schema fingerprint should prevent this).
    """
    return _BY_TAG[tag]
