"""Whole-program call-graph and effect analysis.

The pipeline has three module-shaped stages:

1. :mod:`.symbols` — per-module extraction (cacheable): symbol tables,
   raw call references, direct effect origins;
2. :mod:`.callgraph` — the cross-module link step: alias resolution,
   method dispatch, ``@cached_solve`` targets, pool submission sites;
3. :mod:`.effects` — transitive effect closure over the
   :mod:`.lattice` and BFS call-chain witnesses.

:func:`analyze_project` in :mod:`.project` drives all three with
result-store-backed incremental caching. The GRAPH lint rules
(:mod:`repro.analysis.rules.graph`) and the ``repro graph`` CLI both
consume its :class:`ProjectAnalysis`.
"""

from .callgraph import CallGraph, FunctionNode, Submission, build_call_graph
from .effects import (
    WitnessStep,
    direct_effects,
    format_witness,
    transitive_effects,
    witness_chain,
)
# EffectSet (a typing alias, no docstring) stays importable from
# .lattice but is not re-exported here: the public-API test requires
# every __all__ callable to carry a docstring.
from .lattice import EMPTY_EFFECTS, TOP, Effect
from .project import (
    ModuleInput,
    ProjectAnalysis,
    analyze_project,
    analyze_source_root,
    iter_module_inputs,
)
from .symbols import (
    ArgRef,
    CallRef,
    ClassInfo,
    EffectOrigin,
    FunctionInfo,
    ModuleSummary,
    extract_module,
)

__all__ = [
    "ArgRef",
    "CallGraph",
    "CallRef",
    "ClassInfo",
    "EMPTY_EFFECTS",
    "Effect",
    "EffectOrigin",
    "FunctionInfo",
    "FunctionNode",
    "ModuleInput",
    "ModuleSummary",
    "ProjectAnalysis",
    "Submission",
    "TOP",
    "WitnessStep",
    "analyze_project",
    "analyze_source_root",
    "build_call_graph",
    "direct_effects",
    "extract_module",
    "format_witness",
    "iter_module_inputs",
    "transitive_effects",
    "witness_chain",
]
