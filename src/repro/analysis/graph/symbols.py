"""Per-module symbol extraction: functions, classes, imports, effects.

One :class:`ModuleSummary` captures everything the whole-program pass
needs to know about a module *without looking at any other module*:
its import aliases, its functions (with their direct effect origins
and raw, unresolved call references), its classes (method tables,
``self.x = Ctor()`` attribute types), and its module-level assignment
aliases. Keeping extraction strictly module-local is what makes the
summaries cacheable in the result store — a module's summary is a pure
function of its source text, so a warm ``repro lint --graph`` run
reuses every summary whose file did not change and only the
cross-module *link* step (:mod:`.callgraph`) runs from scratch.

Call references are recorded in a small raw vocabulary that the linker
resolves later:

==========  ==========================================================
kind        meaning
==========  ==========================================================
``name``    bare-name call ``f(...)``
``dotted``  attribute chain rooted at a module alias ``np.einsum(...)``
``self``    method call on ``self``/``cls``
``param``   method call on a function parameter (injected dependency)
``var``     method call on a local whose constructor is known
``opaque``  method call on a receiver the extractor cannot type
==========  ==========================================================

Direct effects (:class:`repro.analysis.graph.lattice.Effect`) are
pattern-matched here because the tables only need the module's own
import aliases. An origin whose line carries a waiving ``# repro:
noqa[...]`` directive (see ``WAIVER_RULES``) is marked ``waived`` and
excluded from transitive propagation — the suppression is an audited
boundary, and the source hash keying the cache covers comment changes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..suppressions import SuppressionIndex
from .lattice import WAIVER_RULES, Effect, effect_from_tag

__all__ = [
    "ArgRef",
    "CallRef",
    "EffectOrigin",
    "FunctionInfo",
    "ClassInfo",
    "ModuleSummary",
    "extract_module",
]

#: Bump when the summary schema or the effect tables change: part of
#: every cache key, so stale summaries are orphaned, never mis-read.
SUMMARY_SCHEMA_VERSION = 1

# ----------------------------------------------------------------------
# effect pattern tables

_TIME_FUNCS = frozenset(
    {
        "time",
        "monotonic",
        "perf_counter",
        "process_time",
        "thread_time",
        "monotonic_ns",
        "perf_counter_ns",
        "process_time_ns",
        "time_ns",
    }
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_RNG_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)
_OS_FS_FUNCS = frozenset(
    {
        "remove",
        "rename",
        "replace",
        "unlink",
        "makedirs",
        "mkdir",
        "rmdir",
        "removedirs",
        "listdir",
        "scandir",
        "stat",
        "chmod",
        "symlink",
        "link",
        "open",
        "fsync",
    }
)
_OS_ENV_FUNCS = frozenset({"getenv", "putenv", "unsetenv", "environb"})
_FS_METHOD_NAMES = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "unlink",
        "touch",
        "mkdir",
        "rmdir",
        "rglob",
        "glob",
        "iterdir",
        "hardlink_to",
        "symlink_to",
    }
)
_NETWORK_MODULES = frozenset(
    {"socket", "urllib", "http", "requests", "ftplib", "smtplib", "asyncio"}
)
# asyncio is deliberately NOT network; drop it from the frozen set.
_NETWORK_MODULES = frozenset(_NETWORK_MODULES - {"asyncio"})
_FS_MODULES = frozenset({"shutil", "tempfile", "pathlib"})
#: Mutating container methods: calling one on a *module-level* name is
#: a global mutation.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "appendleft",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
    }
)
#: Method names assumed effect-free on any receiver: the numpy / stdlib
#: container vocabulary. Everything else on an untyped receiver is the
#: conservative UNKNOWN.
_BENIGN_METHODS = frozenset(
    {
        # containers / strings
        "get", "items", "keys", "values", "copy", "index", "count",
        "join", "split", "rsplit", "strip", "lstrip", "rstrip", "format",
        "startswith", "endswith", "encode", "decode", "lower", "upper",
        "replace", "sort", "sorted", "reverse", "format_map", "most_common",
        # numpy ndarray / scalar
        "sum", "mean", "std", "var", "min", "max", "argmin", "argmax",
        "astype", "reshape", "ravel", "flatten", "tolist", "item",
        "transpose", "dot", "fill", "cumsum", "cumprod", "clip", "round",
        "nonzero", "any", "all", "squeeze", "view", "tobytes", "byteswap",
        "searchsorted", "repeat", "take", "put", "conj", "prod", "trace",
        # misc protocol-ish
        "union", "intersection", "difference", "issubset", "issuperset",
        "isdisjoint", "total_seconds", "as_integer_ratio", "bit_length",
    }
)


@dataclass(frozen=True)
class ArgRef:
    """Compact description of one call argument (for submit analysis)."""

    kind: str  # "lambda" | "name" | "dotted" | "methodref" | "str" | "other"
    text: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "text": self.text}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArgRef":
        return cls(kind=data["kind"], text=data["text"])


@dataclass(frozen=True)
class CallRef:
    """One raw (unresolved) call site inside a function body."""

    kind: str
    parts: Tuple[str, ...]
    line: int
    recv_ctor: Optional[Tuple[str, ...]] = None
    args: Tuple[ArgRef, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "parts": list(self.parts),
            "line": self.line,
            "recv_ctor": list(self.recv_ctor) if self.recv_ctor else None,
            "args": [a.to_dict() for a in self.args],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallRef":
        return cls(
            kind=data["kind"],
            parts=tuple(data["parts"]),
            line=data["line"],
            recv_ctor=tuple(data["recv_ctor"]) if data["recv_ctor"] else None,
            args=tuple(ArgRef.from_dict(a) for a in data["args"]),
        )


@dataclass(frozen=True)
class EffectOrigin:
    """One direct effect site: what, where, and whether it is waived."""

    effect: Effect
    line: int
    detail: str
    waived: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "effect": self.effect.value,
            "line": self.line,
            "detail": self.detail,
            "waived": self.waived,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EffectOrigin":
        return cls(
            effect=effect_from_tag(data["effect"]),
            line=data["line"],
            detail=data["detail"],
            waived=data["waived"],
        )


@dataclass
class FunctionInfo:
    """Everything extraction learns about one function or method."""

    qname: str
    name: str
    module: str
    line: int
    kind: str  # "function" | "method" | "nested" | "lambda"
    params: Tuple[str, ...] = ()
    decorators: Tuple[CallRef, ...] = ()
    effects: Tuple[EffectOrigin, ...] = ()
    calls: Tuple[CallRef, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qname": self.qname,
            "name": self.name,
            "module": self.module,
            "line": self.line,
            "kind": self.kind,
            "params": list(self.params),
            "decorators": [d.to_dict() for d in self.decorators],
            "effects": [e.to_dict() for e in self.effects],
            "calls": [c.to_dict() for c in self.calls],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qname=data["qname"],
            name=data["name"],
            module=data["module"],
            line=data["line"],
            kind=data["kind"],
            params=tuple(data["params"]),
            decorators=tuple(CallRef.from_dict(d) for d in data["decorators"]),
            effects=tuple(EffectOrigin.from_dict(e) for e in data["effects"]),
            calls=tuple(CallRef.from_dict(c) for c in data["calls"]),
        )


@dataclass
class ClassInfo:
    """A class definition: method table, bases, known attribute types."""

    qname: str
    name: str
    module: str
    line: int
    bases: Tuple[Tuple[str, ...], ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)
    attr_ctors: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    is_dataclass: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qname": self.qname,
            "name": self.name,
            "module": self.module,
            "line": self.line,
            "bases": [list(b) for b in self.bases],
            "methods": dict(self.methods),
            "attr_ctors": {k: list(v) for k, v in self.attr_ctors.items()},
            "is_dataclass": self.is_dataclass,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassInfo":
        return cls(
            qname=data["qname"],
            name=data["name"],
            module=data["module"],
            line=data["line"],
            bases=tuple(tuple(b) for b in data["bases"]),
            methods=dict(data["methods"]),
            attr_ctors={k: tuple(v) for k, v in data["attr_ctors"].items()},
            is_dataclass=data["is_dataclass"],
        )


@dataclass
class ModuleSummary:
    """The module-local half of the whole-program analysis."""

    module: str
    path: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    assigns: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SUMMARY_SCHEMA_VERSION,
            "module": self.module,
            "path": self.path,
            "imports": dict(self.imports),
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
            "assigns": {k: list(v) for k, v in self.assigns.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            imports=dict(data["imports"]),
            functions={
                k: FunctionInfo.from_dict(f)
                for k, f in data["functions"].items()
            },
            classes={
                k: ClassInfo.from_dict(c) for k, c in data["classes"].items()
            },
            assigns={k: tuple(v) for k, v in data["assigns"].items()},
        )


# ----------------------------------------------------------------------
# extraction


def _package_of(module: str, is_init: bool) -> str:
    if is_init:
        return module
    return module.rsplit(".", 1)[0] if "." in module else ""


def _resolve_relative(module: str, is_init: bool, node: ast.ImportFrom) -> str:
    """Absolute module named by a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    package = _package_of(module, is_init)
    parts = package.split(".") if package else []
    # level 1 = current package, each extra level strips one component.
    strip = node.level - 1
    base = parts[: len(parts) - strip] if strip else parts
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """Flatten ``a.b.c`` into parts when rooted at a plain Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _arg_ref(node: Optional[ast.expr]) -> ArgRef:
    if node is None:
        return ArgRef("other")
    if isinstance(node, ast.Lambda):
        return ArgRef("lambda")
    if isinstance(node, ast.Name):
        return ArgRef("name", node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return ArgRef("str", node.value)
    parts = _dotted_parts(node)
    if parts is not None:
        return ArgRef("dotted", ".".join(parts))
    return ArgRef("other")


class _FunctionExtractor:
    """Walks one function body, skipping nested function bodies."""

    def __init__(
        self,
        owner: "_ModuleExtractor",
        node: ast.AST,
        qname: str,
        kind: str,
        class_ctx: Optional[ClassInfo],
    ) -> None:
        self.owner = owner
        self.node = node
        self.qname = qname
        self.kind = kind
        self.class_ctx = class_ctx
        self.params: Tuple[str, ...] = ()
        self.local_names: Set[str] = set()
        self.local_ctors: Dict[str, Tuple[str, ...]] = {}
        self.effects: List[EffectOrigin] = []
        self.calls: List[CallRef] = []
        self.globals_declared: Set[str] = set()

    # -- scaffolding ---------------------------------------------------

    def extract(self) -> FunctionInfo:
        node = self.node
        decorators: Tuple[CallRef, ...] = ()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.params = _param_names(node.args)
            decorators = tuple(
                ref
                for ref in (
                    self.owner.decorator_ref(d) for d in node.decorator_list
                )
                if ref is not None
            )
            body: Sequence[ast.stmt] = node.body
        elif isinstance(node, ast.Lambda):
            self.params = _param_names(node.args)
            body = [ast.Expr(value=node.body)]
        else:  # pragma: no cover - callers only pass functions/lambdas
            body = []
        self._scan_locals(body)
        for stmt in body:
            self._visit(stmt)
        return FunctionInfo(
            qname=self.qname,
            name=self.qname.rsplit(".", 1)[-1],
            module=self.owner.module,
            line=getattr(node, "lineno", 1),
            kind=self.kind,
            params=self.params,
            decorators=decorators,
            effects=tuple(self.effects),
            calls=tuple(self.calls),
        )

    def _scan_locals(self, body: Sequence[ast.stmt]) -> None:
        """Pre-pass: local assignments and their constructors."""
        for stmt in body:
            for node in _walk_shallow(stmt):
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ):
                    ctor = _dotted_parts(node.value.func)
                    if ctor is None:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.local_ctors[target.id] = tuple(ctor)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    ann = _annotation_class(node.annotation)
                    if ann is not None:
                        self.local_ctors[node.target.id] = tuple(ann)
                elif isinstance(node, ast.With):
                    for item in node.items:
                        if (
                            isinstance(item.context_expr, ast.Call)
                            and item.optional_vars is not None
                            and isinstance(item.optional_vars, ast.Name)
                        ):
                            ctor = _dotted_parts(item.context_expr.func)
                            if ctor is not None:
                                self.local_ctors[
                                    item.optional_vars.id
                                ] = tuple(ctor)
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.local_names.add(target.id)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if isinstance(node.target, ast.Name):
                        self.local_names.add(node.target.id)

    # -- the walk ------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.owner.extract_function(
                node, f"{self.qname}.{node.name}", "nested", self.class_ctx
            )
            # Default-argument values still evaluate in this scope.
            for default in _default_exprs(node.args):
                self._visit(default)
            return
        if isinstance(node, ast.Lambda):
            return  # anonymous; callable only through a local name
        if isinstance(node, ast.Call):
            self._handle_call(node)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            self.globals_declared.update(node.names)
            self._add_effect(
                Effect.GLOBAL_MUTATION,
                node.lineno,
                f"{'global' if isinstance(node, ast.Global) else 'nonlocal'} "
                + ", ".join(node.names),
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                self._check_mutation_target(target)
        elif isinstance(node, ast.Subscript):
            self._check_environ(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _check_mutation_target(self, target: ast.expr) -> None:
        """Assignment through a module-level name is a global mutation."""
        base: Optional[ast.expr] = None
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
        if (
            base is not None
            and isinstance(base, ast.Name)
            and self._is_module_global(base.id)
        ):
            self._add_effect(
                Effect.GLOBAL_MUTATION,
                target.lineno,
                f"assignment through module-level name {base.id!r}",
            )

    def _is_module_global(self, name: str) -> bool:
        if name in self.params or name in self.local_names:
            return False
        return name in self.owner.module_level_names

    def _check_environ(self, node: ast.Subscript) -> None:
        parts = _dotted_parts(node.value)
        if parts is not None and parts[-1] == "environ":
            self._add_effect(Effect.ENV, node.lineno, "os.environ[...]")

    # -- calls ---------------------------------------------------------

    def _handle_call(self, call: ast.Call) -> None:
        func = call.func
        args = tuple(_arg_ref(a) for a in call.args[:2])
        line = call.lineno
        if isinstance(func, ast.Name):
            self._handle_name_call(func.id, call, args)
            return
        if isinstance(func, ast.Attribute):
            parts = _dotted_parts(func)
            recv = func.value
            if isinstance(recv, ast.Name):
                rid = recv.id
                if rid in ("self", "cls") and self.class_ctx is not None:
                    self.calls.append(
                        CallRef("self", (func.attr,), line, args=args)
                    )
                    return
                if rid in self.params:
                    self.calls.append(
                        CallRef("param", (rid, func.attr), line, args=args)
                    )
                    return
                if rid in self.local_ctors:
                    self.calls.append(
                        CallRef(
                            "var",
                            (rid, func.attr),
                            line,
                            recv_ctor=self.local_ctors[rid],
                            args=args,
                        )
                    )
                    self._method_effects(func.attr, rid, line)
                    return
                if parts is not None and (
                    rid in self.owner.imports or rid in _KNOWN_MODULES
                ):
                    self._handle_dotted_call(parts, call, args)
                    return
            elif parts is not None:
                if parts[0] in ("self", "cls") and self.class_ctx is not None:
                    if len(parts) == 3:
                        # self._pool.run(...) — attribute-of-self
                        # receiver, typed via the class's attr_ctors.
                        self.calls.append(
                            CallRef(
                                "self-attr",
                                (parts[1], parts[2]),
                                line,
                                args=args,
                            )
                        )
                        self._method_effects(
                            parts[2], f"self.{parts[1]}", line
                        )
                        return
                    # Deeper chains (self.a.b.c()) are untypeable.
                    self._opaque_method(func.attr, line, args)
                    return
                # a.b.c(...) rooted deeper than one attribute
                self._handle_dotted_call(parts, call, args)
                return
            self._opaque_method(func.attr, line, args)
            return
        # Calls on arbitrary expressions ((f or g)(...)): unknown.
        self._add_effect(Effect.UNKNOWN, line, "call on computed expression")

    def _handle_name_call(
        self, name: str, call: ast.Call, args: Tuple[ArgRef, ...]
    ) -> None:
        line = call.lineno
        if name == "print":
            self._add_effect(Effect.STDOUT, line, "print()")
            return
        if name == "open":
            self._add_effect(Effect.FILESYSTEM, line, "open()")
            return
        target = self.owner.imports.get(name)
        if target is not None:
            self._effect_for_dotted(target.split("."), line)
            self.calls.append(
                CallRef("dotted", tuple(target.split(".")), line, args=args)
            )
            return
        self.calls.append(CallRef("name", (name,), line, args=args))

    def _handle_dotted_call(
        self, parts: List[str], call: ast.Call, args: Tuple[ArgRef, ...]
    ) -> None:
        line = call.lineno
        head = parts[0]
        resolved_head = self.owner.imports.get(head, head)
        full = resolved_head.split(".") + parts[1:]
        self._effect_for_dotted(full, line)
        self.calls.append(CallRef("dotted", tuple(full), line, args=args))

    def _method_effects(self, attr: str, recv: str, line: int) -> None:
        if attr in _FS_METHOD_NAMES:
            self._add_effect(
                Effect.FILESYSTEM, line, f"{recv}.{attr}()"
            )
        if attr in _MUTATING_METHODS and self._is_module_global(
            recv.split(".", 1)[0]
        ):
            self._add_effect(
                Effect.GLOBAL_MUTATION,
                line,
                f"mutating call {recv}.{attr}() on a module-level name",
            )

    def _opaque_method(
        self, attr: str, line: int, args: Tuple[ArgRef, ...]
    ) -> None:
        if attr in _FS_METHOD_NAMES:
            self._add_effect(Effect.FILESYSTEM, line, f".{attr}()")
            self.calls.append(CallRef("opaque", (attr,), line, args=args))
            return
        if attr in _BENIGN_METHODS or attr in _MUTATING_METHODS:
            # Container/ndarray vocabulary: locally pure. Mutating
            # calls on *module-level* receivers are caught by the
            # typed branches; an opaque receiver here is a local.
            return
        self.calls.append(CallRef("opaque", (attr,), line, args=args))
        self._add_effect(
            Effect.UNKNOWN, line, f"unresolvable method call .{attr}()"
        )

    def _effect_for_dotted(self, parts: Sequence[str], line: int) -> None:
        dotted = ".".join(parts)
        head = parts[0]
        if head == "time" and len(parts) == 2 and parts[1] in _TIME_FUNCS:
            self._add_effect(Effect.CLOCK, line, f"{dotted}()")
        elif parts[-1] in _DATETIME_FUNCS and head in ("datetime", "date"):
            self._add_effect(Effect.CLOCK, line, f"{dotted}()")
        elif head in ("numpy", "np") and len(parts) >= 2 and parts[1] == "random":
            self._add_effect(Effect.RNG, line, f"{dotted}()")
        elif parts[-1] in _RNG_CONSTRUCTORS:
            self._add_effect(Effect.RNG, line, f"{dotted}()")
        elif head == "os":
            if parts[-1] in _OS_ENV_FUNCS or "environ" in parts:
                self._add_effect(Effect.ENV, line, f"{dotted}()")
            elif parts[-1] in _OS_FS_FUNCS:
                self._add_effect(Effect.FILESYSTEM, line, f"{dotted}()")
            elif parts[-1] == "urandom":
                self._add_effect(Effect.RNG, line, "os.urandom()")
        elif head in _FS_MODULES:
            self._add_effect(Effect.FILESYSTEM, line, f"{dotted}()")
        elif head in _NETWORK_MODULES:
            self._add_effect(Effect.NETWORK, line, f"{dotted}()")
        elif head == "random":
            self._add_effect(Effect.RNG, line, f"{dotted}()")
        elif head == "secrets":
            self._add_effect(Effect.RNG, line, f"{dotted}()")

    def _add_effect(self, effect: Effect, line: int, detail: str) -> None:
        waived = any(
            self.owner.suppressions.is_suppressed(line, rule_id)
            for rule_id in WAIVER_RULES[effect]
        )
        self.effects.append(EffectOrigin(effect, line, detail, waived))


#: Module heads recognized without an import statement (builtins-adjacent
#: stdlib the effect tables name); anything else unimported is a local.
_KNOWN_MODULES = frozenset(
    {"os", "time", "datetime", "shutil", "tempfile", "socket", "random"}
)


def _param_names(args: ast.arguments) -> Tuple[str, ...]:
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _default_exprs(args: ast.arguments) -> List[ast.expr]:
    return list(args.defaults) + [
        d for d in args.kw_defaults if d is not None
    ]


def _annotation_class(node: ast.expr) -> Optional[List[str]]:
    """Class parts named by an annotation, unwrapping ``Optional[...]``."""
    if isinstance(node, ast.Subscript):
        outer = _dotted_parts(node.value)
        if outer is not None and outer[-1] in ("Optional", "Final"):
            return _annotation_class(node.slice)
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_class(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return None
    return _dotted_parts(node)


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """ast.walk that does not descend into nested function bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


class _ModuleExtractor:
    """Extracts one :class:`ModuleSummary` from a parsed module."""

    def __init__(
        self,
        module: str,
        path: str,
        tree: ast.Module,
        suppressions: SuppressionIndex,
    ) -> None:
        self.module = module
        self.path = path
        self.tree = tree
        self.suppressions = suppressions
        self.is_init = path.endswith("__init__.py")
        self.imports: Dict[str, str] = {}
        self.summary = ModuleSummary(module=module, path=path)
        self.summary.imports = self.imports
        self.module_level_names: Set[str] = set()

    def run(self) -> ModuleSummary:
        self._collect_module_names()
        for node in self.tree.body:
            self._visit_top(node)
        return self.summary

    def _collect_module_names(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
                    self.module_level_names.add(local)
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(self.module, self.is_init, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}" if base else alias.name
                    self.module_level_names.add(local)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self.module_level_names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_level_names.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        self.module_level_names.update(
                            e.id for e in target.elts if isinstance(e, ast.Name)
                        )
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self.module_level_names.add(node.target.id)

    def _visit_top(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.extract_function(
                node, f"{self.module}.{node.name}", "function", None
            )
        elif isinstance(node, ast.ClassDef):
            self._extract_class(node)
        elif isinstance(node, ast.Assign):
            self._extract_assign(node)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING / fallback-import blocks: walk one level in.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._visit_top(child)

    def _extract_assign(self, node: ast.Assign) -> None:
        targets = [t for t in node.targets if isinstance(t, ast.Name)]
        if not targets:
            return
        if isinstance(node.value, ast.Lambda):
            for target in targets:
                qname = f"{self.module}.{target.id}"
                info = _FunctionExtractor(
                    self, node.value, qname, "lambda", None
                ).extract()
                self.summary.functions[qname] = info
                self.summary.assigns[target.id] = ("lambda", qname)
            return
        ref = _dotted_parts(node.value)
        if ref is not None:
            for target in targets:
                self.summary.assigns[target.id] = tuple(ref)

    def extract_function(
        self,
        node: ast.AST,
        qname: str,
        kind: str,
        class_ctx: Optional[ClassInfo],
    ) -> FunctionInfo:
        info = _FunctionExtractor(self, node, qname, kind, class_ctx).extract()
        self.summary.functions[qname] = info
        return info

    def decorator_ref(self, node: ast.expr) -> Optional[CallRef]:
        if isinstance(node, ast.Call):
            parts = _dotted_parts(node.func)
            if parts is None:
                return None
            return CallRef(
                "decorator",
                tuple(parts),
                node.lineno,
                args=tuple(_arg_ref(a) for a in node.args[:2]),
            )
        parts = _dotted_parts(node)
        if parts is None:
            return None
        return CallRef("decorator", tuple(parts), node.lineno)

    def _extract_class(self, node: ast.ClassDef) -> None:
        qname = f"{self.module}.{node.name}"
        bases = tuple(
            tuple(p)
            for p in (_dotted_parts(b) for b in node.bases)
            if p is not None
        )
        is_dataclass = any(
            (ref is not None and ref.parts[-1] == "dataclass")
            for ref in (self.decorator_ref(d) for d in node.decorator_list)
        )
        info = ClassInfo(
            qname=qname,
            name=node.name,
            module=self.module,
            line=node.lineno,
            bases=bases,
            is_dataclass=is_dataclass,
        )
        self.summary.classes[qname] = info
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qname = f"{qname}.{child.name}"
                info.methods[child.name] = method_qname
                self.extract_function(child, method_qname, "method", info)
                self._collect_attr_ctors(child, info)

    def _collect_attr_ctors(
        self, method: ast.AST, info: ClassInfo
    ) -> None:
        """Record ``self.x = Ctor(...)`` / annotated attribute types."""
        for node in _walk_shallow(method):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            ctor: Optional[List[str]] = None
            if annotation is not None:
                ctor = _annotation_class(annotation)
            if ctor is None and isinstance(value, ast.Call):
                ctor = _dotted_parts(value.func)
            if ctor is not None and target.attr not in info.attr_ctors:
                info.attr_ctors[target.attr] = tuple(ctor)


def extract_module(
    module: str,
    path: str,
    source: str,
    tree: Optional[ast.Module] = None,
) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` for one source file.

    *tree* may be supplied to reuse an AST the lint runner already
    parsed (the single-parse discipline); otherwise the source is
    parsed here.
    """
    if tree is None:
        tree = ast.parse(source)
    suppressions = SuppressionIndex.from_source(source)
    return _ModuleExtractor(module, path, tree, suppressions).run()
