"""Lint drivers: single sources, file sets, and whole projects.

The runner parses each file once, hands the :class:`FileContext` to
every file-scoped rule, filters findings through the per-line
``# repro: noqa[RULE]`` suppression index, and (in project mode) runs
the project-scoped rules against the repository root.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from .base import FileContext, ProjectContext, Rule, get_rules
from .findings import Finding
from .suppressions import SuppressionIndex

__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_project",
    "find_project_root",
]

PathLike = Union[str, Path]


def _module_name_for(path: Path) -> Optional[str]:
    """Dotted module name when *path* sits under a ``src/`` root."""
    parts = path.resolve().parts
    for idx in range(len(parts) - 1, -1, -1):
        if parts[idx] == "src":
            tail = parts[idx + 1 :]
            if tail:
                module_parts = list(tail[:-1])
                stem = Path(tail[-1]).stem
                if stem != "__init__":
                    module_parts.append(stem)
                if module_parts:
                    return ".".join(module_parts)
            return None
    return None


def _file_rules(rules: Sequence[Rule]) -> List[Rule]:
    return [rule for rule in rules if rule.scope == "file"]


def _project_rules(rules: Sequence[Rule]) -> List[Rule]:
    return [rule for rule in rules if rule.scope == "project"]


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: Optional[str] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a source string with the file-scoped rules.

    Findings on lines carrying a matching ``# repro: noqa[RULE]``
    directive are dropped. Raises :class:`repro.analysis.base.
    UnknownRuleError` for unknown ids in *rule_ids*.
    """
    tree = ast.parse(source)
    ctx = FileContext(
        path=Path(path),
        display_path=path,
        source=source,
        tree=tree,
        module=module,
    )
    suppressions = SuppressionIndex.from_source(source)
    findings: List[Finding] = []
    for rule in _file_rules(get_rules(rule_ids)):
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding.line, finding.rule_id):
                findings.append(finding)
    return sorted(findings)


def lint_file(
    path: PathLike,
    *,
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one Python file (file-scoped rules only)."""
    p = Path(path)
    display = str(p)
    if root is not None:
        try:
            display = str(p.resolve().relative_to(root.resolve()))
        except ValueError:
            pass
    return lint_source(
        p.read_text(encoding="utf-8"),
        path=display,
        module=_module_name_for(p),
        rule_ids=rule_ids,
    )


def _iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    for path in paths:
        p = Path(path)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def lint_paths(
    paths: Iterable[PathLike],
    *,
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint files and directories with the file-scoped rules."""
    findings: List[Finding] = []
    for p in _iter_python_files(paths):
        findings.extend(lint_file(p, root=root, rule_ids=rule_ids))
    return sorted(findings)


def lint_project(
    root: Optional[PathLike] = None,
    *,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a whole repository: ``src/`` files plus project rules.

    *root* defaults to :func:`find_project_root`. File rules walk every
    ``*.py`` under ``<root>/src``; project rules (registry completeness,
    public-API coverage) check the repository layout itself.
    """
    resolved_root = Path(root) if root is not None else find_project_root()
    if resolved_root is None:
        raise FileNotFoundError(
            "cannot locate the project root (a directory containing "
            "src/repro); pass explicit paths or run from the repository"
        )
    resolved_root = resolved_root.resolve()
    rules = get_rules(rule_ids)
    file_rule_ids = [r.rule_id for r in _file_rules(rules)]
    findings: List[Finding] = []
    src_dir = resolved_root / "src"
    if src_dir.is_dir() and file_rule_ids:
        for p in _iter_python_files([src_dir]):
            findings.extend(
                lint_file(p, root=resolved_root, rule_ids=file_rule_ids)
            )
    ctx = ProjectContext(root=resolved_root)
    for rule in _project_rules(rules):
        findings.extend(rule.check_project(ctx))
    return sorted(findings)


def find_project_root(start: Optional[PathLike] = None) -> Optional[Path]:
    """Locate the repository root from *start* (default: cwd).

    Walks upward looking for a directory containing ``src/repro``;
    falls back to the checkout this package was imported from, so
    ``repro lint`` works from any working directory of the repo.
    """
    here = Path(start) if start is not None else Path.cwd()
    for candidate in [here, *here.resolve().parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    # src/repro/analysis/runner.py -> parents[3] is the checkout root.
    packaged = Path(__file__).resolve()
    if len(packaged.parents) > 3:
        checkout = packaged.parents[3]
        if (checkout / "src" / "repro").is_dir():
            return checkout
    return None
