"""Lint drivers: single sources, file sets, and whole projects.

The runner parses each file to an AST **exactly once** and shares the
tree across every pass that needs it: the file-scoped rules, the
unused-suppression meta check (LINT001, which needs the *raw*
pre-suppression findings), and — under ``lint_project(graph=True)`` —
the whole-program graph pass, whose per-module extraction reuses the
same trees. :func:`parse_count` exposes the parse counter so the
micro-benchmark can assert the single-parse discipline instead of
trusting it.

Pass order in project mode: file rules → LINT001 → project rules →
graph rules. Graph findings are filtered through the same per-line
``# repro: noqa[RULE]`` suppression indexes as file findings, so a
``noqa[GRAPH001]`` on a decorated ``def`` line waives that target.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from .base import FileContext, GraphContext, ProjectContext, Rule, get_rules
from .findings import Finding
from .suppressions import SuppressionIndex

__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_project",
    "find_project_root",
    "parse_count",
    "reset_parse_count",
]

PathLike = Union[str, Path]

_PARSE_COUNT = 0


def _parse(source: str) -> ast.Module:
    """The one choke point every lint parse goes through (counted)."""
    global _PARSE_COUNT
    _PARSE_COUNT += 1
    return ast.parse(source)


def parse_count() -> int:
    """Process-wide number of lint AST parses (benchmark instrument)."""
    return _PARSE_COUNT


def reset_parse_count() -> None:
    """Zero the parse counter (benchmark isolation)."""
    global _PARSE_COUNT
    _PARSE_COUNT = 0


def _module_name_for(path: Path) -> Optional[str]:
    """Dotted module name when *path* sits under a ``src/`` root."""
    parts = path.resolve().parts
    for idx in range(len(parts) - 1, -1, -1):
        if parts[idx] == "src":
            tail = parts[idx + 1 :]
            if tail:
                module_parts = list(tail[:-1])
                stem = Path(tail[-1]).stem
                if stem != "__init__":
                    module_parts.append(stem)
                if module_parts:
                    return ".".join(module_parts)
            return None
    return None


def _scope_rules(rules: Sequence[Rule], scope: str) -> List[Rule]:
    return [rule for rule in rules if rule.scope == scope]


@dataclass
class _FileRun:
    """One file's shared lint state: context, suppressions, raw hits."""

    ctx: FileContext
    suppressions: SuppressionIndex
    raw: List[Finding] = field(default_factory=list)


def _run_for_source(
    source: str, *, path: str, module: Optional[str]
) -> _FileRun:
    return _FileRun(
        ctx=FileContext(
            path=Path(path),
            display_path=path,
            source=source,
            tree=_parse(source),
            module=module,
        ),
        suppressions=SuppressionIndex.from_source(source),
    )


def _run_for_file(path: Path, root: Optional[Path]) -> _FileRun:
    display = str(path)
    if root is not None:
        try:
            display = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            pass
    return _run_for_source(
        path.read_text(encoding="utf-8"),
        path=display,
        module=_module_name_for(path),
    )


def _apply_file_rules(
    runs: Sequence[_FileRun], rules: Sequence[Rule]
) -> List[Finding]:
    """File pass: record raw findings, return the unsuppressed ones."""
    kept: List[Finding] = []
    for run in runs:
        for rule in rules:
            for finding in rule.check(run.ctx):
                run.raw.append(finding)
                if not run.suppressions.is_suppressed(
                    finding.line, finding.rule_id
                ):
                    kept.append(finding)
    return kept


def _apply_meta_rules(
    runs: Sequence[_FileRun],
    meta_rules: Sequence[Rule],
    executed_file_ids: Sequence[str],
) -> List[Finding]:
    """LINT001 pass: unused directives, given the raw file findings."""
    from .rules.lint_meta import UnusedSuppressionRule

    executed = set(executed_file_ids)
    findings: List[Finding] = []
    for rule in meta_rules:
        if not isinstance(rule, UnusedSuppressionRule):
            continue  # future meta rules define their own driver hook
        for run in runs:
            findings.extend(
                rule.check_directives(
                    run.ctx.display_path,
                    run.suppressions.directives(),
                    run.raw,
                    executed,
                )
            )
    return findings


def _lint_runs(
    runs: Sequence[_FileRun], rules: Sequence[Rule]
) -> List[Finding]:
    """File + meta passes over pre-built runs (shared ASTs)."""
    file_rules = _scope_rules(rules, "file")
    findings = _apply_file_rules(runs, file_rules)
    findings.extend(
        _apply_meta_rules(
            runs,
            _scope_rules(rules, "meta"),
            [rule.rule_id for rule in file_rules],
        )
    )
    return findings


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: Optional[str] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a source string with the file-scoped (and meta) rules.

    Findings on lines carrying a matching ``# repro: noqa[RULE]``
    directive are dropped. Raises :class:`repro.analysis.base.
    UnknownRuleError` for unknown ids in *rule_ids*.
    """
    run = _run_for_source(source, path=path, module=module)
    return sorted(_lint_runs([run], get_rules(rule_ids)))


def lint_file(
    path: PathLike,
    *,
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one Python file (file-scoped and meta rules only)."""
    run = _run_for_file(Path(path), root)
    return sorted(_lint_runs([run], get_rules(rule_ids)))


def _iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    for path in paths:
        p = Path(path)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def lint_paths(
    paths: Iterable[PathLike],
    *,
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint files and directories with the file-scoped rules.

    Every file is read and parsed exactly once; the parsed contexts
    are shared across all rules.
    """
    runs = [_run_for_file(p, root) for p in _iter_python_files(paths)]
    return sorted(_lint_runs(runs, get_rules(rule_ids)))


def _graph_findings(
    runs: Sequence[_FileRun],
    graph_rules: Sequence[Rule],
    root: Path,
) -> List[Finding]:
    """Graph pass: analyze (reusing parsed trees), run GRAPH rules,
    filter through the owning file's suppression index."""
    from .graph import ModuleInput, analyze_project

    inputs = [
        ModuleInput(
            display_path=run.ctx.display_path,
            module=run.ctx.module,
            source=run.ctx.source,
            tree=run.ctx.tree,
        )
        for run in runs
        if run.ctx.module is not None
    ]
    analysis = analyze_project(inputs)
    ctx = GraphContext(root=root, analysis=analysis)
    suppressions_by_path: Dict[str, SuppressionIndex] = {
        run.ctx.display_path: run.suppressions for run in runs
    }
    findings: List[Finding] = []
    for rule in graph_rules:
        for finding in rule.check_graph(ctx):
            index = suppressions_by_path.get(finding.file)
            if index is not None and index.is_suppressed(
                finding.line, finding.rule_id
            ):
                continue
            findings.append(finding)
    return findings


def lint_project(
    root: Optional[PathLike] = None,
    *,
    rule_ids: Optional[Sequence[str]] = None,
    graph: bool = False,
) -> List[Finding]:
    """Lint a whole repository: ``src/`` files plus project rules.

    *root* defaults to :func:`find_project_root`. File rules walk every
    ``*.py`` under ``<root>/src``; project rules (registry completeness,
    public-API coverage) check the repository layout itself. With
    ``graph=True`` (or when a graph-scoped rule is explicitly named in
    *rule_ids*) the whole-program effect analysis runs as well,
    reusing the already-parsed ASTs.
    """
    resolved_root = Path(root) if root is not None else find_project_root()
    if resolved_root is None:
        raise FileNotFoundError(
            "cannot locate the project root (a directory containing "
            "src/repro); pass explicit paths or run from the repository"
        )
    resolved_root = resolved_root.resolve()
    rules = get_rules(rule_ids)
    runs: List[_FileRun] = []
    src_dir = resolved_root / "src"
    if src_dir.is_dir():
        runs = [
            _run_for_file(p, resolved_root)
            for p in _iter_python_files([src_dir])
        ]
    findings = _lint_runs(runs, rules)
    ctx = ProjectContext(root=resolved_root)
    for rule in _scope_rules(rules, "project"):
        findings.extend(rule.check_project(ctx))
    graph_rules = _scope_rules(rules, "graph")
    if graph_rules and (graph or rule_ids is not None):
        findings.extend(_graph_findings(runs, graph_rules, resolved_root))
    return sorted(findings)


def find_project_root(start: Optional[PathLike] = None) -> Optional[Path]:
    """Locate the repository root from *start* (default: cwd).

    Walks upward looking for a directory containing ``src/repro``;
    falls back to the checkout this package was imported from, so
    ``repro lint`` works from any working directory of the repo.
    """
    here = Path(start) if start is not None else Path.cwd()
    for candidate in [here, *here.resolve().parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    # src/repro/analysis/runner.py -> parents[3] is the checkout root.
    packaged = Path(__file__).resolve()
    if len(packaged.parents) > 3:
        checkout = packaged.parents[3]
        if (checkout / "src" / "repro").is_dir():
            return checkout
    return None
