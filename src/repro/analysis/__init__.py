"""Static invariant analysis for the reproduction (``repro lint``).

A small AST-walking lint framework plus a domain rule pack that keeps
the conventions the reproduction's correctness rests on mechanical
rather than tribal:

========  ============================================================
rule id   invariant
========  ============================================================
RNG001    no legacy ``np.random.*`` global-state calls
RNG002    no argument-less ``default_rng()`` in library code
RNG003    stochastic functions accept an ``rng`` parameter
DET001    no wall-clock reads in simulation logic
PROB001   boundary tests via ``is_zero``/``is_one``, not ``== 0.0``
PROB002   probability dataclass fields validated in ``__post_init__``
REG001    experiments wired into registry, benchmarks, EXPERIMENTS.md
API001    ``__all__`` names resolve and packages are test-covered
GRAPH001  ``@cached_solve`` targets transitively effect-free
GRAPH002  pool submissions are picklable module-level functions
GRAPH003  no transitive wall-clock reads from experiment entry points
LINT001   no unused ``# repro: noqa`` suppression directives
========  ============================================================

Findings can be waived per line with ``# repro: noqa[RULE]``. Three
entry points: the ``repro lint`` CLI subcommand, the importable
:func:`lint_project` / :func:`lint_paths` API, and the tier-1 pytest
gate ``tests/analysis/test_self_lint.py``. The ``GRAPH00x`` family
runs the whole-program effect analysis in :mod:`repro.analysis.graph`
(``repro lint --graph``; witnesses via ``repro graph why``). See
``docs/analysis.md`` for the effect lattice and ``docs/dev.md`` for
the full rule catalog and how to add a rule.
"""

from .base import (
    FileContext,
    GraphContext,
    LintError,
    ProjectContext,
    Rule,
    UnknownRuleError,
    all_rule_ids,
    get_rules,
    register,
)
from .findings import Finding, format_json, format_sarif, format_text
from .runner import (
    find_project_root,
    lint_file,
    lint_paths,
    lint_project,
    lint_source,
    parse_count,
    reset_parse_count,
)
from .suppressions import SuppressionIndex

__all__ = [
    "FileContext",
    "GraphContext",
    "LintError",
    "ProjectContext",
    "Rule",
    "UnknownRuleError",
    "all_rule_ids",
    "get_rules",
    "register",
    "Finding",
    "format_json",
    "format_sarif",
    "format_text",
    "find_project_root",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "parse_count",
    "reset_parse_count",
    "SuppressionIndex",
]
