"""Public-API surface rule: ``__all__`` is real and test-covered.

``__all__`` is the package's contract; a name listed there that does
not resolve is an ImportError waiting for the first ``from repro.x
import *`` or documentation reader, and a package absent from
``tests/test_public_api.py`` escapes the hygiene tests entirely.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Set

from ..base import ProjectContext, Rule, register
from ..findings import Finding

__all__ = ["PublicApiRule"]


def _module_name(ctx: ProjectContext, init_path: Path) -> str:
    rel = init_path.parent.relative_to(ctx.src_dir)
    return ".".join(rel.parts)


def _find_all_assignment(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node
    return None


def _literal_names(node: ast.expr) -> List[str]:
    if isinstance(node, (ast.List, ast.Tuple)):
        return [
            elt.value
            for elt in node.elts
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        ]
    return []


def _bound_names(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (imports, defs, assignments)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    bound.update(
                        elt.id for elt in target.elts if isinstance(elt, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
    return bound


def _covered_packages(test_path: Path) -> Optional[Set[str]]:
    """Read the PACKAGES list from tests/test_public_api.py, if present."""
    if not test_path.is_file():
        return None
    tree = ast.parse(test_path.read_text(encoding="utf-8"))
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "PACKAGES":
                    return set(_literal_names(node.value))
    return set()


@register
class PublicApiRule(Rule):
    """API001 — ``__all__`` names exist and packages are test-covered."""

    rule_id = "API001"
    title = "__all__ exports resolve and are covered by test_public_api.py"
    rationale = (
        "A phantom __all__ entry breaks star-imports and documents an "
        "API that does not exist; a package missing from the "
        "test_public_api.py PACKAGES list silently loses its hygiene "
        "checks (names resolve, no duplicates, docstrings present)."
    )
    scope = "project"

    def check_project(self, ctx: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        if not ctx.package_dir.is_dir():
            return findings
        covered = _covered_packages(ctx.root / "tests" / "test_public_api.py")
        if covered is None:
            findings.append(
                ctx.finding(
                    ctx.root / "tests" / "test_public_api.py",
                    1,
                    self.rule_id,
                    "tests/test_public_api.py not found; public-API "
                    "coverage cannot be verified",
                )
            )
        for init_path in sorted(ctx.package_dir.rglob("__init__.py")):
            module = _module_name(ctx, init_path)
            tree = ast.parse(init_path.read_text(encoding="utf-8"))
            all_assign = _find_all_assignment(tree)
            if all_assign is None:
                findings.append(
                    ctx.finding(
                        init_path, 1, self.rule_id, f"{module} lacks an __all__"
                    )
                )
                continue
            bound = _bound_names(tree)
            for name in _literal_names(all_assign.value):
                if name not in bound:
                    findings.append(
                        ctx.finding(
                            init_path,
                            all_assign.lineno,
                            self.rule_id,
                            f"{module}.__all__ lists {name!r} but the module "
                            "never binds it",
                        )
                    )
            if covered is not None and module not in covered:
                findings.append(
                    ctx.finding(
                        init_path,
                        1,
                        self.rule_id,
                        f"package {module} is missing from the PACKAGES list "
                        "in tests/test_public_api.py",
                    )
                )
        return findings
