"""Graph-scoped rules: cache purity, pool safety, clock reachability.

These rules consume the whole-program analysis from
:mod:`repro.analysis.graph` (``repro lint --graph``). Each finding
embeds a one-line call-chain witness; ``repro graph why`` reprints the
full indented chain for any of them.

The conservative :attr:`Effect.UNKNOWN` element is deliberately *not*
a violation for any rule here: failing on every unresolvable method
call would bury real findings. Unknowns stay visible through
``repro graph effects`` instead.
"""

from __future__ import annotations

from typing import List, Optional

from ..base import GraphContext, Rule, register
from ..findings import Finding
from ..graph import CallGraph, Effect, WitnessStep, witness_chain

__all__ = [
    "CachePurityRule",
    "PoolPicklabilityRule",
    "ClockReachabilityRule",
]

#: Effects that poison a content-addressed cache entry: the result
#: would depend on process state that is not part of the key.
_CACHE_POISON = (
    Effect.RNG,
    Effect.CLOCK,
    Effect.ENV,
    Effect.GLOBAL_MUTATION,
)


def _short_witness(
    graph: CallGraph, steps: Optional[List[WitnessStep]]
) -> str:
    """One-line ``a -> b -> origin (file:line)`` witness rendering."""
    if not steps:
        return "no witness"
    names = [step.qname.rsplit(".", 1)[-1] for step in steps[:-1]]
    last = steps[-1]
    node = graph.functions.get(last.qname)
    where = (
        f"{graph.modules[node.info.module].path}:{last.line}"
        if node is not None
        else f"line {last.line}"
    )
    chain = " -> ".join([*names, last.qname.rsplit(".", 1)[-1]])
    return f"{chain}: {last.detail} ({where})"


@register
class CachePurityRule(Rule):
    """GRAPH001: ``@cached_solve`` targets must be transitively pure.

    A memoized solver that transitively constructs an RNG, reads the
    wall clock or the environment, or mutates global state returns
    values that depend on process state outside its cache key — a warm
    hit would silently replay a different computation than a cold run.
    RNG *passed in as a parameter* is fine: the generator is part of
    the call, and the key schema captures solver parameters.
    """

    rule_id = "GRAPH001"
    title = "cached_solve targets must be transitively effect-free"
    rationale = (
        "An impure memoized solver poisons the content-addressed store: "
        "the cached value depends on state (RNG, clock, env, globals) "
        "that is not part of the key, so warm hits are not replays."
    )
    scope = "graph"

    def check_graph(self, ctx: GraphContext) -> List[Finding]:
        graph = ctx.analysis.graph
        closure = ctx.analysis.closure
        findings: List[Finding] = []
        for node in graph.functions.values():
            if node.cached_fn_id is None:
                continue
            effects = closure.get(node.qname, frozenset())
            for effect in _CACHE_POISON:
                if effect not in effects:
                    continue
                steps = witness_chain(graph, node.qname, effect, closure)
                findings.append(
                    ctx.finding(
                        node.info.module,
                        node.info.line,
                        self.rule_id,
                        f"cached_solve target "
                        f"(fn_id={node.cached_fn_id!r}) transitively "
                        f"reaches {effect.value.upper()} — "
                        f"{_short_witness(graph, steps)}; thread the "
                        "dependency in as a parameter or lift the "
                        "effect out of the cached closure",
                    )
                )
        return findings


@register
class PoolPicklabilityRule(Rule):
    """GRAPH002: pool-submitted callables must pickle by importable name.

    ``SupervisedPool``/``ProcessPoolExecutor`` ship the callable to a
    worker process via pickle, which serializes functions *by
    qualified name*: lambdas, nested functions (closures), and local
    bindings all fail at dispatch time — on some platforms only under
    the ``spawn`` start method, i.e. exactly on the machines CI does
    not cover.
    """

    rule_id = "GRAPH002"
    title = "pool submissions must be picklable module-level functions"
    rationale = (
        "Worker pools pickle callables by qualified name; a lambda or "
        "closure submits fine under fork and crashes under spawn. The "
        "call graph proves each submitted callable resolves to an "
        "importable module-level function."
    )
    scope = "graph"

    def check_graph(self, ctx: GraphContext) -> List[Finding]:
        graph = ctx.analysis.graph
        findings: List[Finding] = []
        for node in graph.functions.values():
            for sub in node.submissions:
                if sub.verdict != "violation":
                    continue
                findings.append(
                    ctx.finding(
                        node.info.module,
                        sub.line,
                        self.rule_id,
                        f"{sub.api} submits an unpicklable callable: "
                        f"{sub.detail}; submit a module-level function "
                        "and pass state through its arguments",
                    )
                )
        return findings


@register
class ClockReachabilityRule(Rule):
    """GRAPH003: experiment entry points must not reach the wall clock.

    The file-local DET001 catches a direct ``time.time()`` in
    experiment code; this rule closes the transitive hole — an
    experiment calling a helper calling ``datetime.now()`` three
    modules away. Audited boundaries (the runner's wall-clock budget)
    carry ``# repro: noqa[DET001]`` at the origin line, which waives
    the origin from propagation; everything else is a reproducibility
    leak.
    """

    rule_id = "GRAPH003"
    title = "no transitive wall-clock reads from experiment entry points"
    rationale = (
        "Bit-identical replication requires experiment outputs to be "
        "pure functions of configuration and seed; a clock read "
        "anywhere in the transitive closure breaks replay equality in "
        "ways file-local linting cannot see."
    )
    scope = "graph"

    @staticmethod
    def _is_entry_point(qname: str, module: str, kind: str) -> bool:
        return (
            kind == "function"
            and qname.rsplit(".", 1)[-1] == "run"
            and "experiments" in module.split(".")
        )

    def check_graph(self, ctx: GraphContext) -> List[Finding]:
        graph = ctx.analysis.graph
        closure = ctx.analysis.closure
        findings: List[Finding] = []
        for node in graph.functions.values():
            info = node.info
            if not self._is_entry_point(info.qname, info.module, info.kind):
                continue
            if Effect.CLOCK not in closure.get(info.qname, frozenset()):
                continue
            steps = witness_chain(graph, info.qname, Effect.CLOCK, closure)
            findings.append(
                ctx.finding(
                    info.module,
                    info.line,
                    self.rule_id,
                    f"experiment entry point {info.qname} transitively "
                    f"reads the wall clock — "
                    f"{_short_witness(graph, steps)}; audited clock "
                    "boundaries need `# repro: noqa[DET001]` at the "
                    "origin line",
                )
            )
        return findings
