"""The built-in rule pack.

Importing this package registers every rule with the registry in
:mod:`repro.analysis.base`. Rule ids are grouped by prefix:

* ``RNG00x`` — random-stream discipline (:mod:`.rng`);
* ``DET001`` — wall-clock determinism (:mod:`.determinism`);
* ``PROB00x`` — probability domains (:mod:`.probability`);
* ``REG001`` — experiment wiring (:mod:`.registry`);
* ``API001`` — public-API surface (:mod:`.api`);
* ``NUM001`` — log-domain safety (:mod:`.numerics`);
* ``STORE001`` — result-store access discipline (:mod:`.store`);
* ``EST001`` — kd-tree locality for the kNN estimators (:mod:`.estimation`);
* ``SVC001`` — no blocking solver calls in coroutines (:mod:`.service`);
* ``GRAPH00x`` — whole-program effect analysis (:mod:`.graph`);
* ``LINT001`` — unused suppression directives (:mod:`.lint_meta`).
"""

from .api import PublicApiRule
from .determinism import WallClockRule
from .estimation import KdTreeLocalityRule
from .graph import CachePurityRule, ClockReachabilityRule, PoolPicklabilityRule
from .lint_meta import UnusedSuppressionRule
from .numerics import AdHocLogFloorRule
from .probability import FloatEqualityRule, UnvalidatedProbabilityFieldsRule
from .registry import ExperimentWiringRule
from .rng import LegacyGlobalRngRule, UnseededDefaultRngRule, UnthreadedRngRule
from .service import AsyncSolverCallRule
from .store import StoreDisciplineRule

__all__ = [
    "PublicApiRule",
    "AsyncSolverCallRule",
    "KdTreeLocalityRule",
    "WallClockRule",
    "AdHocLogFloorRule",
    "CachePurityRule",
    "ClockReachabilityRule",
    "FloatEqualityRule",
    "PoolPicklabilityRule",
    "UnusedSuppressionRule",
    "UnvalidatedProbabilityFieldsRule",
    "ExperimentWiringRule",
    "LegacyGlobalRngRule",
    "UnseededDefaultRngRule",
    "UnthreadedRngRule",
    "StoreDisciplineRule",
]
