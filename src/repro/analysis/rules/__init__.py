"""The built-in rule pack.

Importing this package registers every rule with the registry in
:mod:`repro.analysis.base`. Rule ids are grouped by prefix:

* ``RNG00x`` — random-stream discipline (:mod:`.rng`);
* ``DET001`` — wall-clock determinism (:mod:`.determinism`);
* ``PROB00x`` — probability domains (:mod:`.probability`);
* ``REG001`` — experiment wiring (:mod:`.registry`);
* ``API001`` — public-API surface (:mod:`.api`).
"""

from .api import PublicApiRule
from .determinism import WallClockRule
from .probability import FloatEqualityRule, UnvalidatedProbabilityFieldsRule
from .registry import ExperimentWiringRule
from .rng import LegacyGlobalRngRule, UnseededDefaultRngRule, UnthreadedRngRule

__all__ = [
    "PublicApiRule",
    "WallClockRule",
    "FloatEqualityRule",
    "UnvalidatedProbabilityFieldsRule",
    "ExperimentWiringRule",
    "LegacyGlobalRngRule",
    "UnseededDefaultRngRule",
    "UnthreadedRngRule",
]
