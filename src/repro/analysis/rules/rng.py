"""RNG discipline rules: every stochastic path threads a Generator.

The reproduction's determinism story (checkpoint/resume, paired
comparisons, bit-identical reruns) rests on one convention: randomness
flows from a root seed through ``repro.simulation.rng`` substreams into
explicit ``numpy.random.Generator`` parameters. These rules make the
convention mechanical.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from ..base import FileContext, Rule, register
from ..findings import Finding

__all__ = [
    "LegacyGlobalRngRule",
    "ModuleLevelGeneratorRule",
    "UnseededDefaultRngRule",
    "UnthreadedRngRule",
]

#: numpy.random attributes that do NOT touch the legacy global state.
_GENERATOR_SAFE = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_NUMPY_ALIASES = frozenset({"np", "numpy"})


def _np_random_attr(func: ast.AST) -> Optional[str]:
    """Return ``X`` when *func* is the expression ``np.random.X``."""
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "random"
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id in _NUMPY_ALIASES
    ):
        return func.attr
    return None


@register
class LegacyGlobalRngRule(Rule):
    """RNG001 — no legacy ``np.random.*`` global-state calls."""

    rule_id = "RNG001"
    title = "no np.random.seed / legacy global-state RNG calls"
    rationale = (
        "Legacy np.random functions mutate hidden global state, so any "
        "call order change silently perturbs every downstream draw; "
        "checkpoint/resume and paired experiments then stop being "
        "bit-reproducible. Thread an explicit np.random.Generator."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                attr = _np_random_attr(node.func)
                if attr is not None and attr not in _GENERATOR_SAFE:
                    findings.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            f"legacy global-state call np.random.{attr}(); "
                            "thread an explicit np.random.Generator instead",
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy.random" and node.level == 0:
                    for alias in node.names:
                        if alias.name not in _GENERATOR_SAFE:
                            findings.append(
                                ctx.finding(
                                    node,
                                    self.rule_id,
                                    f"import of legacy numpy.random.{alias.name}; "
                                    "use the Generator API",
                                )
                            )
        return findings


@register
class UnseededDefaultRngRule(Rule):
    """RNG002 — no argument-less ``default_rng()`` in library code."""

    rule_id = "RNG002"
    title = "no argument-less default_rng() outside test fixtures"
    rationale = (
        "default_rng() with no seed draws OS entropy, so every run takes "
        "a different trajectory and failures cannot be replayed. Library "
        "code must accept a seed or Generator from its caller."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            func = node.func
            is_default_rng = (
                isinstance(func, ast.Name) and func.id == "default_rng"
            ) or _np_random_attr(func) == "default_rng"
            if is_default_rng:
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        "argument-less default_rng() is non-reproducible; "
                        "pass a seed or accept a Generator parameter",
                    )
                )
        return findings


def _param_names(args: ast.arguments) -> Set[str]:
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


@register
class UnthreadedRngRule(Rule):
    """RNG003 — stochastic functions must accept their Generator."""

    rule_id = "RNG003"
    title = "functions calling .random()/sample_events() take an rng parameter"
    rationale = (
        "A function that draws randomness but constructs its own "
        "generator (or reaches for one it was never handed) breaks the "
        "seed-threading chain: callers can no longer place it on an "
        "independent substream, and resume semantics are lost."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        self._visit(ctx, ctx.tree, [], findings)
        return findings

    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        param_stack: List[Set[str]],
        findings: List[Finding],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            param_stack = param_stack + [_param_names(node.args)]
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call):
                self._check_call(ctx, child, param_stack, findings)
            self._visit(ctx, child, param_stack, findings)

    def _check_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        param_stack: List[Set[str]],
        findings: List[Finding],
    ) -> None:
        visible: Set[str] = set().union(*param_stack) if param_stack else set()
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "random":
            recv = func.value
            # Attribute receivers (self._rng.random()) hold an injected
            # generator; bare names must be parameters of an enclosing
            # function, not locals built from make_rng()/default_rng().
            if isinstance(recv, ast.Name) and recv.id not in visible:
                findings.append(
                    ctx.finding(
                        call,
                        self.rule_id,
                        f"{recv.id}.random() drawn from a generator that is "
                        "not a function parameter; accept an rng argument "
                        "instead of constructing one",
                    )
                )
        elif isinstance(func, ast.Name) and func.id == "sample_events":
            rng_arg = self._rng_argument(call)
            ok = isinstance(rng_arg, ast.Attribute) or (
                isinstance(rng_arg, ast.Name) and rng_arg.id in visible
            )
            if not ok:
                findings.append(
                    ctx.finding(
                        call,
                        self.rule_id,
                        "sample_events() must be passed a threaded rng "
                        "(a function parameter or an injected attribute), "
                        "not a freshly constructed generator",
                    )
                )

    @staticmethod
    def _rng_argument(call: ast.Call) -> Optional[ast.expr]:
        for kw in call.keywords:
            if kw.arg == "rng":
                return kw.value
        if len(call.args) >= 3:
            return call.args[2]
        return None


#: Call targets that construct a Generator (or the project's factory).
_RNG_CONSTRUCTORS = frozenset({"default_rng", "make_rng", "Generator"})


@register
class ModuleLevelGeneratorRule(Rule):
    """RNG004 — no Generator construction outside a function body."""

    rule_id = "RNG004"
    title = "no module/class-level Generator construction"
    rationale = (
        "A Generator built at import time (module global, class "
        "attribute, or default-argument value) is one shared stream for "
        "the whole process — and multiprocessing forks or pickles clone "
        "it into identical copies, so parallel workers silently draw "
        "correlated randomness. Construct generators inside functions "
        "from an explicit seed or a named substream "
        "(``RngFactory.fresh``), as the parallel experiment runner does."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        self._visit(ctx, ctx.tree, in_function=False, findings=findings)
        return findings

    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        in_function: bool,
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if not in_function and isinstance(child, ast.Call):
                name = self._constructor_name(child.func)
                if name is not None:
                    findings.append(
                        ctx.finding(
                            child,
                            self.rule_id,
                            f"{name}() at import time creates a Generator "
                            "shared across callers and cloned by worker "
                            "processes; construct it inside the function "
                            "that uses it",
                        )
                    )
            is_function = isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            if is_function and not in_function:
                # Default-argument values still evaluate at import time.
                defaults = list(child.args.defaults) + [
                    d for d in child.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    self._visit(ctx, ast.Expr(value=default), False, findings)
            self._visit(ctx, child, in_function or is_function, findings)

    @staticmethod
    def _constructor_name(func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id in _RNG_CONSTRUCTORS:
            return func.id
        attr = _np_random_attr(func)
        if attr in _RNG_CONSTRUCTORS:
            return f"np.random.{attr}"
        return None
