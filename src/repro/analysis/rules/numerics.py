"""Numerics rules: log-domain safety goes through ``repro.numerics``.

The repository-wide convention after the guarded-numerics refactor:
probability-domain logarithms never hand-roll their own underflow
floor. The ad-hoc idiom ``np.log(np.maximum(p, 1e-300))`` (and its
``np.clip`` / builtin ``max`` variants) scatters magic floors across
solvers and is exactly what :func:`repro.numerics.safe_log` /
:func:`repro.numerics.safe_log2` centralize — one floor constant, one
negativity check, one place to audit.
"""

from __future__ import annotations

import ast
from typing import List

from ..base import FileContext, Rule, register
from ..findings import Finding

__all__ = ["AdHocLogFloorRule"]


def _is_floor_call(node: ast.AST) -> bool:
    """A call that clamps its argument from below: ``np.maximum``,
    ``np.clip``, or the builtin ``max``.

    Clamps against an *integer* literal (``max(n, 2)`` on a count) are
    not probability floors and are ignored.
    """
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    is_max = isinstance(func, ast.Name) and func.id == "max"
    is_np = isinstance(func, ast.Attribute) and func.attr in ("maximum", "clip")
    if not (is_max or is_np):
        return False
    for arg in node.args:
        if isinstance(arg, ast.Constant) and type(arg.value) is int:
            return False
    return True


@register
class AdHocLogFloorRule(Rule):
    """NUM001 — no hand-rolled floors inside ``np.log``/``np.log2``."""

    rule_id = "NUM001"
    title = "probability logs use repro.numerics safe_log/safe_log2, not ad-hoc floors"
    rationale = (
        "np.log(np.maximum(p, 1e-300)) repeated per solver means every "
        "solver picks its own floor, none rejects negative "
        "probabilities, and an audit has to find them all. "
        "repro.numerics.safe_log / safe_log2 centralize the floor and "
        "validate the domain; only repro.numerics itself may implement "
        "the idiom."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.module is not None and (
            ctx.module == "repro.numerics"
            or ctx.module.startswith("repro.numerics.")
        ):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("log", "log2")
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
            ):
                continue
            if any(
                _is_floor_call(sub)
                for arg in node.args
                for sub in ast.walk(arg)
            ):
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"ad-hoc floor inside np.{func.attr}; use "
                        "repro.numerics.safe_log"
                        + ("2" if func.attr == "log2" else "")
                        + " (centralized floor + domain validation)",
                    )
                )
        return findings
