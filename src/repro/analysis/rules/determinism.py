"""Determinism rule: no wall-clock reads in simulation logic.

Simulation results must be a pure function of (code, seed,
parameters). Wall-clock time sneaking into a hot path makes runs
irreproducible and breaks the checkpoint/resume guarantee. The one
legitimate consumer is the experiment runner's wall-clock *budget*,
which controls how long a campaign runs, never what it computes — those
sites carry ``# repro: noqa[DET001]`` with a justifying comment.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..base import FileContext, Rule, register
from ..findings import Finding

__all__ = ["WallClockRule"]

_TIME_FUNCS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "monotonic_ns", "time_ns"}
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


def _wall_clock_call(func: ast.AST) -> Optional[str]:
    """Return a dotted name when *func* reads the wall clock."""
    if not isinstance(func, ast.Attribute):
        return None
    if (
        isinstance(func.value, ast.Name)
        and func.value.id == "time"
        and func.attr in _TIME_FUNCS
    ):
        return f"time.{func.attr}"
    if func.attr in _DATETIME_FUNCS:
        value = func.value
        if isinstance(value, ast.Name) and value.id in ("datetime", "date"):
            return f"{value.id}.{func.attr}"
        if isinstance(value, ast.Attribute) and value.attr in ("datetime", "date"):
            return f"datetime.{value.attr}.{func.attr}"
    return None


@register
class WallClockRule(Rule):
    """DET001 — no ``time.time()`` / ``datetime.now()`` in hot paths."""

    rule_id = "DET001"
    title = "no wall-clock reads (time.time/datetime.now) in simulation code"
    rationale = (
        "Results must depend only on code, seed, and parameters; a "
        "wall-clock read in core/sync/simulation/faults logic makes "
        "reruns diverge. Wall clock belongs only to the runner's "
        "time budget, which is explicitly suppressed."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _wall_clock_call(node.func)
            if dotted is not None:
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"wall-clock read {dotted}() in simulation code; "
                        "results must be a function of (code, seed, "
                        "parameters) only",
                    )
                )
        return findings
