"""Probability-domain rules: boundary tests and validated dataclasses.

Channel parameters, fault rates, and error rates are all probabilities.
Two conventions keep them trustworthy: boundary comparisons go through
:func:`repro.infotheory.is_zero` / :func:`repro.infotheory.is_one`
(never ``== 0.0`` / ``== 1.0`` on floats), and dataclasses carrying
probability fields validate them into [0, 1] in ``__post_init__`` via
:func:`repro.infotheory.validate_probability`.
"""

from __future__ import annotations

import ast
from typing import List

from ..base import FileContext, Rule, register
from ..findings import Finding

__all__ = ["FloatEqualityRule", "UnvalidatedProbabilityFieldsRule"]


def _is_boundary_float(node: ast.AST) -> bool:
    """True for the literal floats ``0.0`` and ``1.0`` (not ints)."""
    return (
        isinstance(node, ast.Constant)
        and type(node.value) is float
        and node.value in (0.0, 1.0)
    )


@register
class FloatEqualityRule(Rule):
    """PROB001 — no ``==``/``!=`` against the float literals 0.0/1.0."""

    rule_id = "PROB001"
    title = "boundary tests use is_zero/is_one, not float equality"
    rationale = (
        "Probabilities that are 0 or 1 in exact arithmetic come back "
        "as 1e-17 from floating point; '== 0.0' then silently flips "
        "branches such as 'is the feedback path perfect?'. Use "
        "repro.infotheory.is_zero / is_one, which apply an explicit "
        "absolute tolerance."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for idx, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[idx], operands[idx + 1]
                if _is_boundary_float(left) or _is_boundary_float(right):
                    findings.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            "float equality against 0.0/1.0; use "
                            "repro.infotheory.is_zero / is_one for "
                            "probability-domain boundary tests",
                        )
                    )
        return findings


def _is_dataclass_decorator(dec: ast.expr) -> bool:
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


def _probability_field(name: str) -> bool:
    return name.startswith("p_") or name.endswith("_prob")


@register
class UnvalidatedProbabilityFieldsRule(Rule):
    """PROB002 — probability dataclass fields validate in __post_init__."""

    rule_id = "PROB002"
    title = "dataclasses with p_*/*_prob fields validate [0, 1] in __post_init__"
    rationale = (
        "A fault rate of 1.3 or -0.05 constructed without complaint "
        "produces plausible-looking but meaningless rate curves. "
        "Dataclasses holding probabilities must reject out-of-domain "
        "values at construction (repro.infotheory.validate_probability)."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
                continue
            prob_fields = [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and _probability_field(stmt.target.id)
            ]
            if not prob_fields:
                continue
            has_post_init = any(
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__post_init__"
                for stmt in node.body
            )
            if not has_post_init:
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"dataclass {node.name} has probability fields "
                        f"({', '.join(prob_fields)}) but no __post_init__ "
                        "validation; use repro.infotheory."
                        "validate_probability",
                    )
                )
        return findings
