"""Service-layer rule: no blocking solver calls inside coroutines.

The capacity-query service keeps its event loop responsive by routing
every solve through the worker tier (``loop.run_in_executor`` over the
supervised process pool) or through the O(1) synchronous shed ladder in
:mod:`repro.service.shedding`. A solver called *directly* inside an
``async def`` blocks the loop for the duration of the solve — every
queued query's deadline keeps ticking while nothing is dispatched,
which is exactly the latency collapse the service exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from ..base import FileContext, Rule, register
from ..findings import Finding

__all__ = ["AsyncSolverCallRule"]

#: Top-level ``repro`` packages whose callables do solver work. Calls
#: into these from coroutine bodies must go through the worker tier.
SOLVER_ROOTS = frozenset(
    {
        "core",
        "infotheory",
        "bounds",
        "timing",
        "coding",
        "sync",
        "os_model",
        "network",
    }
)


def _solver_root(module: str, level: int) -> bool:
    """Whether an import source resolves into a solver package.

    Handles absolute (``repro.core.capacity``) and relative
    (``..core.capacity``, i.e. ``level >= 1`` with ``module``
    ``"core.capacity"``) forms.
    """
    parts = module.split(".") if module else []
    if level == 0 and parts and parts[0] == "repro":
        parts = parts[1:]
    return bool(parts) and parts[0] in SOLVER_ROOTS


def _solver_bindings(tree: ast.Module) -> "tuple[Set[str], Set[str]]":
    """Names bound to solver callables and to solver module aliases.

    Returns ``(callables, modules)``: ``from repro.core.capacity import
    erasure_upper_bound`` binds a callable name; ``import
    repro.core.capacity as cap`` (or ``from repro.core import
    capacity``) binds a module alias whose attribute calls are solver
    calls.
    """
    callables: Set[str] = set()
    modules: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module is None and node.level:
                # "from . import x" — x itself may be a solver package.
                for alias in node.names:
                    if alias.name in SOLVER_ROOTS:
                        modules.add(alias.asname or alias.name)
                continue
            if _solver_root(node.module or "", node.level):
                for alias in node.names:
                    callables.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro":
                    parts = parts[1:]
                if parts and parts[0] in SOLVER_ROOTS:
                    modules.add(alias.asname or alias.name.split(".")[0])
    return callables, modules


def _attribute_root(node: ast.Attribute) -> str:
    value: ast.expr = node
    while isinstance(value, ast.Attribute):
        value = value.value
    return value.id if isinstance(value, ast.Name) else ""


@register
class AsyncSolverCallRule(Rule):
    """SVC001 — coroutines must not call solvers directly."""

    rule_id = "SVC001"
    title = "no direct solver calls inside async def (route via worker tier)"
    rationale = (
        "A capacity solve called directly in a coroutine blocks the "
        "event loop: admission, batching, deadline timers, and breaker "
        "probes all stall behind it, so one heavy query degrades every "
        "other query's latency. Solves must cross to the worker tier "
        "(run_in_executor over the supervised pool) or use the "
        "synchronous shed-ladder helpers in repro.service.shedding."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        # The rule constrains the service layer; solver packages call
        # themselves freely (and have no coroutines anyway).
        if ctx.module is not None and not ctx.module.startswith(
            "repro.service"
        ):
            return []
        callables, modules = _solver_bindings(ctx.tree)
        if not callables and not modules:
            return []
        findings: List[Finding] = []
        for outer in ast.walk(ctx.tree):
            if not isinstance(outer, ast.AsyncFunctionDef):
                continue
            # Nested sync defs still execute on the loop thread when
            # called from the coroutine, so the whole subtree counts —
            # except nested async defs, walked in their own right.
            for node in ast.walk(outer):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                dotted: str = ""
                if isinstance(func, ast.Name) and func.id in callables:
                    dotted = func.id
                elif (
                    isinstance(func, ast.Attribute)
                    and _attribute_root(func) in modules
                ):
                    dotted = f"{_attribute_root(func)}.{func.attr}"
                if dotted:
                    findings.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            f"solver call {dotted}() inside async def "
                            f"{outer.name!r} blocks the event loop; "
                            "dispatch through the worker tier "
                            "(run_in_executor) or the sync shed ladder",
                        )
                    )
        return findings
