"""Registry completeness rule: every experiment is fully wired up.

An experiment module that exists but is missing from the registry, the
benchmark suite, or EXPERIMENTS.md is invisible to ``repro-covert run
all``, to the regression tables, and to readers — the most common way a
reproduction silently loses coverage.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import List, Set

from ..base import ProjectContext, Rule, register
from ..findings import Finding

__all__ = ["ExperimentWiringRule"]

_MODULE_RE = re.compile(r"^e(\d+)_\w+\.py$")


def _registry_keys(registry_path: Path) -> Set[str]:
    """Statically read the keys of the EXPERIMENTS dict literal."""
    tree = ast.parse(registry_path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "EXPERIMENTS"
                and isinstance(getattr(node, "value", None), ast.Dict)
            ):
                value = node.value
                assert isinstance(value, ast.Dict)
                return {
                    key.value
                    for key in value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                }
    return set()


@register
class ExperimentWiringRule(Rule):
    """REG001 — experiments appear in registry, benchmarks, and docs."""

    rule_id = "REG001"
    title = "every experiments/e*.py is registered, benchmarked, documented"
    rationale = (
        "An experiment missing from the registry never runs under "
        "'run all'; one missing a benchmark has no regression gate; one "
        "absent from EXPERIMENTS.md has unreported results. All three "
        "surfaces must list every experiment module."
    )
    scope = "project"

    def check_project(self, ctx: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        experiments_dir = ctx.package_dir / "experiments"
        if not experiments_dir.is_dir():
            return findings
        registry_path = experiments_dir / "registry.py"
        registry_keys = (
            _registry_keys(registry_path) if registry_path.is_file() else set()
        )
        benchmarks_dir = ctx.root / "benchmarks"
        experiments_md = ctx.root / "EXPERIMENTS.md"
        md_text = (
            experiments_md.read_text(encoding="utf-8")
            if experiments_md.is_file()
            else ""
        )

        for module_path in sorted(experiments_dir.glob("e*.py")):
            match = _MODULE_RE.match(module_path.name)
            if match is None:
                continue
            experiment_id = f"E{int(match.group(1))}"
            if experiment_id not in registry_keys:
                findings.append(
                    ctx.finding(
                        registry_path if registry_path.is_file() else module_path,
                        1,
                        self.rule_id,
                        f"experiment module {module_path.name} has no "
                        f"{experiment_id!r} entry in the EXPERIMENTS registry",
                    )
                )
            stem = module_path.stem  # e.g. "e8_coding"
            bench_pattern = f"test_bench_{stem.split('_')[0]}_*.py"
            if not (
                benchmarks_dir.is_dir() and list(benchmarks_dir.glob(bench_pattern))
            ):
                findings.append(
                    ctx.finding(
                        module_path,
                        1,
                        self.rule_id,
                        f"experiment {experiment_id} has no benchmarks/"
                        f"{bench_pattern} regression benchmark",
                    )
                )
            if not re.search(rf"\b{experiment_id}\b", md_text):
                findings.append(
                    ctx.finding(
                        experiments_md,
                        1,
                        self.rule_id,
                        f"experiment {experiment_id} is not mentioned in "
                        "EXPERIMENTS.md",
                    )
                )
        return findings
