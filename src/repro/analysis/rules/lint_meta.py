"""LINT001: suppression directives that suppress nothing.

A ``# repro: noqa[RULE]`` is a standing waiver of an invariant; one
that no longer matches any finding is a waiver of *nothing* — it
outlives the code it excused and silently swallows the next real
finding on that line. This is ruff's unused-``noqa`` check, adapted to
the repro directive syntax.

The check is a **meta** rule: it inspects the lint run itself, so the
runner drives it directly (after the file pass, with the raw
pre-suppression findings in hand) rather than through ``check()``.
Three decision cases per directive id:

* unknown id → always flagged (a typo like ``noqa[DET01]`` waives
  nothing and hides the intended waiver);
* id among the rules this run actually executed, with no raw finding
  of that id on the line → flagged as unused;
* id registered but *not executed* (a ``--rule``-filtered run), or a
  ``GRAPH00x`` id → not flagged: graph waivers act at a distance
  (they waive effect *origins* from transitive propagation, which
  produces no finding on the directive's own line), and a filtered
  run has no evidence either way.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..base import Rule, all_rule_ids, register
from ..findings import Finding

__all__ = ["UnusedSuppressionRule"]

#: Rule-id prefixes whose directives act at a distance (no same-line
#: finding even when honored) and are therefore exempt from LINT001.
_NON_LOCAL_PREFIXES = ("GRAPH",)


@register
class UnusedSuppressionRule(Rule):
    """LINT001: flag ``# repro: noqa[...]`` ids that suppress nothing."""

    rule_id = "LINT001"
    title = "no unused suppression directives"
    rationale = (
        "A noqa that matches no finding is a stale waiver: it documents "
        "an invariant breach that no longer exists and will silently "
        "swallow the next real finding on its line."
    )
    scope = "meta"

    def check_directives(
        self,
        display_path: str,
        directives: Dict[int, FrozenSet[str]],
        raw_findings: Sequence[Finding],
        executed_ids: Set[str],
    ) -> List[Finding]:
        """Findings for unused directive ids in one file.

        *raw_findings* are the file's findings **before** suppression
        filtering; *executed_ids* the file-scoped rule ids this run
        actually checked.
        """
        known = set(all_rule_ids())
        hit: Set[Tuple[int, str]] = {
            (f.line, f.rule_id) for f in raw_findings
        }
        findings: List[Finding] = []
        for line in sorted(directives):
            for directive_id in sorted(directives[line]):
                if directive_id not in known:
                    findings.append(
                        Finding(
                            file=display_path,
                            line=line,
                            col=0,
                            rule_id=self.rule_id,
                            message=(
                                f"suppression names unknown rule id "
                                f"{directive_id!r}; it suppresses "
                                "nothing (typo?)"
                            ),
                        )
                    )
                    continue
                if directive_id.startswith(_NON_LOCAL_PREFIXES):
                    continue  # graph waivers act at a distance
                if directive_id not in executed_ids:
                    continue  # filtered run: no evidence either way
                if (line, directive_id) not in hit:
                    findings.append(
                        Finding(
                            file=display_path,
                            line=line,
                            col=0,
                            rule_id=self.rule_id,
                            message=(
                                f"unused suppression: no {directive_id} "
                                "finding on this line; remove the "
                                "directive"
                            ),
                        )
                    )
        return findings
