"""Estimation-locality rule: kd-tree neighbour searches live in
``repro.estimation``.

The kNN estimators' statistical guarantees depend on conventions that
are easy to get subtly wrong — Chebyshev metric, strict-inequality
marginal counts via ``np.nextafter``, self-exclusion in pooled ball
counts, and deterministic tie-breaking jitter drawn from a named RNG
substream. :mod:`repro.estimation.knn` implements those conventions
once and pins them to O(n^2) reference oracles bit-for-bit. A
``cKDTree`` constructed anywhere else would re-derive the conventions
from scratch, silently diverge (a ``<=`` where ``<`` is needed biases
every count), and escape the oracle parity gates. This rule keeps all
kd-tree usage behind the one audited implementation.
"""

from __future__ import annotations

import ast
from typing import List

from ..base import FileContext, Rule, register
from ..findings import Finding

__all__ = ["KdTreeLocalityRule"]

#: Names that construct a scipy kd-tree. Both spellings are fenced:
#: ``KDTree`` is the documented alias of ``cKDTree`` since scipy 1.6.
_TREE_NAMES = frozenset({"cKDTree", "KDTree"})


def _is_tree_attribute(node: ast.Attribute) -> bool:
    """Whether *node* dereferences ``<something>.spatial.cKDTree`` (or
    ``KDTree``) — the fully qualified spelling that dodges a plain
    import check."""
    if node.attr not in _TREE_NAMES:
        return False
    value = node.value
    if isinstance(value, ast.Attribute) and value.attr == "spatial":
        return True
    if isinstance(value, ast.Name) and value.id == "spatial":
        return True
    return False


@register
class KdTreeLocalityRule(Rule):
    """EST001 — kd-tree neighbour search only inside ``repro.estimation``."""

    rule_id = "EST001"
    title = "scipy kd-trees constructed only inside repro.estimation"
    rationale = (
        "The kNN MI estimators depend on exact neighbour-counting "
        "conventions (Chebyshev metric, strict-inequality radii, "
        "self-exclusion, deterministic tie-break jitter) that "
        "repro.estimation.knn implements once and pins to O(n^2) "
        "oracles bit-for-bit. A cKDTree/KDTree built elsewhere "
        "re-derives those conventions unaudited and escapes the "
        "parity gates; route neighbour searches through the "
        "repro.estimation API instead."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.module is not None and (
            ctx.module == "repro.estimation"
            or ctx.module.startswith("repro.estimation.")
        ):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module and "scipy" in node.module.split("."):
                    for alias in node.names:
                        if alias.name in _TREE_NAMES:
                            findings.append(
                                ctx.finding(
                                    node,
                                    self.rule_id,
                                    f"{alias.name} imported outside "
                                    "repro.estimation; use the "
                                    "repro.estimation estimators",
                                )
                            )
            elif isinstance(node, ast.Attribute) and _is_tree_attribute(
                node
            ):
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"scipy.spatial.{node.attr} referenced outside "
                        "repro.estimation; use the repro.estimation "
                        "estimators",
                    )
                )
        return findings
