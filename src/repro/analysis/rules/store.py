"""Store-discipline rule: the result store is accessed through
``repro.store`` only.

The store's correctness rests on two invariants that are easy to break
from the outside: entries are published atomically (stage under
``tmp/``, one ``os.rename``), and caching is resolved through one
choke point (:func:`repro.store.active_store`). Code that writes into
a store's ``objects/`` layout directly can publish partial entries
that readers then decode; code that reads ``REPRO_STORE_DIR`` itself
forks the activation logic (and silently diverges from explicit
``use_store`` handles). Both belong in :mod:`repro.store`.
"""

from __future__ import annotations

import ast
from typing import List

from ..base import FileContext, Rule, register
from ..findings import Finding

__all__ = ["StoreDisciplineRule"]

#: Path methods that mutate the filesystem; calling one on a path
#: derived from a store's object layout bypasses the atomic publish.
_WRITE_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "mkdir",
        "unlink",
        "rename",
        "replace",
        "rmdir",
        "touch",
        "open",
        "symlink_to",
        "hardlink_to",
    }
)


def _mentions_store_layout(node: ast.AST) -> bool:
    """Whether the expression dereferences a store's object layout —
    an ``objects_dir`` attribute or a ``path_for(...)`` call."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "objects_dir":
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "path_for"
        ):
            return True
    return False


def _reads_store_env(node: ast.Call) -> bool:
    """Whether *node* is an environment read of ``REPRO_STORE_DIR``:
    ``os.getenv(...)`` / ``os.environ.get(...)`` with the variable name
    as an argument, or ``os.environ[...]`` handled separately."""
    func = node.func
    is_getenv = isinstance(func, ast.Name) and func.id == "getenv"
    if isinstance(func, ast.Attribute):
        if func.attr == "getenv":
            is_getenv = True
        elif func.attr == "get":
            value = func.value
            if (
                isinstance(value, ast.Attribute) and value.attr == "environ"
            ) or (isinstance(value, ast.Name) and value.id == "environ"):
                is_getenv = True
    if not is_getenv:
        return False
    return any(
        isinstance(arg, ast.Constant) and arg.value == "REPRO_STORE_DIR"
        for arg in node.args
    )


def _subscripts_store_env(node: ast.Subscript) -> bool:
    value = node.value
    is_environ = (
        isinstance(value, ast.Attribute) and value.attr == "environ"
    ) or (isinstance(value, ast.Name) and value.id == "environ")
    if not is_environ:
        return False
    sl = node.slice
    return isinstance(sl, ast.Constant) and sl.value == "REPRO_STORE_DIR"


@register
class StoreDisciplineRule(Rule):
    """STORE001 — store access goes through ``repro.store``."""

    rule_id = "STORE001"
    title = "result-store layout and activation accessed only via repro.store"
    rationale = (
        "Writing into a store's objects/ layout directly publishes "
        "partial entries that break the atomic-rename contract readers "
        "rely on; reading REPRO_STORE_DIR outside repro.store forks the "
        "activation logic, so explicit use_store handles and the "
        "environment can disagree about whether caching is on. Both "
        "must go through the repro.store API (ResultStore.put, "
        "active_store/resolve_store)."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.module is not None and (
            ctx.module == "repro.store"
            or ctx.module.startswith("repro.store.")
        ):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _WRITE_METHODS
                    and _mentions_store_layout(func.value)
                ):
                    findings.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            f"direct {func.attr}() into the store layout "
                            "bypasses the atomic publish; use "
                            "ResultStore.put/delete/gc",
                        )
                    )
                elif _reads_store_env(node):
                    findings.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            "REPRO_STORE_DIR read outside repro.store; "
                            "use repro.store.active_store/resolve_store",
                        )
                    )
            elif isinstance(node, ast.Subscript) and _subscripts_store_env(
                node
            ):
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        "REPRO_STORE_DIR read outside repro.store; "
                        "use repro.store.active_store/resolve_store",
                    )
                )
        return findings
