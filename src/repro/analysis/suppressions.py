"""Inline suppression directives: ``# repro: noqa[RULE1,RULE2]``.

A finding is suppressed when the physical line it is anchored to
carries a directive naming its rule id. Rule ids are matched
case-insensitively; several ids may be listed, comma separated. The
bare form ``# repro: noqa`` (without brackets) is deliberately *not*
supported — suppressions must name the rule they silence so they stay
auditable (``grep 'repro: noqa'`` shows exactly which invariant is
waived where, and why the adjacent comment says so).

Only genuine ``#`` comments count: the scanner tokenizes the source,
so directive syntax *mentioned* inside a docstring or string literal
(documentation, a lint-rule message) neither suppresses anything nor
trips the LINT001 unused-suppression check.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Tuple

__all__ = ["SuppressionIndex"]

_DIRECTIVE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """``(line, text)`` for every comment token; [] on tokenize errors
    (the caller's ast.parse will report the syntax problem)."""
    comments: List[Tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    return comments


class SuppressionIndex:
    """Per-line map of suppressed rule ids for one source file."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]]) -> None:
        self._by_line = by_line

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan *source* comments for ``# repro: noqa[...]`` directives."""
        by_line: Dict[int, FrozenSet[str]] = {}
        for lineno, text in _comment_tokens(source):
            ids: List[str] = []
            for match in _DIRECTIVE.finditer(text):
                ids.extend(
                    part.strip().upper()
                    for part in match.group(1).split(",")
                    if part.strip()
                )
            if ids:
                by_line[lineno] = frozenset(
                    by_line.get(lineno, frozenset()) | frozenset(ids)
                )
        return cls(by_line)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True when *rule_id* is waived on physical line *line*."""
        return rule_id.upper() in self._by_line.get(line, frozenset())

    def directives(self) -> Dict[int, FrozenSet[str]]:
        """The ``{line: rule ids}`` map (for unused-suppression checks)."""
        return dict(self._by_line)

    def __len__(self) -> int:
        return len(self._by_line)
