"""The lint finding record and its text/JSON renderings."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Sequence

__all__ = ["Finding", "format_text", "format_json"]


@dataclass(frozen=True, order=True)
class Finding:
    """One linter finding, anchored to a file location.

    Attributes
    ----------
    file:
        Path of the offending file, as it should be reported (repo
        relative when the linter knows the project root).
    line / col:
        1-based line and 0-based column of the offending node.
    rule_id:
        Identifier of the rule that fired (e.g. ``"PROB001"``).
    message:
        Human-readable description of the violation and the fix.
    """

    file: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``file:line:col: RULE message``."""
        return f"{self.file}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def format_text(findings: Sequence[Finding]) -> str:
    """Render findings one per line, with a trailing count summary."""
    lines: List[str] = [f.format() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Render findings as a JSON array of objects (stable key order)."""
    return json.dumps([asdict(f) for f in findings], indent=2, sort_keys=True)
