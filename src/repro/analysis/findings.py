"""The lint finding record and its text/JSON/SARIF renderings."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Finding", "format_text", "format_json", "format_sarif"]


@dataclass(frozen=True, order=True)
class Finding:
    """One linter finding, anchored to a file location.

    Attributes
    ----------
    file:
        Path of the offending file, as it should be reported (repo
        relative when the linter knows the project root).
    line / col:
        1-based line and 0-based column of the offending node.
    rule_id:
        Identifier of the rule that fired (e.g. ``"PROB001"``).
    message:
        Human-readable description of the violation and the fix.
    """

    file: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``file:line:col: RULE message``."""
        return f"{self.file}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def format_text(findings: Sequence[Finding]) -> str:
    """Render findings one per line, with a trailing count summary."""
    lines: List[str] = [f.format() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Render findings as a JSON array of objects (stable key order)."""
    return json.dumps([asdict(f) for f in findings], indent=2, sort_keys=True)


def format_sarif(
    findings: Sequence[Finding],
    *,
    rules: Optional[Sequence[Any]] = None,
) -> str:
    """Render findings as a SARIF 2.1.0 log (one run, driver repro-lint).

    *rules*, when given, is a sequence of registered rule objects
    (``rule_id``/``title``/``rationale``) used to populate the driver's
    rule metadata so SARIF consumers (GitHub code scanning) can show
    titles and help text next to each annotation. Findings whose rule
    id is absent from *rules* still render — SARIF permits results
    without a matching rule descriptor.
    """
    rule_meta: List[Dict[str, Any]] = []
    index_of: Dict[str, int] = {}
    for rule in rules or ():
        index_of[rule.rule_id] = len(rule_meta)
        rule_meta.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale},
            }
        )
    results: List[Dict[str, Any]] = []
    for f in findings:
        result: Dict[str, Any] = {
            "ruleId": f.rule_id,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.file.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": f.line,
                            # SARIF columns are 1-based; Finding.col
                            # mirrors ast's 0-based col_offset.
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        if f.rule_id in index_of:
            result["ruleIndex"] = index_of[f.rule_id]
        results.append(result)
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rule_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
