"""Uniprocessor schedulers.

The paper (§3.2): *"Our method can be used to evaluate the effectiveness
of candidate system implementations, e.g., the scheduler, in reducing
covert channel capacities."* Each scheduler below induces a different
interleaving of the sender and receiver processes, hence different
deletion/insertion statistics for the §3.1 storage channel — measured
by :mod:`repro.os_model.measurement` and ranked in experiment E7.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from .process import Process

__all__ = [
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "LotteryScheduler",
    "PriorityScheduler",
    "FuzzyTimeScheduler",
    "StrideScheduler",
    "MultilevelFeedbackScheduler",
]


class Scheduler(abc.ABC):
    """Picks which ready process runs next."""

    name = "abstract"

    @abc.abstractmethod
    def select(
        self, ready: Sequence[Process], rng: np.random.Generator
    ) -> Process:
        """Return the process to run for the next quantum."""

    def reset(self) -> None:
        """Clear internal state between kernel runs (default: nothing)."""


class RoundRobinScheduler(Scheduler):
    """Strict circular order — the covert pair's best case.

    Perfect alternation between sender and receiver (when they are the
    only ready processes) yields a synchronous channel:
    ``P_d = P_i = 0``.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, ready: Sequence[Process], rng: np.random.Generator) -> Process:
        if not ready:
            raise ValueError("no ready processes")
        proc = ready[self._next % len(ready)]
        self._next += 1
        return proc

    def reset(self) -> None:
        self._next = 0


class RandomScheduler(Scheduler):
    """Uniformly random choice each quantum.

    Two competing processes each run with probability 1/2, so the
    sender is scheduled twice in a row (a deletion) or the receiver
    twice in a row (an insertion) each with probability ~ 1/2 per
    symbol — a heavily non-synchronous channel.
    """

    name = "random"

    def select(self, ready: Sequence[Process], rng: np.random.Generator) -> Process:
        if not ready:
            raise ValueError("no ready processes")
        return ready[int(rng.integers(0, len(ready)))]


class LotteryScheduler(Scheduler):
    """Ticket-proportional random scheduling (Waldspurger & Weihl)."""

    name = "lottery"

    def select(self, ready: Sequence[Process], rng: np.random.Generator) -> Process:
        if not ready:
            raise ValueError("no ready processes")
        tickets = np.asarray([p.tickets for p in ready], dtype=float)
        probs = tickets / tickets.sum()
        return ready[int(rng.choice(len(ready), p=probs))]


class PriorityScheduler(Scheduler):
    """Strict priority with round-robin among the top priority class."""

    name = "priority"

    def __init__(self) -> None:
        self._rr = 0

    def select(self, ready: Sequence[Process], rng: np.random.Generator) -> Process:
        if not ready:
            raise ValueError("no ready processes")
        top = max(p.priority for p in ready)
        candidates = [p for p in ready if p.priority == top]
        proc = candidates[self._rr % len(candidates)]
        self._rr += 1
        return proc

    def reset(self) -> None:
        self._rr = 0


class FuzzyTimeScheduler(Scheduler):
    """A covert-channel *countermeasure* scheduler.

    Mostly round-robin, but with probability ``fuzz`` it re-runs the
    same process for an extra quantum (randomized quantum lengths /
    fuzzy time, in the spirit of Hu's fuzzy-time defenses). The extra
    same-process quanta are precisely what manufactures deletions and
    insertions on the storage channel, degrading its capacity — the
    design-space point E7 quantifies.
    """

    name = "fuzzy-time"

    def __init__(self, fuzz: float = 0.3) -> None:
        if not 0.0 <= fuzz < 1.0:
            raise ValueError("fuzz must be in [0, 1)")
        self.fuzz = fuzz
        self._next = 0
        self._last: Process = None  # type: ignore[assignment]

    def select(self, ready: Sequence[Process], rng: np.random.Generator) -> Process:
        if not ready:
            raise ValueError("no ready processes")
        if self._last is not None and self._last in ready and rng.random() < self.fuzz:
            return self._last
        proc = ready[self._next % len(ready)]
        self._next += 1
        self._last = proc
        return proc

    def reset(self) -> None:
        self._next = 0
        self._last = None  # type: ignore[assignment]


class StrideScheduler(Scheduler):
    """Deterministic proportional-share scheduling (Waldspurger 1995).

    Each process advances a virtual "pass" by ``stride = BIG / tickets``
    when it runs; the lowest pass runs next. With equal tickets this
    degenerates to round-robin, so the covert pair sees a synchronous
    channel — the deterministic counterpart of the lottery scheduler,
    included to show that proportional *fairness* alone does not
    disturb the covert channel; *randomness* does.
    """

    name = "stride"

    _BIG = 1 << 20

    def __init__(self) -> None:
        self._pass: dict = {}

    def select(self, ready: Sequence[Process], rng: np.random.Generator) -> Process:
        if not ready:
            raise ValueError("no ready processes")
        current_pids = {p.pid for p in ready}
        # Drop state for departed processes; admit new ones at min pass.
        self._pass = {k: v for k, v in self._pass.items() if k in current_pids}
        floor = min(self._pass.values()) if self._pass else 0.0
        for p in ready:
            if p.pid not in self._pass:
                self._pass[p.pid] = floor
        chosen = min(ready, key=lambda p: (self._pass[p.pid], p.pid))
        self._pass[chosen.pid] += self._BIG / chosen.tickets
        return chosen

    def reset(self) -> None:
        self._pass = {}


class MultilevelFeedbackScheduler(Scheduler):
    """A simplified multilevel feedback queue (MLFQ).

    Processes that keep consuming quanta are demoted through ``levels``
    priority levels; a periodic boost (every ``boost_period`` quanta)
    returns everyone to the top. Within the top occupied level the
    choice is round-robin. Because the §3.1 covert pair is always
    runnable, both parties ride the demotion/boost cycle together and
    the induced interleaving is *mostly* alternating with periodic
    bursts — a realistic middle ground between round-robin and random.
    """

    name = "mlfq"

    def __init__(self, levels: int = 3, boost_period: int = 50) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1")
        if boost_period < 1:
            raise ValueError("boost_period must be >= 1")
        self.levels = levels
        self.boost_period = boost_period
        self._level: dict = {}
        self._ticks = 0
        self._rr = 0

    def select(self, ready: Sequence[Process], rng: np.random.Generator) -> Process:
        if not ready:
            raise ValueError("no ready processes")
        self._ticks += 1
        if self._ticks % self.boost_period == 0:
            self._level.clear()
        for p in ready:
            self._level.setdefault(p.pid, 0)
        top = min(self._level[p.pid] for p in ready)
        candidates = [p for p in ready if self._level[p.pid] == top]
        chosen = candidates[self._rr % len(candidates)]
        self._rr += 1
        # Consuming a full quantum demotes the process one level.
        self._level[chosen.pid] = min(self.levels - 1, self._level[chosen.pid] + 1)
        return chosen

    def reset(self) -> None:
        self._level = {}
        self._ticks = 0
        self._rr = 0
