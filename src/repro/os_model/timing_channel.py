"""A covert *timing* channel on the uniprocessor substrate.

The storage channel of §3.1 modulates a value; a timing channel
modulates *when* things happen: the sender encodes each symbol as the
number of consecutive quanta it holds the CPU before yielding, and the
receiver recovers the symbol by counting the gap between its own runs.
This is the kind of channel Moskowitz's Simple Timing Channel and the
timed Z-channel model (see :mod:`repro.timing`), so this module closes
the loop: simulate the system, measure the empirical symbol-time
distribution, and compare the achieved rate against the STC estimate
and its ``(1 - P_d)``-corrected version.

The scheduler here is cooperative-with-noise: the sender holds the CPU
for its chosen burst, then the receiver runs for one quantum — except
that with probability ``preempt_prob`` per quantum an unrelated process
steals a quantum, stretching the observed gap and corrupting the symbol
(the timing analog of a substitution; a stretch past the longest symbol
duration reads as a different symbol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..infotheory.probability import validate_probability
from ..simulation.mutual_information import plugin_mutual_information
from ..timing.stc import SimpleTimingChannel

__all__ = ["TimingChannelConfig", "TimingChannelRun", "simulate_timing_channel"]


@dataclass(frozen=True)
class TimingChannelConfig:
    """Configuration of the burst-length timing channel.

    Attributes
    ----------
    durations:
        Burst lengths (in quanta) encoding symbols ``0..k-1``; must be
        strictly increasing positive integers.
    preempt_prob:
        Per-quantum probability that background load inserts an extra
        quantum into the observed gap.
    """

    durations: tuple
    preempt_prob: float = 0.0

    def __init__(self, durations: Sequence[int], preempt_prob: float = 0.0):
        d = tuple(int(x) for x in durations)
        if not d or any(x < 1 for x in d):
            raise ValueError("durations must be positive integers")
        if list(d) != sorted(set(d)):
            raise ValueError("durations must be strictly increasing")
        object.__setattr__(self, "durations", d)
        object.__setattr__(self, "preempt_prob", preempt_prob)
        self.__post_init__()

    def __post_init__(self) -> None:
        # Called explicitly: a hand-written __init__ bypasses the
        # dataclass-generated call.
        if validate_probability(self.preempt_prob, "preempt_prob") >= 1.0:
            raise ValueError("preempt_prob must be in [0, 1)")

    @property
    def num_symbols(self) -> int:
        return len(self.durations)


@dataclass(frozen=True)
class TimingChannelRun:
    """Measured outcome of a timing-channel transfer.

    All rates are in bits per quantum, the natural clock of the kernel.
    """

    message: np.ndarray
    decoded: np.ndarray
    quanta: int
    symbol_errors: int
    empirical_rate: float
    mutual_information_rate: float
    stc_capacity: float

    @property
    def symbol_error_rate(self) -> float:
        return self.symbol_errors / self.message.size if self.message.size else 0.0


def simulate_timing_channel(
    message: np.ndarray,
    config: TimingChannelConfig,
    rng: np.random.Generator,
) -> TimingChannelRun:
    """Run the burst-length timing channel and measure it.

    Decoding snaps each observed gap to the nearest configured
    duration (ties resolve downward); preemption-stretched gaps
    therefore decode to a *larger* symbol — one-sided noise, the
    structure the timed Z-channel models.
    """
    msg = np.asarray(message, dtype=np.int64)
    if msg.ndim != 1:
        raise ValueError("message must be 1-D")
    k = config.num_symbols
    if msg.size and (msg.min() < 0 or msg.max() >= k):
        raise ValueError("message symbol out of range")
    durations = np.asarray(config.durations)

    gaps: List[int] = []
    quanta = 0
    for sym in msg:
        hold = int(durations[sym])
        # Background preemptions stretch the observed gap: each of the
        # `hold` quanta is preceded by a geometric number of stolen
        # quanta (probability `preempt_prob` per quantum).
        stretch = (
            int(rng.negative_binomial(hold, 1.0 - config.preempt_prob))
            if config.preempt_prob
            else 0
        )
        observed = hold + stretch
        gaps.append(observed)
        quanta += observed + 1  # +1 for the receiver's sampling quantum

    observed = np.asarray(gaps)
    # Nearest-duration decoding.
    boundaries = (durations[1:] + durations[:-1]) / 2.0
    decoded = np.searchsorted(boundaries, observed, side="left").astype(np.int64)
    decoded = np.minimum(decoded, k - 1)

    errors = int(np.count_nonzero(decoded != msg))
    stc = SimpleTimingChannel([float(d) + 1.0 for d in durations])
    if msg.size >= 2:
        mi = plugin_mutual_information(msg, decoded, nx=k, ny=k)
    else:
        mi = 0.0
    bits_sent = msg.size * np.log2(k) if k > 1 else 0.0
    return TimingChannelRun(
        message=msg,
        decoded=decoded,
        quanta=quanta,
        symbol_errors=errors,
        empirical_rate=bits_sent / quanta if quanta else 0.0,
        mutual_information_rate=mi * msg.size / quanta if quanta else 0.0,
        stc_capacity=stc.capacity(),
    )
