"""Multilevel-security (MLS) model and the feedback-path exploit.

The paper's §4.3 observation: *"Since the legal information flow (from
low to high) can serve as a perfect feedback path, one may always
exploit it to achieve the channel capacity. In other words, covert
channels in MLS systems are relatively easy to exploit in general and
tend to be fast."*

This module provides a Bell-LaPadula-style flow policy, subjects with
clearance levels, and :func:`exploit_with_legal_feedback`, which wires
the *legal* low-to-high flow into the Theorem-5 counter protocol running
over the *covert* high-to-low channel — demonstrating end to end that
the covert channel reaches its feedback capacity using only
policy-compliant feedback.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.events import ChannelParameters
from ..sync.feedback import CounterProtocol
from ..sync.harness import ProtocolMeasurement, measure_protocol

__all__ = [
    "SecurityLevel",
    "Subject",
    "MLSPolicy",
    "exploit_with_legal_feedback",
]


class SecurityLevel(enum.IntEnum):
    """Totally ordered security levels (extendable)."""

    UNCLASSIFIED = 0
    CONFIDENTIAL = 1
    SECRET = 2
    TOP_SECRET = 3


@dataclass(frozen=True)
class Subject:
    """A subject (process/user) with a clearance level."""

    name: str
    level: SecurityLevel


class MLSPolicy:
    """Bell-LaPadula information-flow rules.

    Legal flows go *up* (low to high): a subject may write up and read
    down in the sense that information may move from a lower level to a
    higher one, never the reverse.
    """

    def allows_flow(self, source: SecurityLevel, target: SecurityLevel) -> bool:
        """Whether information may legally flow source -> target."""
        return source <= target

    def is_covert(self, source: SecurityLevel, target: SecurityLevel) -> bool:
        """A high-to-low flow is the covert direction."""
        return not self.allows_flow(source, target)

    def feedback_is_legal(
        self, sender: Subject, receiver: Subject
    ) -> bool:
        """For a covert channel sender -> receiver, feedback runs
        receiver -> sender; it is legal exactly when the covert channel
        leaks downward (receiver.level <= sender.level)."""
        return self.allows_flow(receiver.level, sender.level)


def exploit_with_legal_feedback(
    sender: Subject,
    receiver: Subject,
    params: ChannelParameters,
    rng: np.random.Generator,
    *,
    bits_per_symbol: int = 1,
    message_symbols: int = 50_000,
    policy: Optional[MLSPolicy] = None,
) -> ProtocolMeasurement:
    """Run the Theorem-5 counter protocol using the legal MLS feedback.

    Raises
    ------
    PermissionError
        If the channel direction is not covert (nothing to exploit) or
        the feedback direction would itself violate the policy (then a
        perfect feedback path is *not* freely available and the
        no-feedback analysis of Section 4.1 applies instead).
    """
    policy = policy or MLSPolicy()
    if not policy.is_covert(sender.level, receiver.level):
        raise PermissionError(
            f"flow {sender.name} -> {receiver.name} is legal; "
            "no covert channel to exploit"
        )
    if not policy.feedback_is_legal(sender, receiver):
        raise PermissionError(
            "feedback direction would violate the MLS policy; "
            "perfect feedback is not available"
        )
    protocol = CounterProtocol(params, bits_per_symbol=bits_per_symbol)
    message = rng.integers(0, 2**bits_per_symbol, message_symbols)
    return measure_protocol(protocol, message, rng)
