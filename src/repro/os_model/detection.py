"""Covert-channel detection in kernel traces.

The paper's related-work taxonomy lists *identification* as the first
covert-channel discipline. This module gives the auditor's view of the
§3.1 scenario: given only a kernel trace (who ran, which quanta touched
the shared register), score how covert-channel-like a process pair's
behavior is.

Two complementary signals:

* **access interleaving** — a covert pair alternates register writes
  and reads far more regularly than independent processes;
  :func:`interleaving_score` measures the write→read alternation rate
  against the ~50% expected of unrelated accesses.
* **value coupling** — the mutual information between the values
  written and the values subsequently read is near the symbol entropy
  for a covert pair and near zero for independent activity;
  :func:`value_coupling_bits` estimates it. The caller must supply the
  *auditor's pairing* (each read matched with the most recent write,
  reconstructed from the trace): naive positional pairing collapses
  under scrambled scheduling exactly like E1's naive receiver.

:func:`detect_covert_pair` fuses both into a verdict with a
configurable threshold. False-positive behavior is characterized in the
test suite with genuinely independent workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..simulation.mutual_information import plugin_mutual_information
from .kernel import KernelTrace

__all__ = [
    "DetectionReport",
    "interleaving_score",
    "value_coupling_bits",
    "detect_covert_pair",
]


def _access_events(trace: KernelTrace) -> List[Tuple[str, int]]:
    """(kind, quantum) for each register-touching quantum."""
    events = []
    for idx, note in enumerate(trace.annotations):
        if note in ("send", "recv"):
            events.append((note, idx))
    return events


def interleaving_score(trace: KernelTrace) -> float:
    """Fraction of register accesses that alternate send/recv.

    A perfectly synchronized covert pair scores ~1.0; two independent
    processes each touching the register on their own schedule score
    ~0.5; a single process scores 0.
    """
    kinds = [k for k, _ in _access_events(trace)]
    if len(kinds) < 2:
        return 0.0
    alternations = sum(
        1 for a, b in zip(kinds, kinds[1:]) if a != b
    )
    return alternations / (len(kinds) - 1)


def value_coupling_bits(
    written: Sequence[int],
    read: Sequence[int],
    *,
    alphabet_size: int = 2,
) -> float:
    """Plug-in MI (bits) between written values and the next reads.

    The auditor pairs each read with the most recent write; the
    sequences passed here should already be in that paired order (the
    §3.1 oblivious channel produces them naturally).
    """
    n = min(len(written), len(read))
    if n < 2:
        return 0.0
    return plugin_mutual_information(
        np.asarray(written[:n]),
        np.asarray(read[:n]),
        nx=alphabet_size,
        ny=alphabet_size,
        bias_correct=True,
    )


@dataclass(frozen=True)
class DetectionReport:
    """Auditor's verdict on one process pair."""

    interleaving: float
    coupling_bits: float
    flagged: bool
    threshold_interleaving: float
    threshold_coupling: float

    def summary(self) -> str:
        verdict = "COVERT CHANNEL SUSPECTED" if self.flagged else "clean"
        return (
            f"interleaving={self.interleaving:.3f} "
            f"coupling={self.coupling_bits:.3f} bits -> {verdict}"
        )


def detect_covert_pair(
    trace: KernelTrace,
    written: Optional[Sequence[int]] = None,
    read: Optional[Sequence[int]] = None,
    *,
    alphabet_size: int = 2,
    threshold_interleaving: float = 0.75,
    threshold_coupling: float = 0.25,
) -> DetectionReport:
    """Fuse the interleaving and coupling signals into a verdict.

    A pair is flagged when *either* signal exceeds its threshold —
    interleaving catches handshake-style channels (which couple timing
    but may encrypt values), coupling catches oblivious channels even
    under scrambled scheduling. Thresholds default to values with <1%
    false positives on independent workloads (see the test suite).
    """
    inter = interleaving_score(trace)
    coupling = 0.0
    if written is not None and read is not None:
        coupling = value_coupling_bits(
            written, read, alphabet_size=alphabet_size
        )
    flagged = inter >= threshold_interleaving or coupling >= threshold_coupling
    return DetectionReport(
        interleaving=inter,
        coupling_bits=coupling,
        flagged=flagged,
        threshold_interleaving=threshold_interleaving,
        threshold_coupling=threshold_coupling,
    )
