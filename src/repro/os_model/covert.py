"""The §3.1 storage covert channel, in two flavors.

* :class:`ObliviousSender` / :class:`ObliviousReceiver` — the raw
  non-synchronous channel: the sender writes its next symbol every time
  it is scheduled; the receiver reads every time it is scheduled. If
  the scheduler runs the sender twice in a row, the first symbol is
  overwritten (**deletion**); if it runs the receiver twice in a row,
  the second read is stale (**insertion**). This is the paper's
  motivating example, verbatim.

* :class:`HandshakeSender` / :class:`HandshakeReceiver` — the same
  processes using the Figure-1 two-variable handshake: never loses or
  duplicates a symbol, but wastes quanta waiting, trading ``P_d``/
  ``P_i`` for synchronization overhead.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .kernel import UniprocessorKernel
from .process import Process

__all__ = [
    "ObliviousSender",
    "ObliviousReceiver",
    "HandshakeSender",
    "HandshakeReceiver",
]


class ObliviousSender(Process):
    """Writes the next message symbol on every scheduled quantum."""

    def __init__(
        self,
        pid: int,
        message: np.ndarray,
        *,
        name: str = "sender",
        priority: int = 0,
        tickets: int = 1,
    ) -> None:
        super().__init__(pid, name, priority=priority, tickets=tickets)
        self.message = np.asarray(message, dtype=np.int64)
        if self.message.ndim != 1:
            raise ValueError("message must be 1-D")
        self.position = 0

    @property
    def done(self) -> bool:
        return self.position >= self.message.size

    def step(self, kernel: UniprocessorKernel) -> None:
        if self.done:
            return
        kernel.register.write(int(self.message[self.position]))
        self.position += 1
        kernel.annotate("send")


class ObliviousReceiver(Process):
    """Reads the shared register on every scheduled quantum."""

    def __init__(
        self,
        pid: int,
        *,
        name: str = "receiver",
        priority: int = 0,
        tickets: int = 1,
    ) -> None:
        super().__init__(pid, name, priority=priority, tickets=tickets)
        self.samples: List[int] = []

    def step(self, kernel: UniprocessorKernel) -> None:
        self.samples.append(kernel.register.read())
        kernel.annotate("recv")

    @property
    def received(self) -> np.ndarray:
        return np.asarray(self.samples, dtype=np.int64)


class HandshakeSender(Process):
    """Figure-1 sender: writes only after the previous symbol's ack."""

    SYNC_READY = "S-R"
    SYNC_ACK = "R-S"

    def __init__(
        self,
        pid: int,
        message: np.ndarray,
        *,
        name: str = "hs-sender",
        priority: int = 0,
        tickets: int = 1,
    ) -> None:
        super().__init__(pid, name, priority=priority, tickets=tickets)
        self.message = np.asarray(message, dtype=np.int64)
        if self.message.ndim != 1:
            raise ValueError("message must be 1-D")
        self.position = 0
        self._expected_ack = 0
        self.waits = 0

    @property
    def done(self) -> bool:
        return self.position >= self.message.size

    def step(self, kernel: UniprocessorKernel) -> None:
        if self.done:
            return
        if kernel.read_sync(self.SYNC_ACK) != self._expected_ack:
            self.waits += 1
            kernel.annotate("send-wait")
            return
        kernel.register.write(int(self.message[self.position]))
        self.position += 1
        kernel.toggle_sync(self.SYNC_READY)
        self._expected_ack ^= 1
        kernel.annotate("send")


class HandshakeReceiver(Process):
    """Figure-1 receiver: reads only when a new symbol is flagged."""

    def __init__(
        self,
        pid: int,
        *,
        name: str = "hs-receiver",
        priority: int = 0,
        tickets: int = 1,
    ) -> None:
        super().__init__(pid, name, priority=priority, tickets=tickets)
        self.samples: List[int] = []
        self._seen_ready = 0
        self.waits = 0

    def step(self, kernel: UniprocessorKernel) -> None:
        if kernel.read_sync(HandshakeSender.SYNC_READY) == self._seen_ready:
            self.waits += 1
            kernel.annotate("recv-wait")
            return
        self.samples.append(kernel.register.read())
        self._seen_ready ^= 1
        kernel.toggle_sync(HandshakeSender.SYNC_ACK)
        kernel.annotate("recv")

    @property
    def received(self) -> np.ndarray:
        return np.asarray(self.samples, dtype=np.int64)
