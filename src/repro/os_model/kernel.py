"""Uniprocessor kernel simulation.

Runs a set of :class:`~repro.os_model.process.Process` objects under a
:class:`~repro.os_model.scheduler.Scheduler`, one quantum at a time,
exposing the shared state (the covert storage register and optional
synchronization variables) that the covert pair communicates through.
The full schedule trace is recorded so that
:mod:`repro.os_model.measurement` can classify channel events after the
fact — exactly the observational workflow of the paper's estimation
recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .process import Process
from .scheduler import Scheduler

__all__ = ["SharedRegister", "KernelTrace", "UniprocessorKernel"]


class SharedRegister:
    """The shared resource the storage channel modulates.

    Any attribute a real system exposes to both parties works: a file
    lock, quota, inode timestamp... modeled as an integer cell with
    access counters.
    """

    def __init__(self, initial: int = 0) -> None:
        self.value = int(initial)
        self.writes = 0
        self.reads = 0

    def write(self, value: int) -> None:
        self.value = int(value)
        self.writes += 1

    def read(self) -> int:
        self.reads += 1
        return self.value


@dataclass
class KernelTrace:
    """Complete record of a kernel run."""

    schedule: List[int] = field(default_factory=list)  # pid per quantum
    #: Per-quantum annotations appended by processes (e.g. 'send'/'recv').
    annotations: List[Optional[str]] = field(default_factory=list)

    def runs_of(self, pid: int) -> int:
        return sum(1 for p in self.schedule if p == pid)

    @property
    def num_quanta(self) -> int:
        return len(self.schedule)


class UniprocessorKernel:
    """Single-CPU system: one process runs per quantum.

    Parameters
    ----------
    processes:
        The ready set (all processes are always ready in this model —
        blocking is expressed by a process choosing to do nothing).
    scheduler:
        The scheduling policy under evaluation.
    """

    def __init__(self, processes: List[Process], scheduler: Scheduler) -> None:
        if not processes:
            raise ValueError("need at least one process")
        pids = [p.pid for p in processes]
        if len(set(pids)) != len(pids):
            raise ValueError("duplicate pids")
        self.processes = list(processes)
        self.scheduler = scheduler
        self.register = SharedRegister()
        self.sync_variables: Dict[str, int] = {}
        self.trace = KernelTrace()
        self.time = 0
        self._annotation: Optional[str] = None

    # ------------------------------------------------------------------
    # Facilities processes may use during their quantum
    # ------------------------------------------------------------------
    def annotate(self, label: str) -> None:
        """Attach a label to the current quantum (visible in the trace)."""
        self._annotation = label

    def read_sync(self, name: str) -> int:
        """Read a named synchronization variable (default 0)."""
        return self.sync_variables.get(name, 0)

    def toggle_sync(self, name: str) -> None:
        """Flip a named synchronization variable."""
        self.sync_variables[name] = self.sync_variables.get(name, 0) ^ 1

    # ------------------------------------------------------------------
    def run(
        self,
        num_quanta: int,
        rng: np.random.Generator,
        *,
        stop_condition: Optional[callable] = None,
    ) -> KernelTrace:
        """Execute up to *num_quanta* scheduling quanta.

        *stop_condition* (checked after each quantum, receiving the
        kernel) ends the run early — e.g. "the sender has offered its
        whole message", so measurement windows are not polluted by
        post-message stale reads.
        """
        if num_quanta < 0:
            raise ValueError("num_quanta must be non-negative")
        self.scheduler.reset()
        for _ in range(num_quanta):
            proc = self.scheduler.select(self.processes, rng)
            self._annotation = None
            proc.on_scheduled()
            proc.step(self)
            self.trace.schedule.append(proc.pid)
            self.trace.annotations.append(self._annotation)
            self.time += 1
            if stop_condition is not None and stop_condition(self):
                break
        return self.trace
