"""Countermeasure trade-off analysis (paper §3.2, made quantitative).

The paper proposes non-synchronous capacity estimation as the metric
for *"evaluating the effectiveness of candidate system implementations,
e.g., the scheduler, in reducing covert channel capacities."* A
defender's scheduler knob (here: the fuzz level of
:class:`~repro.os_model.scheduler.FuzzyTimeScheduler`) buys covert-
capacity reduction at a *performance price* — the same randomness that
manufactures deletions also delays legitimate processes. This module
sweeps the knob and reports both sides:

* **covert cost to the attacker** — the Theorem-5 achievable rate per
  quantum of the oblivious storage channel;
* **performance cost to the system** — mean and tail scheduling delay
  experienced by a process (quanta between consecutive runs, relative
  to round-robin's deterministic alternation).

Experiment E14 renders the resulting trade-off frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .measurement import run_oblivious_channel
from .scheduler import FuzzyTimeScheduler

__all__ = [
    "TradeoffPoint",
    "scheduling_delay_stats",
    "fuzzy_scheduler_tradeoff",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point on the countermeasure trade-off frontier."""

    fuzz: float
    deletion: float
    insertion: float
    covert_rate_per_quantum: float
    mean_delay: float
    p99_delay: float

    @property
    def capacity_reduction(self) -> float:
        """Fraction of the round-robin covert rate removed (0.5
        bits/quantum baseline for the two-process storage channel)."""
        baseline = 0.5
        return 1.0 - self.covert_rate_per_quantum / baseline


def scheduling_delay_stats(
    schedule: Sequence[int], pid: int
) -> tuple:
    """(mean, p99) quanta between consecutive runs of *pid*.

    Round-robin between two processes gives a constant gap of 2; any
    countermeasure randomness stretches the tail.
    """
    positions = np.nonzero(np.asarray(schedule) == pid)[0]
    if positions.size < 2:
        raise ValueError("process ran fewer than twice")
    gaps = np.diff(positions)
    return float(gaps.mean()), float(np.percentile(gaps, 99))


def fuzzy_scheduler_tradeoff(
    fuzz_levels: Sequence[float],
    rng: np.random.Generator,
    *,
    message_symbols: int = 10_000,
) -> List[TradeoffPoint]:
    """Sweep the fuzzy-time knob; one :class:`TradeoffPoint` per level.

    ``fuzz = 0`` reproduces round-robin (full covert capacity, minimal
    delay); increasing fuzz degrades the covert channel faster than it
    degrades scheduling delay at first, then the returns flatten — the
    knee is the number a designer actually needs.
    """
    points = []
    for fuzz in fuzz_levels:
        scheduler = FuzzyTimeScheduler(fuzz) if fuzz > 0 else FuzzyTimeScheduler(1e-9)
        m = run_oblivious_channel(
            scheduler, rng, message_symbols=message_symbols
        )
        # Delay of the receiver process (pid 1) — standing in for any
        # legitimate interactive process under this scheduler.
        # Reconstruct its schedule from run counts is not enough; rerun
        # a short trace for delay measurement.
        from .kernel import UniprocessorKernel
        from .process import IdleProcess

        probe = [IdleProcess(0), IdleProcess(1)]
        kernel = UniprocessorKernel(probe, FuzzyTimeScheduler(max(fuzz, 1e-9)))
        trace = kernel.run(20_000, rng)
        mean_delay, p99 = scheduling_delay_stats(trace.schedule, 1)
        points.append(
            TradeoffPoint(
                fuzz=float(fuzz),
                deletion=m.params.deletion,
                insertion=m.params.insertion,
                covert_rate_per_quantum=m.achievable_per_quantum,
                mean_delay=mean_delay,
                p99_delay=p99,
            )
        )
    return points
