"""Process model for the uniprocessor covert-channel scenario (§3.1).

The paper's motivating example: sender and receiver are two processes on
a single CPU; only one can run at a time, and the OS scheduler decides
who. A :class:`Process` is anything with a :meth:`step` that the kernel
calls when the process is scheduled for a quantum.
"""

from __future__ import annotations

import abc

__all__ = ["Process", "IdleProcess"]


class Process(abc.ABC):
    """A schedulable entity.

    Parameters
    ----------
    pid:
        Unique process id.
    name:
        Human-readable label.
    priority:
        Larger runs first under priority scheduling.
    tickets:
        Share weight under lottery scheduling.
    """

    def __init__(
        self,
        pid: int,
        name: str = "",
        *,
        priority: int = 0,
        tickets: int = 1,
    ) -> None:
        if pid < 0:
            raise ValueError("pid must be non-negative")
        if tickets < 1:
            raise ValueError("tickets must be >= 1")
        self.pid = pid
        self.name = name or f"proc-{pid}"
        self.priority = priority
        self.tickets = tickets
        self.quanta_run = 0

    @abc.abstractmethod
    def step(self, kernel: "object") -> None:
        """Execute one scheduled quantum. *kernel* grants access to
        shared system state (the covert storage object, sync variables,
        current time)."""

    def on_scheduled(self) -> None:
        """Bookkeeping hook invoked by the kernel before :meth:`step`."""
        self.quanta_run += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(pid={self.pid}, name={self.name!r})"


class IdleProcess(Process):
    """Background load: does nothing with the covert channel.

    Mixing idle processes into the ready queue dilutes the covert pair's
    scheduling share and drives up the deletion/insertion rates — the
    knob experiment E7 sweeps.
    """

    def step(self, kernel: "object") -> None:
        # Represents unrelated computation; touches no shared state.
        return None
