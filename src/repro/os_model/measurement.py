"""Measuring Definition-1 parameters from a kernel run.

The paper's estimation recipe needs ``P_d`` (and ``P_i``) of the real
system. For the §3.1 storage channel these are scheduling artifacts:
classify consecutive send/recv annotations in the kernel trace into
deletion / insertion / transmission events and feed the empirical
parameters into :class:`repro.core.estimation.CapacityEstimator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.estimation import CapacityEstimator, CapacityReport
from ..core.events import ChannelEvent, ChannelParameters
from .covert import ObliviousReceiver, ObliviousSender
from .kernel import KernelTrace, UniprocessorKernel
from .scheduler import Scheduler

__all__ = [
    "classify_trace",
    "ChannelMeasurement",
    "run_oblivious_channel",
    "measure_scheduler",
]


def classify_trace(trace: KernelTrace) -> np.ndarray:
    """Classify a trace's send/recv annotations into channel events.

    Walking the quantum annotations in order:

    * ``send`` following a ``send`` whose symbol was never read —
      the earlier symbol was overwritten: a **DELETION**;
    * ``recv`` with no unread ``send`` pending — a stale re-read:
      an **INSERTION**;
    * ``recv`` consuming a pending ``send`` — a **TRANSMISSION**.

    Waiting quanta and idle/background quanta produce no events, which
    matches Definition 1: a channel *use* is a symbol-level happening,
    not a clock tick.
    """
    events: List[int] = []
    pending = False  # an unread symbol sits in the register
    for note in trace.annotations:
        if note == "send":
            if pending:
                events.append(int(ChannelEvent.DELETION))
            pending = True
        elif note == "recv":
            if pending:
                events.append(int(ChannelEvent.TRANSMISSION))
                pending = False
            else:
                events.append(int(ChannelEvent.INSERTION))
    return np.asarray(events, dtype=np.int64)


@dataclass(frozen=True)
class ChannelMeasurement:
    """Everything measured from one kernel run."""

    scheduler_name: str
    params: ChannelParameters
    events: np.ndarray
    report: CapacityReport
    quanta: int
    symbols_offered: int
    symbols_received: int

    @property
    def uses_per_quantum(self) -> float:
        """Channel uses per scheduling quantum (time-base conversion
        between bits/use and bits/quantum)."""
        return self.events.size / self.quanta if self.quanta else 0.0

    @property
    def corrected_capacity_per_quantum(self) -> float:
        """The paper's corrected capacity in bits per quantum.

        Note this erasure-bound figure is insensitive to insertions
        (``(1 - P_d) x uses = insertions + transmissions`` per quantum
        is just the receiver's scheduling share), so scheduler rankings
        should use :attr:`achievable_per_quantum` instead.
        """
        return self.report.corrected_capacity * self.uses_per_quantum

    @property
    def sender_slots_per_quantum(self) -> float:
        """Sender-time-consuming uses (deletions + transmissions) per
        scheduling quantum."""
        if not self.quanta:
            return 0.0
        from ..core.events import ChannelEvent as _CE

        counts = np.bincount(self.events, minlength=4)
        slots = (
            counts[int(_CE.DELETION)]
            + counts[int(_CE.TRANSMISSION)]
            + counts[int(_CE.SUBSTITUTION)]
        )
        return slots / self.quanta

    @property
    def achievable_per_quantum(self) -> float:
        """Theorem-5 achievable rate converted to bits per quantum —
        the figure of merit for comparing scheduler designs (E7)."""
        from ..core.capacity import feedback_lower_bound_exact

        p = self.params
        if p.insertion >= 1.0 or p.deletion >= 1.0:
            return 0.0
        per_slot = feedback_lower_bound_exact(
            self.report.bits_per_symbol, p.deletion, p.insertion
        )
        return per_slot * self.sender_slots_per_quantum


def run_oblivious_channel(
    scheduler: Scheduler,
    rng: np.random.Generator,
    *,
    message_symbols: int = 20_000,
    bits_per_symbol: int = 1,
    extra_processes: Optional[Sequence] = None,
    quanta: Optional[int] = None,
) -> ChannelMeasurement:
    """Run the §3.1 oblivious channel under *scheduler* and measure it.

    Parameters
    ----------
    scheduler:
        Policy under evaluation.
    message_symbols:
        Length of the random message the sender keeps offering.
    bits_per_symbol:
        Symbol width of the register alphabet.
    extra_processes:
        Optional background load (e.g. :class:`IdleProcess` instances).
    quanta:
        Scheduling quanta to simulate (default: enough for the sender
        to finish with high probability).
    """
    alphabet = 2**bits_per_symbol
    message = rng.integers(0, alphabet, message_symbols)
    sender = ObliviousSender(0, message)
    receiver = ObliviousReceiver(1)
    procs = [sender, receiver] + list(extra_processes or [])
    kernel = UniprocessorKernel(procs, scheduler)
    budget = quanta if quanta is not None else 8 * message_symbols * len(procs)
    trace = kernel.run(budget, rng, stop_condition=lambda _k: sender.done)
    events = classify_trace(trace)
    if events.size == 0:
        raise ValueError("no channel events occurred; increase quanta")
    counts = np.bincount(events, minlength=4)
    total = counts.sum()
    params = ChannelParameters(
        deletion=counts[int(ChannelEvent.DELETION)] / total,
        insertion=counts[int(ChannelEvent.INSERTION)] / total,
        transmission=(
            counts[int(ChannelEvent.TRANSMISSION)]
            + counts[int(ChannelEvent.SUBSTITUTION)]
        )
        / total,
    )
    report = CapacityEstimator(bits_per_symbol).estimate(params)
    return ChannelMeasurement(
        scheduler_name=scheduler.name,
        params=params,
        events=events,
        report=report,
        quanta=trace.num_quanta,
        symbols_offered=sender.position,
        symbols_received=len(receiver.samples),
    )


def measure_scheduler(
    scheduler: Scheduler,
    rng: np.random.Generator,
    **kwargs,
) -> Dict[str, float]:
    """Flat metric dict for the experiment runner (E7)."""
    m = run_oblivious_channel(scheduler, rng, **kwargs)
    return {
        "deletion": m.params.deletion,
        "insertion": m.params.insertion,
        "corrected_capacity": m.report.corrected_capacity,
        "corrected_per_quantum": m.corrected_capacity_per_quantum,
        "achievable_per_quantum": m.achievable_per_quantum,
        "degradation": m.report.degradation,
    }
