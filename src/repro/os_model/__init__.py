"""Uniprocessor OS substrate: processes, schedulers, the §3.1 storage
covert channel, empirical parameter measurement, and the MLS
feedback-path exploit of §4.3."""

from .countermeasures import (
    TradeoffPoint,
    fuzzy_scheduler_tradeoff,
    scheduling_delay_stats,
)
from .detection import (
    DetectionReport,
    detect_covert_pair,
    interleaving_score,
    value_coupling_bits,
)
from .covert import (
    HandshakeReceiver,
    HandshakeSender,
    ObliviousReceiver,
    ObliviousSender,
)
from .kernel import KernelTrace, SharedRegister, UniprocessorKernel
from .measurement import (
    ChannelMeasurement,
    classify_trace,
    measure_scheduler,
    run_oblivious_channel,
)
from .mls import MLSPolicy, SecurityLevel, Subject, exploit_with_legal_feedback
from .process import IdleProcess, Process
from .timing_channel import (
    TimingChannelConfig,
    TimingChannelRun,
    simulate_timing_channel,
)
from .scheduler import (
    FuzzyTimeScheduler,
    LotteryScheduler,
    MultilevelFeedbackScheduler,
    PriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    StrideScheduler,
)

__all__ = [
    "DetectionReport",
    "detect_covert_pair",
    "interleaving_score",
    "value_coupling_bits",
    "TradeoffPoint",
    "fuzzy_scheduler_tradeoff",
    "scheduling_delay_stats",
    "HandshakeReceiver",
    "HandshakeSender",
    "ObliviousReceiver",
    "ObliviousSender",
    "KernelTrace",
    "SharedRegister",
    "UniprocessorKernel",
    "ChannelMeasurement",
    "classify_trace",
    "measure_scheduler",
    "run_oblivious_channel",
    "MLSPolicy",
    "SecurityLevel",
    "Subject",
    "exploit_with_legal_feedback",
    "IdleProcess",
    "Process",
    "TimingChannelConfig",
    "TimingChannelRun",
    "simulate_timing_channel",
    "FuzzyTimeScheduler",
    "LotteryScheduler",
    "MultilevelFeedbackScheduler",
    "PriorityScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "StrideScheduler",
]
