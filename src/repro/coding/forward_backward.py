"""Forward-backward decoding over the insertion-deletion drift lattice.

The hidden-Markov view of a Definition-1 channel (Davey & MacKay 2001):
while the channel processes transmitted bit ``i`` it first emits ``k``
inserted random bits (probability ``P_i`` each), then either deletes
the bit (``P_d``) or transmits it (``P_t``), flipping it with the
substitution probability ``P_s``. The hidden state is the **drift**
``d_i = (#output bits emitted) - (#input bits consumed)`` before bit
``i``. Given the received stream and per-position priors on the
transmitted bits, the forward-backward recursion yields:

* the frame likelihood ``P(y | priors)``;
* per-position posteriors ``P(t_i = 1 | y)`` — the soft information the
  watermark and marker decoders feed to their outer codes.

Drift is truncated to ``[-max_drift, +max_drift]`` and insertions per
input bit to ``max_insertions``; both tails are geometrically small.
Probabilities are kept in linear domain with per-step normalization
(scaling factors accumulate the log-likelihood), the standard HMM
stabilization.

**Kernel layout.** The recursion over transmitted positions ``t`` is
inherently sequential, but for each ``t`` the sums over the insertion
count ``k`` and the drift window ``w`` are batched: emissions, branch
masks, and scatter/gather index tables are precomputed as
``(max_insertions + 1, window)`` arrays, the forward scatter collapses
to a single ``np.bincount`` over precomputed flat targets, and the
backward/posterior passes are gathers from a zero-padded column. The
pre-vectorization position-by-position loops are retained as
``decode_reference`` / ``log_likelihood_reference`` — the oracle the
test suite holds the batched kernel to (agreement to 1e-12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..numerics import safe_log, stage
from ..store import cached_solve

__all__ = ["DriftChannelModel", "DriftDecodeResult"]


@dataclass(frozen=True)
class DriftDecodeResult:
    """Output of one forward-backward pass.

    Attributes
    ----------
    posteriors:
        ``P(t_i = 1 | y)`` for each transmitted position, shape ``(n,)``.
    log_likelihood:
        ``ln P(y, final drift consistent | priors)``.
    drift_map:
        Posterior mode of the drift before each position (diagnostic).
    """

    posteriors: np.ndarray
    log_likelihood: float
    drift_map: np.ndarray


class DriftChannelModel:
    """Forward-backward engine for a Definition-1 bit channel.

    Parameters
    ----------
    insertion_prob, deletion_prob:
        Per-use insertion/deletion probabilities (``P_t`` is implied).
    substitution_prob:
        Flip probability of transmitted bits.
    max_drift:
        Half-width of the drift window.
    max_insertions:
        Cap on insertions per input bit (probability mass beyond the
        cap is renormalized away; with ``P_i <= 0.2`` and the default
        cap the truncation is below 1e-3).
    """

    def __init__(
        self,
        insertion_prob: float,
        deletion_prob: float,
        substitution_prob: float = 0.0,
        *,
        max_drift: int = 24,
        max_insertions: int = 5,
    ) -> None:
        for name, v in (
            ("insertion_prob", insertion_prob),
            ("deletion_prob", deletion_prob),
            ("substitution_prob", substitution_prob),
        ):
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {v}")
        if insertion_prob + deletion_prob >= 1.0:
            raise ValueError("P_i + P_d must be < 1")
        if max_drift < 1:
            raise ValueError("max_drift must be >= 1")
        if max_insertions < 1:
            raise ValueError("max_insertions must be >= 1")
        self.pi = insertion_prob
        self.pd = deletion_prob
        self.pt = 1.0 - insertion_prob - deletion_prob
        self.ps = substitution_prob
        self.max_drift = max_drift
        self.max_insertions = max_insertions

    # ------------------------------------------------------------------
    def _window(self) -> np.ndarray:
        return np.arange(-self.max_drift, self.max_drift + 1)

    def _emission_probs(
        self, y: np.ndarray, j_start: int, count: int
    ) -> float:
        """Probability that *count* inserted (uniform) bits match
        ``y[j_start : j_start + count]`` — each uniform bit matches any
        observed value with probability 1/2."""
        return 0.5**count

    def _validate(
        self, received: np.ndarray, prior_one: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
        y = np.asarray(received, dtype=np.int64)
        priors = np.asarray(prior_one, dtype=float)
        if y.ndim != 1 or priors.ndim != 1:
            raise ValueError("received and prior_one must be 1-D")
        if y.size and not np.all((y == 0) | (y == 1)):
            raise ValueError("received bits must be 0/1")
        if np.any((priors < 0) | (priors > 1)):
            raise ValueError("priors must be probabilities")
        if priors.size == 0:
            raise ValueError("need at least one transmitted position")
        return y, priors, priors.size, y.size

    def _lattice_tables(self, n: int, m: int, y: np.ndarray) -> dict:
        """Precompute everything of the lattice that does not depend on
        the priors: branch masks, emission splits, and the forward
        scatter / backward gather index tables, batched over the whole
        ``(k, w)`` plane.

        Transition targets (derivation): a step that consumes input bit
        ``t`` at window index ``w`` with ``k`` insertions moves to
        window index ``w + k - 1`` on the deletion branch and ``w + k``
        on the transmission branch. All tables carry an origin offset of
        1 so out-of-window targets land in padding instead of wrapping.
        """
        dmax = self.max_drift
        width = 2 * dmax + 1
        kmax = self.max_insertions
        k_col = np.arange(kmax + 1)[:, None]  # (K, 1)
        w_row = np.arange(width)[None, :]  # (1, W)
        # Next unread output index per (k, w) at t = 0; add t per step.
        base_j = k_col + (w_row - dmax)
        # Geometric insertion coefficients (P_i/2)^k, column-shaped for
        # broadcasting over the window axis.
        ins = (self.pi * 0.5) ** k_col.astype(float)
        # Scatter targets with origin 1: deletion -> w + k, tx -> w+k+1.
        gather_del = w_row + k_col  # also the backward gather (b[w+k-1])
        gather_tx = gather_del + 1
        ext = width + kmax + 1
        scatter = np.concatenate([gather_del.ravel(), gather_tx.ravel()])
        # Padded received stream so every gathered observation index is
        # in range; padded reads are masked out by the branch masks.
        y_pad = np.concatenate([y, np.zeros(kmax + 2, dtype=np.int64)])
        # Per position t: observation, branch masks, emission splits.
        t_axis = np.arange(n)[:, None, None]
        j_all = base_j[None, :, :] + t_axis  # (n, K, W)
        obs = y_pad[np.clip(j_all, 0, m + kmax)]
        le = j_all <= m  # deletion branch stays inside the stream
        lt = j_all < m  # transmission consumes an output bit
        emit_one = np.where(obs == 1, 1.0 - self.ps, self.ps)
        return {
            "width": width,
            "kmax": kmax,
            "ins": ins,
            "gather_del": gather_del,
            "gather_tx": gather_tx,
            "ext": ext,
            "scatter": scatter,
            "le": le,
            "lt": lt,
            "emit_one": emit_one,
        }

    @staticmethod
    def _valid_states(t: int, dmax: int, width: int) -> np.ndarray:
        """Window states whose next unread output index is non-negative."""
        return (np.arange(width) - dmax + t) >= 0

    @cached_solve(
        "drift_decode",
        instance_attrs=("pi", "pd", "ps", "max_drift", "max_insertions"),
    )
    def decode(
        self,
        received: np.ndarray,
        prior_one: np.ndarray,
    ) -> DriftDecodeResult:
        """Run forward-backward (batched over the insertion axis).

        Memoized through :mod:`repro.store` when a result store is
        active; the cache key covers the channel parameters on ``self``,
        so equal-parameter model instances share entries.

        Parameters
        ----------
        received:
            The observed bit stream ``y`` (0/1 array).
        prior_one:
            ``P(t_i = 1)`` prior for each of the ``n`` transmitted
            positions (known watermark/marker bits use 0 or 1).
        """
        y, priors, n, m = self._validate(received, prior_one)
        dmax = self.max_drift
        d_final = m - n
        if not -dmax <= d_final <= dmax:
            raise ValueError(
                f"final drift {d_final} outside the window +-{dmax}"
            )
        with stage("lattice"):
            return self._decode_vectorized(y, priors, n, m)

    def _decode_vectorized(
        self, y: np.ndarray, priors: np.ndarray, n: int, m: int
    ) -> DriftDecodeResult:
        dmax = self.max_drift
        d_final = m - n
        tab = self._lattice_tables(n, m, y)
        width, ext = tab["width"], tab["ext"]
        ins, scatter = tab["ins"], tab["scatter"]
        le, lt, emit_one = tab["le"], tab["lt"], tab["emit_one"]
        gather_del, gather_tx = tab["gather_del"], tab["gather_tx"]

        # Forward pass. fwd[t, w] = P(y[:t + (w - dmax)], drift index w
        # before transmitted bit t), scaled per step; all (deletion,
        # transmission) branches for every insertion count k land in one
        # bincount scatter.
        fwd = np.zeros((n + 1, width))
        fwd[0, dmax] = 1.0  # zero drift at the start
        scale = np.zeros(n + 1)
        for t in range(n):
            prob1 = float(priors[t])
            valid = self._valid_states(t, dmax, width)[None, :]
            emit = prob1 * emit_one[t] + (1.0 - prob1) * (1.0 - emit_one[t])
            base = np.where(le[t] & valid, fwd[t][None, :], 0.0) * ins
            dl = base * self.pd
            tx = np.where(lt[t], base * self.pt * emit, 0.0)
            nxt = np.bincount(
                scatter,
                weights=np.concatenate([dl.ravel(), tx.ravel()]),
                minlength=ext,
            )[1 : 1 + width]
            total = nxt.sum()
            if not np.isfinite(total) or total <= 0:
                raise ValueError(
                    "received stream has zero or non-finite likelihood "
                    "under the model (drift window too small or "
                    "parameters inconsistent)"
                )
            scale[t + 1] = np.log(total)
            fwd[t + 1] = nxt / total

        # Backward pass. bwd[t, w] = P(y[t + (w-dmax):] | drift w at t):
        # gather bwd[t+1] at the branch targets from a padded column.
        bwd = np.zeros((n + 1, width))
        bwd[n, d_final + dmax] = 1.0
        b_pad = np.zeros(ext + 1)
        for t in range(n - 1, -1, -1):
            prob1 = float(priors[t])
            valid = self._valid_states(t, dmax, width)
            emit = prob1 * emit_one[t] + (1.0 - prob1) * (1.0 - emit_one[t])
            b_pad[1 : 1 + width] = bwd[t + 1]
            cur = (
                ins
                * (
                    self.pd * le[t] * b_pad[gather_del]
                    + self.pt * emit * lt[t] * b_pad[gather_tx]
                )
            ).sum(axis=0) * valid
            total = cur.sum()
            bwd[t] = cur / total if total > 0 else cur

        log_likelihood = float(scale[1:].sum()) + float(
            safe_log(fwd[n, d_final + dmax])
        )

        # Posteriors: split each transmission branch by bit value.
        posteriors = np.empty(n)
        drift_map = np.empty(n, dtype=np.int64)
        for t in range(n):
            prob1 = float(priors[t])
            valid = self._valid_states(t, dmax, width)[None, :]
            base = np.where(valid, fwd[t][None, :], 0.0) * ins
            b_pad[1 : 1 + width] = bwd[t + 1]
            # Deletion branch: bit unobserved, prior passes through.
            del_mass = float(
                np.where(le[t], base * self.pd * b_pad[gather_del], 0.0).sum()
            )
            den = del_mass
            num1 = del_mass * prob1
            # Transmission branch: split the emission by bit value.
            p1 = emit_one[t]
            p0 = 1.0 - p1
            common = np.where(lt[t], base * self.pt * b_pad[gather_tx], 0.0)
            num1 += prob1 * float((common * p1).sum())
            den += float((common * (prob1 * p1 + (1.0 - prob1) * p0)).sum())
            posteriors[t] = num1 / den if den > 0 else prob1
            joint = fwd[t] * bwd[t]
            drift_map[t] = int(np.argmax(joint)) - dmax

        return DriftDecodeResult(
            posteriors=posteriors,
            log_likelihood=log_likelihood,
            drift_map=drift_map,
        )

    def log_likelihood(
        self, received: np.ndarray, prior_one: np.ndarray
    ) -> float:
        """Frame log-likelihood ``ln P(y | priors)`` via the forward
        pass only — one third the work of :meth:`decode`, used by the
        channel-identification search
        (:mod:`repro.coding.identification`)."""
        y, priors, n, m = self._validate(received, prior_one)
        dmax = self.max_drift
        d_final = m - n
        if not -dmax <= d_final <= dmax:
            raise ValueError(
                f"final drift {d_final} outside the window +-{dmax}"
            )
        with stage("lattice"):
            tab = self._lattice_tables(n, m, y)
            width, ext = tab["width"], tab["ext"]
            ins, scatter = tab["ins"], tab["scatter"]
            le, lt, emit_one = tab["le"], tab["lt"], tab["emit_one"]
            fwd = np.zeros(width)
            fwd[dmax] = 1.0
            log_total = 0.0
            for t in range(n):
                prob1 = float(priors[t])
                valid = self._valid_states(t, dmax, width)[None, :]
                emit = (
                    prob1 * emit_one[t] + (1.0 - prob1) * (1.0 - emit_one[t])
                )
                base = np.where(le[t] & valid, fwd[None, :], 0.0) * ins
                dl = base * self.pd
                tx = np.where(lt[t], base * self.pt * emit, 0.0)
                nxt = np.bincount(
                    scatter,
                    weights=np.concatenate([dl.ravel(), tx.ravel()]),
                    minlength=ext,
                )[1 : 1 + width]
                total = nxt.sum()
                if not np.isfinite(total) or total <= 0:
                    raise ValueError(
                        "received stream has zero or non-finite likelihood "
                        "under the model"
                    )
                log_total += np.log(total)
                fwd = nxt / total
            return float(log_total + safe_log(fwd[d_final + dmax]))

    # ------------------------------------------------------------------
    # Scalar reference implementations (pre-vectorization kernels).

    def decode_reference(
        self,
        received: np.ndarray,
        prior_one: np.ndarray,
    ) -> DriftDecodeResult:
        """Position-by-position reference forward-backward.

        The pre-vectorization kernel, kept as the oracle for the
        batched :meth:`decode`: the test suite asserts posterior and
        likelihood agreement to 1e-12 on randomized ``(P_d, P_i, P_s)``
        grids. Prefer :meth:`decode` everywhere else — it is several
        times faster.
        """
        y, priors, n, m = self._validate(received, prior_one)

        dmax = self.max_drift
        width = 2 * dmax + 1
        kmax = self.max_insertions
        ins_coeff = (self.pi * 0.5) ** np.arange(kmax + 1)
        w_idx = np.arange(width)
        # Padded copy so gathered indices never wrap; validity masks
        # zero out the padded reads.
        y_pad = np.concatenate([y, np.zeros(kmax + 2, dtype=np.int64)])

        def shifted(arr: np.ndarray, shift: int) -> np.ndarray:
            """``out[w] = arr[w + shift]`` with zero fill."""
            if shift == 0:
                return arr
            out = np.zeros_like(arr)
            if shift > 0:
                out[: width - shift] = arr[shift:]
            else:
                out[-shift:] = arr[:width + shift]
            return out

        def emit_probs(jk: np.ndarray, prob1: float) -> np.ndarray:
            obs = y_pad[np.clip(jk, 0, m + kmax)]
            return np.where(
                obs == 1,
                prob1 * (1 - self.ps) + (1 - prob1) * self.ps,
                prob1 * self.ps + (1 - prob1) * (1 - self.ps),
            )

        # Forward pass. F[t, w] = P(y[:t + (w - dmax)] , drift index w
        # before transmitted bit t), scaled per step. Each step handles
        # the (deletion, transmission) branches for every insertion
        # count k at once via window shifts.
        fwd = np.zeros((n + 1, width))
        fwd[0, dmax] = 1.0  # zero drift at the start
        scale = np.zeros(n + 1)
        for t in range(n):
            prob1 = float(priors[t])
            j_vec = t + w_idx - dmax  # next unread output per state
            reachable = (fwd[t] > 0) & (j_vec >= 0)
            nxt = np.zeros(width)
            for k in range(kmax + 1):
                jk = j_vec + k
                base_k = np.where(reachable & (jk <= m), fwd[t], 0.0)
                base_k = base_k * ins_coeff[k]
                # Deletion: target drift w + (k - 1); scatter = reverse
                # gather with the opposite shift.
                nxt += shifted(base_k * self.pd, -(k - 1))
                # Transmission: target w + k, needs jk < m.
                tx = np.where(jk < m, base_k * self.pt * emit_probs(jk, prob1), 0.0)
                nxt += shifted(tx, -k)
            total = nxt.sum()
            if not np.isfinite(total) or total <= 0:
                raise ValueError(
                    "received stream has zero or non-finite likelihood "
                    "under the model (drift window too small or "
                    "parameters inconsistent)"
                )
            scale[t + 1] = np.log(total)
            fwd[t + 1] = nxt / total

        # The frame ends with drift d_final = m - n; require it in
        # window (otherwise the likelihood of the truncation is zero).
        d_final = m - n
        if not -dmax <= d_final <= dmax:
            raise ValueError(
                f"final drift {d_final} outside the window +-{dmax}"
            )

        # Backward pass. B[t, w] = P(y[t + (w-dmax):] | drift w at t):
        # gather B[t+1] at the branch targets.
        bwd = np.zeros((n + 1, width))
        bwd[n, d_final + dmax] = 1.0
        for t in range(n - 1, -1, -1):
            prob1 = float(priors[t])
            j_vec = t + w_idx - dmax
            valid_state = j_vec >= 0
            cur = np.zeros(width)
            b_next = bwd[t + 1]
            for k in range(kmax + 1):
                jk = j_vec + k
                ok_del = valid_state & (jk <= m)
                cur += np.where(
                    ok_del,
                    ins_coeff[k] * self.pd * shifted(b_next, k - 1),
                    0.0,
                )
                ok_tx = valid_state & (jk < m)
                cur += np.where(
                    ok_tx,
                    ins_coeff[k]
                    * self.pt
                    * emit_probs(jk, prob1)
                    * shifted(b_next, k),
                    0.0,
                )
            total = cur.sum()
            bwd[t] = cur / total if total > 0 else cur

        log_likelihood = float(scale[1:].sum()) + float(
            safe_log(fwd[n, d_final + dmax])
        )

        # Posteriors: split each transmission branch by bit value.
        posteriors = np.empty(n)
        drift_map = np.empty(n, dtype=np.int64)
        for t in range(n):
            prob1 = float(priors[t])
            j_vec = t + w_idx - dmax
            reachable = (fwd[t] > 0) & (j_vec >= 0)
            b_next = bwd[t + 1]
            num1 = 0.0
            den = 0.0
            for k in range(kmax + 1):
                jk = j_vec + k
                base_k = np.where(reachable, fwd[t], 0.0) * ins_coeff[k]
                # Deletion branch: bit unobserved, prior passes through.
                val = np.where(
                    jk <= m,
                    base_k * self.pd * shifted(b_next, k - 1),
                    0.0,
                ).sum()
                den += val
                num1 += val * prob1
                # Transmission branch: split the emission by bit value.
                obs = y_pad[np.clip(jk, 0, m + kmax)]
                p1 = np.where(obs == 1, 1 - self.ps, self.ps)
                p0 = np.where(obs == 0, 1 - self.ps, self.ps)
                common = np.where(
                    jk < m,
                    base_k * self.pt * shifted(b_next, k),
                    0.0,
                )
                num1 += (common * prob1 * p1).sum()
                den += (common * (prob1 * p1 + (1 - prob1) * p0)).sum()
            posteriors[t] = num1 / den if den > 0 else prob1
            joint = fwd[t] * bwd[t]
            drift_map[t] = int(np.argmax(joint)) - dmax

        return DriftDecodeResult(
            posteriors=posteriors,
            log_likelihood=log_likelihood,
            drift_map=drift_map,
        )

    def log_likelihood_reference(
        self, received: np.ndarray, prior_one: np.ndarray
    ) -> float:
        """Position-by-position reference of :meth:`log_likelihood`
        (pre-vectorization kernel, kept as the test oracle)."""
        y, priors, n, m = self._validate(received, prior_one)
        dmax = self.max_drift
        d_final = m - n
        if not -dmax <= d_final <= dmax:
            raise ValueError(
                f"final drift {d_final} outside the window +-{dmax}"
            )
        width = 2 * dmax + 1
        kmax = self.max_insertions
        fwd = np.zeros(width)
        fwd[dmax] = 1.0
        log_total = 0.0
        ins_coeff = (self.pi * 0.5) ** np.arange(kmax + 1)
        # Pad the received stream so gathered indices never wrap; the
        # validity masks below zero out the padded reads.
        y_pad = np.concatenate([y, np.zeros(kmax + 2, dtype=np.int64)])
        w_idx = np.arange(width)
        for t in range(n):
            prob1 = float(priors[t])
            nxt = np.zeros(width)
            j_vec = t + w_idx - dmax  # next unread output per state
            reachable = (fwd > 0) & (j_vec >= 0)
            for k in range(kmax + 1):
                jk = j_vec + k
                base_k = np.where(reachable & (jk <= m), fwd, 0.0) * ins_coeff[k]
                # Deletion branch: drift shifts by k - 1.
                shift = k - 1
                contrib = base_k * self.pd
                if shift >= 0:
                    nxt[shift:] += contrib[: width - shift]
                else:
                    nxt[:-1] += contrib[1:]
                # Transmission branch: drift shifts by k; needs jk < m.
                obs = y_pad[np.clip(jk, 0, m + kmax)]
                emit = np.where(
                    obs == 1,
                    prob1 * (1 - self.ps) + (1 - prob1) * self.ps,
                    prob1 * self.ps + (1 - prob1) * (1 - self.ps),
                )
                tx = np.where(jk < m, base_k * self.pt * emit, 0.0)
                if k > 0:
                    nxt[k:] += tx[: width - k]
                else:
                    nxt += tx
            total = nxt.sum()
            if not np.isfinite(total) or total <= 0:
                raise ValueError(
                    "received stream has zero or non-finite likelihood "
                    "under the model"
                )
            log_total += np.log(total)
            fwd = nxt / total
        return float(
            log_total + safe_log(fwd[d_final + dmax])
        )

    # ------------------------------------------------------------------
    def transmit(
        self, bits: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample the channel: returns ``(received, events)``.

        Matches the decoder's generative model exactly: for each input
        bit, Geometric insertions of uniform bits, then deletion or
        (possibly flipped) transmission.
        """
        x = np.asarray(bits, dtype=np.int64)
        if x.ndim != 1:
            raise ValueError("bits must be 1-D")
        out = []
        events = []
        for b in x:
            while rng.random() < self.pi:
                out.append(int(rng.integers(0, 2)))
                events.append("i")
            if rng.random() < self.pd / (self.pd + self.pt):
                events.append("d")
            else:
                v = int(b)
                if self.ps > 0 and rng.random() < self.ps:
                    v ^= 1
                out.append(v)
                events.append("t")
        return np.asarray(out, dtype=np.int64), np.asarray(events)
