"""Marker codes for insertion-deletion channels.

The oldest practical defense against synchronization errors (Sellers
1962, used as the comparison baseline by Davey & MacKay): insert a known
**marker pattern** after every ``period`` payload bits. The receiver
runs the same drift forward-backward engine as the watermark decoder,
with delta priors at marker positions and uniform (or outer-code)
priors at payload positions; the markers pin the drift down often
enough for the payload posteriors to be useful.

Compared with watermark codes, markers spend their redundancy in
concentrated bursts; the drift estimate degrades between markers, which
is visible in experiment E8's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..numerics import safe_log
from .convolutional import ConvolutionalCode
from .forward_backward import DriftChannelModel

__all__ = ["MarkerCode", "MarkerDecodeResult"]

_DEFAULT_MARKER = (0, 0, 1)


@dataclass(frozen=True)
class MarkerDecodeResult:
    """Decoded payload plus diagnostics."""

    payload: np.ndarray
    bit_error_rate: Optional[float]
    drift_map: np.ndarray
    log_likelihood: float


class MarkerCode:
    """Marker-based transmitter/receiver for Definition-1 bit channels.

    Parameters
    ----------
    payload_bits:
        Information bits per frame.
    period:
        Payload bits between consecutive markers.
    marker:
        The known marker pattern.
    outer:
        Optional outer convolutional code; if None the payload is sent
        uncoded (pure marker synchronization).
    """

    def __init__(
        self,
        payload_bits: int,
        *,
        period: int = 10,
        marker: Sequence[int] = _DEFAULT_MARKER,
        outer: Optional[ConvolutionalCode] = None,
    ) -> None:
        if payload_bits < 1:
            raise ValueError("payload_bits must be >= 1")
        if period < 1:
            raise ValueError("period must be >= 1")
        mk = tuple(int(b) for b in marker)
        if not mk or any(b not in (0, 1) for b in mk):
            raise ValueError("marker must be a non-empty 0/1 sequence")
        self.payload_bits = payload_bits
        self.period = period
        self.marker = mk
        self.outer = outer
        if outer is None:
            self._coded_bits = payload_bits
        else:
            self._coded_bits = (
                payload_bits + outer.memory
            ) * outer.rate_denominator
        num_markers = (self._coded_bits + period - 1) // period
        self.frame_length = self._coded_bits + num_markers * len(mk)
        # Precompute the interleaving template: True where a payload
        # (coded) bit goes, False where a marker bit goes.
        template = []
        sent = 0
        while sent < self._coded_bits:
            take = min(self.period, self._coded_bits - sent)
            template.extend([True] * take)
            template.extend([False] * len(mk))
            sent += take
        self._is_payload = np.asarray(template, dtype=bool)
        assert self._is_payload.size == self.frame_length

    @property
    def rate(self) -> float:
        """Information bits per transmitted bit."""
        return self.payload_bits / self.frame_length

    # ------------------------------------------------------------------
    def _marker_stream(self) -> np.ndarray:
        """The marker bits laid out over the frame template."""
        out = np.zeros(self.frame_length, dtype=np.int64)
        mk = np.asarray(self.marker, dtype=np.int64)
        idx = np.nonzero(~self._is_payload)[0]
        out[idx] = np.tile(mk, idx.size // mk.size)
        return out

    def encode(self, payload: np.ndarray) -> np.ndarray:
        """Payload bits -> framed stream with periodic markers."""
        data = np.asarray(payload, dtype=np.int64)
        if data.shape != (self.payload_bits,):
            raise ValueError(f"payload must have shape ({self.payload_bits},)")
        coded = data if self.outer is None else self.outer.encode(data)
        frame = self._marker_stream()
        frame[self._is_payload] = coded
        return frame

    def decode(
        self,
        received: np.ndarray,
        channel: DriftChannelModel,
        *,
        true_payload: Optional[np.ndarray] = None,
    ) -> MarkerDecodeResult:
        """Drift-decode the frame and extract the payload."""
        priors = np.full(self.frame_length, 0.5)
        markers = self._marker_stream()
        priors[~self._is_payload] = markers[~self._is_payload].astype(float)
        result = channel.decode(received, priors)
        payload_post = result.posteriors[self._is_payload]
        if self.outer is None:
            payload = (payload_post > 0.5).astype(np.int64)
        else:
            eps = 1e-12
            post = np.clip(payload_post, 0.0, 1.0)
            llrs = safe_log(1 - post, floor=eps) - safe_log(post, floor=eps)
            payload = self.outer.viterbi_decode(llrs, terminated=True)
        ber = None
        if true_payload is not None:
            truth = np.asarray(true_payload, dtype=np.int64)
            ber = float((payload != truth).mean())
        return MarkerDecodeResult(
            payload=payload,
            bit_error_rate=ber,
            drift_map=result.drift_map,
            log_likelihood=result.log_likelihood,
        )

    def simulate_frame(
        self, channel: DriftChannelModel, rng: np.random.Generator
    ) -> MarkerDecodeResult:
        """Random payload end-to-end through *channel*."""
        payload = rng.integers(0, 2, self.payload_bits)
        tx = self.encode(payload)
        ry, _events = channel.transmit(tx, rng)
        return self.decode(ry, channel, true_payload=payload)
