"""Varshamov-Tenengolts (VT) single-deletion-correcting codes.

The classic algebraic answer to synchronization errors (Levenshtein
1966): the code ``VT_a(n)`` is the set of binary words ``x`` of length
``n`` with ``sum_i i * x_i = a (mod n+1)`` (positions 1-indexed). Every
``VT_a(n)`` corrects any single deletion, and ``VT_0(n)`` is
asymptotically optimal in size.

Provided here as the small-blocklength baseline for the no-feedback
coding experiments: where watermark/marker codes handle i.i.d.
deletion *rates*, VT codes handle exactly one deletion per block —
useful when ``P_d`` per block is small.
"""

from __future__ import annotations


import numpy as np

__all__ = [
    "vt_syndrome",
    "is_vt_codeword",
    "vt_codewords",
    "VTCode",
]


def vt_syndrome(word: np.ndarray) -> int:
    """The VT checksum ``sum_i i * x_i mod (n + 1)`` (1-indexed)."""
    x = np.asarray(word, dtype=np.int64)
    if x.ndim != 1:
        raise ValueError("word must be 1-D")
    if x.size and not np.all((x == 0) | (x == 1)):
        raise ValueError("word must be binary")
    n = x.size
    return int((np.arange(1, n + 1) @ x) % (n + 1))


def is_vt_codeword(word: np.ndarray, a: int = 0) -> bool:
    """Membership test for ``VT_a(n)``."""
    return vt_syndrome(word) == a % (len(np.asarray(word)) + 1)


def vt_codewords(n: int, a: int = 0) -> np.ndarray:
    """Enumerate all codewords of ``VT_a(n)`` (small ``n`` only)."""
    if not 1 <= n <= 20:
        raise ValueError("enumeration supported for 1 <= n <= 20")
    codes = np.arange(1 << n, dtype=np.int64)
    bits = ((codes[:, None] >> np.arange(n - 1, -1, -1)[None, :]) & 1).astype(
        np.int64
    )
    weights = bits @ np.arange(1, n + 1)
    mask = (weights % (n + 1)) == (a % (n + 1))
    return bits[mask]


class VTCode:
    """Encoder/decoder for ``VT_a(n)`` with enumeration-based encoding.

    Encoding maps message indices ``0 .. |VT_a(n)|-1`` to codewords in
    lexicographic order (a systematic VT encoder exists but the
    enumeration keeps this reference implementation transparent).
    Decoding corrects exactly one deletion via Levenshtein's algorithm.
    """

    def __init__(self, n: int, a: int = 0) -> None:
        if not 2 <= n <= 20:
            raise ValueError("supported block lengths: 2..20")
        self.n = n
        self.a = a % (n + 1)
        self._codewords = vt_codewords(n, a)
        if self._codewords.shape[0] == 0:  # pragma: no cover - impossible
            raise ValueError("empty VT code")
        self._index = {
            tuple(int(b) for b in cw): k for k, cw in enumerate(self._codewords)
        }

    @property
    def size(self) -> int:
        return self._codewords.shape[0]

    @property
    def rate(self) -> float:
        """Information bits per transmitted bit."""
        return float(np.log2(self.size)) / self.n

    @property
    def message_bits(self) -> int:
        """Whole information bits the code can carry per block."""
        return int(np.floor(np.log2(self.size)))

    # ------------------------------------------------------------------
    def encode_index(self, message: int) -> np.ndarray:
        """Map a message index to its codeword."""
        if not 0 <= message < self.size:
            raise ValueError(f"message index out of range [0, {self.size})")
        return self._codewords[message].copy()

    def decode_index(self, word: np.ndarray) -> int:
        """Inverse of :meth:`encode_index` for a clean codeword."""
        key = tuple(int(b) for b in np.asarray(word, dtype=np.int64))
        if len(key) != self.n or key not in self._index:
            raise ValueError("not a codeword of this VT code")
        return self._index[key]

    # ------------------------------------------------------------------
    def correct_deletion(self, received: np.ndarray) -> np.ndarray:
        """Recover the codeword from a single-deletion word.

        Levenshtein's algorithm: let the received word have weight
        ``w`` and checksum ``s``; the deficiency
        ``D = (a - s) mod (n+1)`` decides the deleted bit: if
        ``D <= w`` a 0 was deleted with exactly ``D`` ones to its
        right; otherwise a 1 was deleted with ``D - 1 - (#positions?)``
        — concretely, with ``n' - (D - w - 1)``-style left-count
        bookkeeping handled below.
        """
        y = np.asarray(received, dtype=np.int64)
        if y.shape != (self.n - 1,):
            raise ValueError(
                f"received word must have length {self.n - 1} (one deletion)"
            )
        if y.size and not np.all((y == 0) | (y == 1)):
            raise ValueError("received word must be binary")
        w = int(y.sum())
        s = int((np.arange(1, self.n) @ y) % (self.n + 1))
        deficiency = (self.a - s) % (self.n + 1)
        if deficiency <= w:
            # A 0 was deleted with `deficiency` ones to its right:
            # insert a 0 just left of the `deficiency`-th one from the
            # right (at the far right when deficiency == 0).
            ones_seen = 0
            pos = y.size  # insertion index counting from the left
            for i in range(y.size - 1, -1, -1):
                if ones_seen == deficiency:
                    break
                if y[i] == 1:
                    ones_seen += 1
                pos = i
            if ones_seen < deficiency:  # all ones counted; insert at front
                pos = 0
            candidate = np.insert(y, pos, 0)
        else:
            # A 1 was deleted with `deficiency - w - 1` zeros to its
            # left: insert a 1 right of that many zeros.
            zeros_needed = deficiency - w - 1
            zeros_seen = 0
            pos = 0
            for i in range(y.size):
                if zeros_seen == zeros_needed:
                    pos = i
                    break
                if y[i] == 0:
                    zeros_seen += 1
                pos = i + 1
            if zeros_needed == 0:
                pos = 0
            candidate = np.insert(y, pos, 1)
        if vt_syndrome(candidate) != self.a:  # pragma: no cover - safety net
            raise RuntimeError("VT correction failed; input not 1 deletion away?")
        return candidate

    def decode(self, received: np.ndarray) -> int:
        """Full decode: corrects a single deletion if present, then maps
        back to the message index."""
        y = np.asarray(received, dtype=np.int64)
        if y.shape == (self.n,):
            return self.decode_index(y)
        if y.shape == (self.n - 1,):
            return self.decode_index(self.correct_deletion(y))
        raise ValueError("received length must be n or n-1")
