"""Zigangirov-style sequential (stack) decoding with drift hypotheses.

Reference [12] of the paper: K. Sh. Zigangirov, "Sequential decoding
for a binary channel with drop-outs and insertions" (1969) — the first
demonstration that convolutional codes plus sequential decoding give
reliable communication over a non-synchronous channel *without
feedback*.

This implementation explores a tree whose nodes carry
``(input position, drift, encoder state)``: each hypothesis extends the
convolutional code trellis by one information bit while simultaneously
hypothesizing the channel events (insertions / deletion / transmission)
that consumed the corresponding received bits, scored with a
Fano-style metric (log-likelihood minus a rate bias). A bounded-size
stack (priority queue) keeps the search laptop-friendly.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .convolutional import ConvolutionalCode

__all__ = ["StackDecoder", "StackDecodeResult"]


@dataclass(frozen=True)
class StackDecodeResult:
    """Outcome of a sequential decode.

    Attributes
    ----------
    payload:
        Decoded information bits (without the flush tail).
    metric:
        Final Fano metric of the winning path.
    nodes_expanded:
        Search effort (tree nodes popped from the stack).
    completed:
        False if the node budget ran out before reaching the end of the
        frame; the best partial path's bits are returned anyway.
    """

    payload: np.ndarray
    metric: float
    nodes_expanded: int
    completed: bool


class StackDecoder:
    """Stack decoding of a terminated convolutional code over a
    Definition-1 bit channel.

    Parameters
    ----------
    code:
        The outer convolutional code.
    insertion_prob, deletion_prob, substitution_prob:
        Channel parameters (the decoder's model; should match the true
        channel for best performance).
    bias:
        Fano metric bias per *received* bit consumed; default is the
        code rate in bits, the classic choice.
    max_nodes:
        Search budget.
    max_drift:
        Drift hypotheses are confined to ``[-max_drift, +max_drift]``.
    max_insertions_per_branch:
        Cap on hypothesized insertions while consuming one coded bit.
    """

    def __init__(
        self,
        code: ConvolutionalCode,
        *,
        insertion_prob: float,
        deletion_prob: float,
        substitution_prob: float = 0.0,
        bias: Optional[float] = None,
        max_nodes: int = 200_000,
        max_drift: int = 12,
        max_insertions_per_branch: int = 2,
    ) -> None:
        for name, v in (
            ("insertion_prob", insertion_prob),
            ("deletion_prob", deletion_prob),
            ("substitution_prob", substitution_prob),
        ):
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if insertion_prob + deletion_prob >= 1.0:
            raise ValueError("P_i + P_d must be < 1")
        self.code = code
        self.pi = insertion_prob
        self.pd = deletion_prob
        self.pt = 1.0 - insertion_prob - deletion_prob
        self.ps = substitution_prob
        self.bias = (
            bias if bias is not None else 1.0 / code.rate_denominator
        )
        self.max_nodes = max_nodes
        self.max_drift = max_drift
        self.max_ins = max_insertions_per_branch

    # ------------------------------------------------------------------
    def _bit_extensions(self, coded_bit: int, y: np.ndarray, j: int):
        """Hypotheses for how one coded bit went through the channel.

        Yields ``(log_prob, consumed_outputs)`` pairs: ``k`` insertions
        (each matching the observed bit with probability 1/2) followed
        by a deletion or a (possibly substituted) transmission.
        """
        m = y.size
        log_half = np.log(0.5)
        log_pi = np.log(self.pi) if self.pi > 0 else -np.inf
        for k in range(self.max_ins + 1):
            if j + k > m:
                break
            ins_lp = k * (log_pi + log_half) if k else 0.0
            if self.pd > 0:
                yield ins_lp + np.log(self.pd), k
            if j + k < m:
                obs = int(y[j + k])
                if obs == coded_bit:
                    emit = 1.0 - self.ps
                else:
                    emit = self.ps
                if emit > 0:
                    yield ins_lp + np.log(self.pt * emit), k + 1

    def decode(
        self,
        received: np.ndarray,
        num_payload_bits: int,
    ) -> StackDecodeResult:
        """Sequentially decode *received* into *num_payload_bits* bits.

        The encoder is assumed terminated (``memory`` flush zeros), so
        hypotheses beyond the payload extend only with zero bits.
        """
        y = np.asarray(received, dtype=np.int64)
        if y.ndim != 1:
            raise ValueError("received must be 1-D")
        if num_payload_bits < 1:
            raise ValueError("num_payload_bits must be >= 1")
        code = self.code
        total_steps = num_payload_bits + code.memory
        nsym = code.rate_denominator

        # Node: (neg_metric, tiebreak, step, state, out_pos, bits_tuple)
        counter = itertools.count()
        heap = [(-0.0, next(counter), 0, 0, 0, ())]
        best_partial = (0.0, 0, ())  # (metric, step, bits)
        nodes = 0
        while heap and nodes < self.max_nodes:
            neg_metric, _tb, step, state, j, bits = heapq.heappop(heap)
            metric = -neg_metric
            nodes += 1
            if step == total_steps:
                # Require (approximately) consuming the whole stream:
                # leftover outputs are unexplained insertions.
                leftover = y.size - j
                if 0 <= leftover <= self.max_drift:
                    tail_lp = leftover * (
                        (np.log(self.pi) if self.pi > 0 else -np.inf)
                        + np.log(0.5)
                    ) if leftover else 0.0
                    if np.isfinite(tail_lp):
                        payload = np.asarray(
                            bits[:num_payload_bits], dtype=np.int64
                        )
                        return StackDecodeResult(
                            payload=payload,
                            metric=metric + float(tail_lp),
                            nodes_expanded=nodes,
                            completed=True,
                        )
                continue
            if step > best_partial[1]:
                best_partial = (metric, step, bits)
            drift = j - step * nsym
            if abs(drift) > self.max_drift * nsym:
                continue
            choices = (0, 1) if step < num_payload_bits else (0,)
            for b in choices:
                register = (b << code.memory) | state
                out_bits = [
                    bin(register & g).count("1") & 1 for g in code.generators
                ]
                next_state = register >> 1
                # Fold the nsym coded bits of this branch one at a time.
                partials = [(0.0, j)]
                for cb in out_bits:
                    new_partials = []
                    for lp, jj in partials:
                        for ext_lp, used in self._bit_extensions(cb, y, jj):
                            new_partials.append((lp + ext_lp, jj + used))
                    partials = new_partials
                    if not partials:
                        break
                for lp, jj in partials:
                    consumed = jj - j
                    new_metric = metric + float(lp) + self.bias * consumed
                    heapq.heappush(
                        heap,
                        (
                            -new_metric,
                            next(counter),
                            step + 1,
                            next_state,
                            jj,
                            bits + (b,),
                        ),
                    )

        # Budget exhausted: return the deepest partial path, zero-padded.
        _metric, step, bits = best_partial
        payload = np.zeros(num_payload_bits, dtype=np.int64)
        got = min(len(bits), num_payload_bits)
        payload[:got] = bits[:got]
        return StackDecodeResult(
            payload=payload,
            metric=float(_metric),
            nodes_expanded=nodes,
            completed=False,
        )
