"""Regular binary LDPC codes with sum-product decoding.

Davey & MacKay's outer code was a (non-binary) low-density parity-check
code; this module provides the binary counterpart: a Gallager-style
regular parity-check construction, systematic encoding via GF(2)
elimination, and belief-propagation (sum-product) decoding from channel
LLRs. Used as an alternative outer code around the drift decoder and
as a standalone FEC substrate in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..numerics import SolverStatus, record_status

__all__ = ["LDPCCode", "make_regular_parity_check", "make_peg_parity_check"]


def make_peg_parity_check(
    n: int,
    column_weight: int,
    num_checks: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Progressive Edge-Growth (PEG) parity-check construction.

    Hu, Eleftheriou & Arnold's algorithm: edges are added one variable
    node at a time; each new edge attaches to a check node as *far* as
    possible from the variable in the current graph (maximizing local
    girth), with lowest-degree tie-breaking. Produces column-regular
    codes free of 4-cycles at practical sizes — the construction used
    by the test-suite codes.
    """
    if n < 2 or num_checks < 1 or column_weight < 1:
        raise ValueError("invalid dimensions")
    if num_checks >= n:
        raise ValueError("construction yields a rate <= 0 code")
    if column_weight > num_checks:
        raise ValueError("column weight exceeds number of checks")
    h = np.zeros((num_checks, n), dtype=np.int8)
    check_deg = np.zeros(num_checks, dtype=np.int64)
    var_neighbors: list = [[] for _ in range(n)]
    check_neighbors: list = [[] for _ in range(num_checks)]

    for v in range(n):
        for k in range(column_weight):
            if k == 0:
                # First edge: any lowest-degree check.
                candidates = np.nonzero(check_deg == check_deg.min())[0]
            else:
                # BFS from v to find checks reachable in the current
                # graph; prefer unreachable (infinitely far) checks.
                reached = set(var_neighbors[v])
                frontier_vars = set()
                for c in var_neighbors[v]:
                    frontier_vars.update(check_neighbors[c])
                visited_vars = set(frontier_vars) | {v}
                while True:
                    new_checks = set()
                    for u in frontier_vars:
                        new_checks.update(var_neighbors[u])
                    new_checks -= reached
                    if not new_checks or len(reached) + len(new_checks) >= num_checks:
                        break
                    reached |= new_checks
                    next_vars = set()
                    for c in new_checks:
                        next_vars.update(check_neighbors[c])
                    frontier_vars = next_vars - visited_vars
                    visited_vars |= frontier_vars
                    if not frontier_vars:
                        break
                outside = np.asarray(
                    [c for c in range(num_checks) if c not in reached],
                    dtype=np.int64,
                )
                if outside.size == 0:  # graph saturated: fall back
                    outside = np.asarray(
                        [c for c in range(num_checks) if c not in var_neighbors[v]],
                        dtype=np.int64,
                    )
                degs = check_deg[outside]
                candidates = outside[degs == degs.min()]
            c = int(candidates[rng.integers(0, candidates.size)])
            h[c, v] = 1
            check_deg[c] += 1
            var_neighbors[v].append(c)
            check_neighbors[c].append(v)
    return h


def make_regular_parity_check(
    n: int,
    column_weight: int,
    row_weight: int,
    rng: np.random.Generator,
    *,
    max_attempts: int = 200,
) -> np.ndarray:
    """Random regular parity-check matrix with the given weights.

    Gallager construction: stack ``column_weight`` random column
    permutations of a band matrix with ``row_weight`` ones per row.
    Requires ``n % row_weight == 0``. Retries until no duplicate rows
    and no 4-cycles through identical column pairs within a band pair
    collide too heavily (best-effort; short cycles degrade but do not
    break BP).
    """
    if n < 2 or column_weight < 2 or row_weight < 2:
        raise ValueError("need n >= 2 and weights >= 2")
    if n % row_weight != 0:
        raise ValueError("row_weight must divide n")
    rows_per_band = n // row_weight
    m = rows_per_band * column_weight
    if m >= n:
        raise ValueError("construction yields a rate <= 0 code")

    base = np.zeros((rows_per_band, n), dtype=np.int8)
    for r in range(rows_per_band):
        base[r, r * row_weight : (r + 1) * row_weight] = 1

    # Greedy per-band construction: accept a permuted band only if none
    # of its rows shares >= 2 columns with any already-accepted row
    # (avoids 4-cycles). Rows within one band are disjoint by
    # construction, so only cross-band overlaps need checking.
    bands = [base]
    for _ in range(column_weight - 1):
        accepted = None
        for _ in range(max_attempts):
            perm = rng.permutation(n)
            candidate = base[:, perm]
            existing = np.concatenate(bands, axis=0)
            overlap = existing.astype(np.int64) @ candidate.T
            if overlap.max() <= 1:
                accepted = candidate
                break
        if accepted is None:
            # Fall back to the last candidate; short cycles degrade BP
            # slightly but do not break it.
            accepted = candidate
        bands.append(accepted)
    return np.concatenate(bands, axis=0)


def _gf2_row_reduce(h: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Row-reduce *h* over GF(2); returns (reduced, pivot columns)."""
    a = h.copy().astype(np.int8) % 2
    rows, cols = a.shape
    pivots = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        pivot_rows = np.nonzero(a[r:, c])[0]
        if pivot_rows.size == 0:
            continue
        p = pivot_rows[0] + r
        if p != r:
            a[[r, p]] = a[[p, r]]
        mask = a[:, c].copy()
        mask[r] = 0
        a[mask == 1] ^= a[r]
        pivots.append(c)
        r += 1
    return a[:r], np.asarray(pivots, dtype=np.int64)


@dataclass
class LDPCCode:
    """A binary LDPC code defined by a parity-check matrix.

    Encoding permutes columns so the pivot positions form an identity
    block, then computes parity from the systematic message positions.
    """

    parity_check: np.ndarray

    def __post_init__(self) -> None:
        h = np.asarray(self.parity_check, dtype=np.int8) % 2
        if h.ndim != 2:
            raise ValueError("parity_check must be a matrix")
        self.parity_check = h
        reduced, pivots = _gf2_row_reduce(h)
        self._reduced = reduced
        self._pivots = pivots
        n = h.shape[1]
        self._free = np.setdiff1d(np.arange(n), pivots)
        if self._free.size == 0:
            raise ValueError("code has zero rate")
        # For encoding: pivot bits = reduced[:, free] @ message (mod 2).
        self._encode_matrix = reduced[:, self._free] % 2
        # Adjacency for BP.
        self._check_neighbors = [np.nonzero(h[r])[0] for r in range(h.shape[0])]
        self._var_neighbors = [np.nonzero(h[:, c])[0] for c in range(n)]

    # ------------------------------------------------------------------
    @property
    def block_length(self) -> int:
        return self.parity_check.shape[1]

    @property
    def message_length(self) -> int:
        return int(self._free.size)

    @property
    def rate(self) -> float:
        return self.message_length / self.block_length

    # ------------------------------------------------------------------
    def encode(self, message: np.ndarray) -> np.ndarray:
        """Systematic encode: message bits land on the non-pivot
        (free) positions, parity on the pivot positions."""
        msg = np.asarray(message, dtype=np.int8) % 2
        if msg.shape != (self.message_length,):
            raise ValueError(
                f"message must have shape ({self.message_length},)"
            )
        codeword = np.zeros(self.block_length, dtype=np.int8)
        codeword[self._free] = msg
        parity = (self._encode_matrix @ msg) % 2
        codeword[self._pivots] = parity
        assert not np.any((self.parity_check @ codeword) % 2)
        return codeword.astype(np.int64)

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Read the systematic message bits out of a codeword."""
        cw = np.asarray(codeword, dtype=np.int64)
        if cw.shape != (self.block_length,):
            raise ValueError("codeword has wrong length")
        return cw[self._free]

    def syndrome(self, word: np.ndarray) -> np.ndarray:
        return (self.parity_check @ (np.asarray(word, dtype=np.int64) % 2)) % 2

    # ------------------------------------------------------------------
    def decode_soft(
        self,
        llrs: np.ndarray,
        *,
        max_iterations: int = 50,
    ) -> Tuple[np.ndarray, bool, np.ndarray]:
        """Sum-product decoding returning posterior LLRs as well.

        Returns ``(hard_decisions, converged, posterior_llrs)``; the
        posteriors are the channel LLRs plus all check-to-variable
        messages — the soft beliefs iterative outer/inner receivers
        feed back (:mod:`repro.coding.iterative`).
        """
        channel = np.asarray(llrs, dtype=float)
        if channel.shape != (self.block_length,):
            raise ValueError("llrs must match the block length")
        if not np.all(np.isfinite(channel)):
            raise ValueError(
                "channel llrs contain non-finite entries; saturate "
                "upstream evidence before decoding"
            )
        h = self.parity_check
        m, n = h.shape
        # Messages live on the edges; store dense (m, n) masked by h.
        var_to_check = np.where(h == 1, channel[None, :], 0.0)
        mask = h == 1
        for _ in range(max_iterations):
            # Check-node update (tanh rule), numerically clipped. The
            # extrinsic product must exclude each edge's own factor;
            # exact zeros (erasures) need explicit handling — dividing
            # a zero row-product by the zero factor would wrongly zero
            # the erased edge's own extrinsic message.
            t = np.tanh(np.clip(var_to_check / 2.0, -30, 30))
            t = np.where(mask, t, 1.0)
            # Exact-zero sentinel, not a tolerance check: np.where wrote
            # literal 0.0 for erased channel LLRs.
            is_zero = mask & (t == 0.0)  # repro: noqa[PROB001]
            zero_count = is_zero.sum(axis=1)
            t_nz = np.where(is_zero, 1.0, t)
            prod_nz = t_nz.prod(axis=1)  # product of non-zero factors
            quotient = np.zeros_like(t)
            rows0 = zero_count == 0
            if np.any(rows0):
                quotient[rows0] = prod_nz[rows0, None] / t_nz[rows0]
            rows1 = zero_count == 1
            if np.any(rows1):
                # Only the erased edge receives the (non-zero) product
                # of the others; every other edge sees a zero factor.
                quotient[rows1] = np.where(
                    is_zero[rows1], prod_nz[rows1, None], 0.0
                )
            quotient = np.where(mask, quotient, 0.0)
            quotient = np.clip(quotient, -0.999999999, 0.999999999)
            check_to_var = np.where(mask, 2.0 * np.arctanh(quotient), 0.0)
            # Variable-node update.
            totals = channel[None, :] + check_to_var.sum(axis=0)[None, :]
            var_to_check = np.where(mask, totals - check_to_var, 0.0)
            # Hard decision + syndrome check.
            posterior = channel + check_to_var.sum(axis=0)
            hard = (posterior < 0).astype(np.int64)
            if not np.any((h @ hard) % 2):
                record_status("ldpc_bp", SolverStatus.CONVERGED)
                return hard, True, posterior
        record_status("ldpc_bp", SolverStatus.MAX_ITER)
        return hard, False, posterior

    def decode(
        self,
        llrs: np.ndarray,
        *,
        max_iterations: int = 50,
    ) -> Tuple[np.ndarray, bool]:
        """Sum-product decoding from per-bit LLRs
        (``log P(y|0) - log P(y|1)``; positive favors 0).

        Returns ``(hard_decisions, converged)`` where *converged* means
        the syndrome check passed.
        """
        hard, converged, _posterior = self.decode_soft(
            llrs, max_iterations=max_iterations
        )
        return hard, converged
