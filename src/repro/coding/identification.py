"""Channel parameter identification from pilot transmissions.

The paper's estimation recipe needs ``P_d`` (and ``P_i``) of the real
channel, but an attacker or evaluator usually cannot observe channel
events directly — only what was sent and what arrived. This module
closes that gap: given one or more *pilot* transmissions (known bit
sequences) and their received streams, it maximum-likelihood-estimates
``(P_i, P_d)`` using the exact frame likelihood of the drift
forward-backward model.

The likelihood surface is smooth and unimodal in practice; a coarse
grid pass followed by Nelder-Mead polish is robust and fast at pilot
lengths of a few hundred bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import optimize

from ..infotheory.probability import validate_probability
from .forward_backward import DriftChannelModel

__all__ = ["ChannelEstimate", "estimate_channel_parameters"]


@dataclass(frozen=True)
class ChannelEstimate:
    """ML estimate of the channel's synchronization parameters.

    Attributes
    ----------
    insertion_prob, deletion_prob:
        The ML point estimate.
    log_likelihood:
        Total pilot log-likelihood at the estimate.
    grid_evaluations:
        Number of likelihood evaluations spent.
    """

    insertion_prob: float
    deletion_prob: float
    log_likelihood: float
    grid_evaluations: int

    def __post_init__(self) -> None:
        validate_probability(self.insertion_prob, "insertion_prob")
        validate_probability(self.deletion_prob, "deletion_prob")


def _total_log_likelihood(
    pi: float,
    pd: float,
    pilots: Sequence[np.ndarray],
    received: Sequence[np.ndarray],
    substitution_prob: float,
    max_drift: int,
) -> float:
    if pi + pd >= 0.95:
        return -np.inf
    model = DriftChannelModel(
        insertion_prob=pi,
        deletion_prob=pd,
        substitution_prob=substitution_prob,
        max_drift=max_drift,
    )
    total = 0.0
    for bits, y in zip(pilots, received):
        try:
            total += model.log_likelihood(
                np.asarray(y), np.asarray(bits, dtype=float)
            )
        except ValueError:
            return -np.inf
    return total


def estimate_channel_parameters(
    pilots: Sequence[np.ndarray],
    received: Sequence[np.ndarray],
    *,
    substitution_prob: float = 1e-3,
    max_drift: Optional[int] = None,
    grid: Sequence[float] = (0.01, 0.03, 0.08, 0.15),
) -> ChannelEstimate:
    """ML-estimate ``(P_i, P_d)`` from pilot/received pairs.

    Parameters
    ----------
    pilots:
        Known transmitted bit sequences.
    received:
        The corresponding received streams.
    substitution_prob:
        Assumed (small) substitution rate of the model; keeps the
        likelihood finite when a stream contains a flipped bit.
    max_drift:
        Drift window; defaults to the worst pilot length difference
        plus slack, so every pilot's likelihood is finite.
    grid:
        Coarse candidate values for both parameters.

    Returns
    -------
    ChannelEstimate
        The polished ML point estimate.
    """
    if len(pilots) == 0 or len(pilots) != len(received):
        raise ValueError("need matching non-empty pilot/received lists")
    if max_drift is None:
        worst = max(
            abs(len(np.asarray(y)) - len(np.asarray(x)))
            for x, y in zip(pilots, received)
        )
        max_drift = max(12, worst + 8)
    evaluations = 0
    # A large finite penalty keeps Nelder-Mead's simplex arithmetic
    # well-defined when a candidate leaves the feasible region.
    penalty = 1e12

    def objective(params: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        pi, pd = float(params[0]), float(params[1])
        if not (0.0 <= pi <= 0.45 and 0.0 <= pd <= 0.45):
            return penalty
        value = _total_log_likelihood(
            pi, pd, pilots, received, substitution_prob, max_drift
        )
        if not np.isfinite(value):
            return penalty
        return -value

    # Coarse grid pass.
    best = (np.inf, 0.01, 0.01)
    for pi in grid:
        for pd in grid:
            val = objective(np.array([pi, pd]))
            if val < best[0]:
                best = (val, pi, pd)

    # Local polish.
    result = optimize.minimize(
        objective,
        x0=np.array([best[1], best[2]]),
        method="Nelder-Mead",
        options={"xatol": 1e-4, "fatol": 1e-4, "maxiter": 120},
    )
    pi_hat = float(max(0.0, result.x[0]))
    pd_hat = float(max(0.0, result.x[1]))
    return ChannelEstimate(
        insertion_prob=pi_hat,
        deletion_prob=pd_hat,
        log_likelihood=float(-result.fun),
        grid_evaluations=evaluations,
    )
