"""Interleavers.

Drift-decoder residual errors are bursty (clustered around drift
excursions), so outer codes benefit from interleaving. Both block and
seeded pseudorandom interleavers are provided; each is a bijection with
an exact inverse.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BlockInterleaver", "RandomInterleaver"]


class BlockInterleaver:
    """Row-in / column-out block interleaver of shape (rows, cols)."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be positive")
        self.rows = rows
        self.cols = cols
        self.length = rows * cols
        self._perm = (
            np.arange(self.length).reshape(rows, cols).T.reshape(-1)
        )
        self._inv = np.argsort(self._perm)

    def interleave(self, data: np.ndarray) -> np.ndarray:
        arr = np.asarray(data)
        if arr.shape != (self.length,):
            raise ValueError(f"data must have length {self.length}")
        return arr[self._perm]

    def deinterleave(self, data: np.ndarray) -> np.ndarray:
        arr = np.asarray(data)
        if arr.shape != (self.length,):
            raise ValueError(f"data must have length {self.length}")
        return arr[self._inv]


class RandomInterleaver:
    """Seeded pseudorandom permutation interleaver."""

    def __init__(self, length: int, seed: int = 0) -> None:
        if length < 1:
            raise ValueError("length must be positive")
        self.length = length
        rng = np.random.default_rng(seed)
        self._perm = rng.permutation(length)
        self._inv = np.argsort(self._perm)

    def interleave(self, data: np.ndarray) -> np.ndarray:
        arr = np.asarray(data)
        if arr.shape != (self.length,):
            raise ValueError(f"data must have length {self.length}")
        return arr[self._perm]

    def deinterleave(self, data: np.ndarray) -> np.ndarray:
        arr = np.asarray(data)
        if arr.shape != (self.length,):
            raise ValueError(f"data must have length {self.length}")
        return arr[self._inv]
