"""Maximum-likelihood alignment decoding for deletion-insertion streams.

The Viterbi counterpart of the forward-backward engine in
:mod:`repro.coding.forward_backward`: instead of marginal posteriors it
finds the single most likely *alignment* between a received bit stream
and a template of per-position priors — which received bits are
insertions, where deletions happened, and the MAP value of every
unknown position. Useful for forensic reconstruction of a covert
transmission (who sent what, where did the scheduler drop symbols) and
as an independent cross-check of the forward-backward decoder: on
unambiguous streams both must agree.

The dynamic program runs over ``(input position, output position)``
with the Definition-1 transition costs; complexity
``O(n * window * max_insertions)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["AlignmentResult", "MLAlignmentDecoder"]


@dataclass(frozen=True)
class AlignmentResult:
    """The MAP alignment of a received stream against a template.

    Attributes
    ----------
    decoded:
        MAP value for each of the ``n`` transmitted positions.
    alignment:
        For each transmitted position, the output index of the bit that
        carried it, or ``-1`` if the position was deleted.
    insertions:
        Output indices classified as inserted bits.
    log_likelihood:
        Joint log-probability of the MAP explanation.
    """

    decoded: np.ndarray
    alignment: np.ndarray
    insertions: np.ndarray
    log_likelihood: float


class MLAlignmentDecoder:
    """Viterbi alignment over the Definition-1 drift lattice.

    Parameters mirror :class:`repro.coding.forward_backward.DriftChannelModel`.
    """

    def __init__(
        self,
        insertion_prob: float,
        deletion_prob: float,
        substitution_prob: float = 0.0,
        *,
        max_drift: int = 24,
    ) -> None:
        for name, v in (
            ("insertion_prob", insertion_prob),
            ("deletion_prob", deletion_prob),
            ("substitution_prob", substitution_prob),
        ):
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if insertion_prob + deletion_prob >= 1.0:
            raise ValueError("P_i + P_d must be < 1")
        if max_drift < 1:
            raise ValueError("max_drift must be >= 1")
        self.pi = insertion_prob
        self.pd = deletion_prob
        self.pt = 1.0 - insertion_prob - deletion_prob
        self.ps = substitution_prob
        self.max_drift = max_drift

    # ------------------------------------------------------------------
    def decode(
        self, received: np.ndarray, prior_one: np.ndarray
    ) -> AlignmentResult:
        """Find the MAP alignment of *received* to an ``n``-position
        template with priors ``P(t_i = 1) = prior_one[i]``."""
        y = np.asarray(received, dtype=np.int64)
        priors = np.asarray(prior_one, dtype=float)
        if y.ndim != 1 or priors.ndim != 1:
            raise ValueError("received and prior_one must be 1-D")
        if y.size and not np.all((y == 0) | (y == 1)):
            raise ValueError("received bits must be 0/1")
        if np.any((priors < 0) | (priors > 1)):
            raise ValueError("priors must be probabilities")
        n = priors.size
        m = y.size
        if n == 0:
            raise ValueError("need at least one template position")
        if abs(m - n) > self.max_drift:
            raise ValueError(
                f"length difference {m - n} exceeds the drift window"
            )

        neg_inf = -np.inf
        log_pi = np.log(self.pi) if self.pi > 0 else neg_inf
        log_pd = np.log(self.pd) if self.pd > 0 else neg_inf
        log_pt = np.log(self.pt)
        log_half = np.log(0.5)

        # score[i, j]: best log-prob explaining y[:j] with i template
        # positions consumed. Backpointers encode the move:
        # 0 = deletion (i-1, j), 1 = transmission (i-1, j-1),
        # 2 = insertion (i, j-1).
        score = np.full((n + 1, m + 1), neg_inf)
        move = np.zeros((n + 1, m + 1), dtype=np.int8)
        bit_choice = np.zeros((n + 1, m + 1), dtype=np.int8)
        score[0, 0] = 0.0
        for i in range(n + 1):
            for j in range(m + 1):
                if i == 0 and j == 0:
                    continue
                if abs(j - i) > self.max_drift:
                    continue
                best = neg_inf
                best_move = 0
                best_bit = 0
                if i > 0 and score[i - 1, j] > neg_inf:
                    cand = score[i - 1, j] + log_pd
                    if cand > best:
                        # Deleted position: MAP value is the prior mode.
                        best, best_move = cand, 0
                        best_bit = 1 if priors[i - 1] >= 0.5 else 0
                if i > 0 and j > 0 and score[i - 1, j - 1] > neg_inf:
                    p1 = priors[i - 1]
                    obs = int(y[j - 1])
                    # Jointly choose the transmitted bit value.
                    for bit, p_bit in ((0, 1 - p1), (1, p1)):
                        if p_bit <= 0:
                            continue
                        emit = (1 - self.ps) if bit == obs else self.ps
                        if emit <= 0:
                            continue
                        cand = (
                            score[i - 1, j - 1]
                            + log_pt
                            + np.log(p_bit)
                            + np.log(emit)
                        )
                        if cand > best:
                            best, best_move, best_bit = cand, 1, bit
                if j > 0 and score[i, j - 1] > neg_inf:
                    cand = score[i, j - 1] + log_pi + log_half
                    if cand > best:
                        best, best_move = cand, 2
                        best_bit = 0
                score[i, j] = best
                move[i, j] = best_move
                bit_choice[i, j] = best_bit

        if not np.isfinite(score[n, m]):
            raise ValueError("no alignment within the drift window")

        decoded = np.zeros(n, dtype=np.int64)
        alignment = np.full(n, -1, dtype=np.int64)
        insertion_idx: List[int] = []
        i, j = n, m
        while i > 0 or j > 0:
            mv = move[i, j]
            if mv == 0:  # deletion
                decoded[i - 1] = bit_choice[i, j]
                alignment[i - 1] = -1
                i -= 1
            elif mv == 1:  # transmission
                decoded[i - 1] = bit_choice[i, j]
                alignment[i - 1] = j - 1
                i -= 1
                j -= 1
            else:  # insertion
                insertion_idx.append(j - 1)
                j -= 1
        return AlignmentResult(
            decoded=decoded,
            alignment=alignment,
            insertions=np.asarray(sorted(insertion_idx), dtype=np.int64),
            log_likelihood=float(score[n, m]),
        )
